"""MovieLens-like long-horizon interests: tuning the short-term weight.

On MovieLens the paper finds a lower optimal short-term weight (lambda_s =
0.3) than on YouTube (0.4) because movie tastes are more stable.  This
example reproduces the tuning loop on the MLens-like dataset with the
decomposed-score sweep (one stream replay, every lambda measured), then
contrasts the diversity of ssRec's recommendations with the no-expansion
ablation.

    python examples/movie_night.py
"""

from repro import MLensConfig, SsRecConfig, SsRecRecommender, generate_mlens, partition_interactions
from repro.eval.harness import StreamEvaluator
from repro.eval.metrics import intra_list_distance


def main() -> None:
    dataset = generate_mlens(MLensConfig.small())
    stream = partition_interactions(dataset)
    train = stream.training_interactions()

    # One replay, the whole lambda grid (Fig. 7's protocol).
    recommender = SsRecRecommender(config=SsRecConfig.for_mlens(), seed=1)
    recommender.fit(dataset, train)
    evaluator = StreamEvaluator(stream, ks=(5, 10), min_truth=3)
    lambdas = [round(0.1 * i, 1) for i in range(11)]
    sweep = evaluator.run_lambda_sweep(recommender, lambdas)

    print("lambda_s   P@5     P@10")
    for lam in lambdas:
        print(f"  {lam:4.1f}   {sweep[lam][5]:.4f}  {sweep[lam][10]:.4f}")
    best = max(lambdas, key=lambda lam: sweep[lam][5])
    print(f"optimal lambda_s on this MLens-like data: {best}")

    # The diversification mechanism: proximity-based entity expansion.
    # A sample item's query is broadened with related entities, so users
    # interested in *related* movies (not just exact-entity rewatches) are
    # reached — the paper's Nadal -> Federer/Sharapova story.
    sample = stream.items_in_partition(2)[0]
    query = recommender.scorer.expanded_query(sample)
    originals = [e for e, w in query if w == 1.0]
    expansions = [(e, w) for e, w in query if w < 1.0]
    print(f"\nsample item {sample.item_id} entities:")
    for e in originals[:4]:
        print(f"  original  '{dataset.entity_names[e]}' (weight 1.0)")
    for e, w in expansions[:4]:
        print(f"  expansion '{dataset.entity_names[e]}' (weight {w:.2f})")

    # What the most active user would actually receive, and how diverse it is.
    items = stream.items_in_partition(2)[:80]
    activity = {}
    for inter in train:
        activity[inter.user_id] = activity.get(inter.user_id, 0) + 1
    target = max(activity, key=activity.get)
    chosen = [
        it for it in items if target in {u for u, _ in recommender.recommend(it, 10)}
    ]
    diversity = intra_list_distance([it.entities for it in chosen])
    print(
        f"\nuser {target} would receive {len(chosen)} of {len(items)} new movies; "
        f"entity diversity (ILD) of the delivered list: {diversity:.3f}"
    )


if __name__ == "__main__":
    main()
