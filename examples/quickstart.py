"""Quickstart: train ssRec and recommend streaming items to users.

Runs in a few seconds on the tiny YTube-like dataset:

    python examples/quickstart.py
"""

from repro import SsRecRecommender, YTubeConfig, generate_ytube, partition_interactions


def main() -> None:
    # 1. A seeded synthetic social-media dataset (items, interactions,
    #    producers, consumers, entity vocabulary).
    dataset = generate_ytube(YTubeConfig.small())
    print(f"dataset: {dataset}")

    # 2. The paper's stream protocol: 6 timestamp-ordered partitions,
    #    the first two for training.
    stream = partition_interactions(dataset)
    train = stream.training_interactions()
    print(f"training interactions: {len(train)}")

    # 3. Train every component: BiHMM interest model, entity expansion,
    #    CPPse profiles, matching scorer — and the CPPse-index.
    recommender = SsRecRecommender(use_index=True, seed=1)
    recommender.fit(dataset, train)
    print(f"recommender: {recommender}")
    print(f"index: {recommender.index.signature_statistics()}")

    # 4. Replay the first test partition: each new upload is matched to its
    #    top-5 users; each interaction updates the user profiles.
    items = stream.items_in_partition(2)[:5]
    for item in items:
        recommender.observe_item(item)
        top = recommender.recommend(item, k=5)
        entities = ", ".join(dataset.entity_names[e] for e in item.entities[:3])
        print(
            f"item {item.item_id} (category {item.category}, '{entities}...') -> "
            + ", ".join(f"user {u} ({score:.2f})" for u, score in top)
        )

    # 5. Stream a few profile updates and let the index maintain itself.
    for interaction in stream.partitions[2][:50]:
        recommender.update(interaction, dataset.item(interaction.item_id))
    refreshed = recommender.run_maintenance()
    print(f"profiles refreshed by Algorithm 2: {refreshed}")


if __name__ == "__main__":
    main()
