"""The paper's Fig. 2 scenario: a consumer riding a producer's trajectory.

A user regularly watches content from the channels they follow.  When a
followed channel pivots (a bursting event — "music, sports and military"),
the user's regular trajectory is interrupted.  This example shows the BiHMM
catching the pivot *through the producer layer* while a single-layer HMM,
which only sees the user's own category history, lags behind.

    python examples/youtube_trending.py
"""

import numpy as np

from repro.baselines.hmm_rec import SingleLayerInterestModel
from repro.hmm import BiHMM

CATEGORIES = ["music", "sports", "military", "news", "movies"]


def build_bbc_like_producer(n_items: int = 300):
    """News channel: news blocks, then music specials, then military coverage.

    Both channels emit 'news' runs — what comes *after* a news run depends
    on which channel you are riding, which only the producer layer can tell.
    """
    pattern = [3] * 3 + [0] * 3 + [2] * 3
    return [(item_id, pattern[item_id % len(pattern)]) for item_id in range(n_items)]


def build_sports_producer(n_items: int = 300, start_id: int = 10_000):
    """A sports channel: short news recaps, then long sports blocks."""
    pattern = [3] * 3 + [1] * 5
    return [(start_id + i, pattern[i % len(pattern)]) for i in range(n_items)]


def simulate_consumer(producers, seed: int = 0, length: int = 200):
    """A fan following both channels, riding one at a time."""
    rng = np.random.default_rng(seed)
    pointers = {name: 0 for name in producers}
    riding = "sports-channel"
    events = []
    for _ in range(length):
        if rng.random() < 0.15:  # switch channels occasionally
            riding = "bbc-like" if riding == "sports-channel" else "sports-channel"
        item_id, category = producers[riding][pointers[riding]]
        pointers[riding] += 1
        events.append((category, item_id))
    return events


def main() -> None:
    producers = {
        "bbc-like": build_bbc_like_producer(),
        "sports-channel": build_sports_producer(),
    }
    history = simulate_consumer(producers)
    cut = int(len(history) * 0.8)
    train, test = history[:cut], history[cut:]

    # Single-layer HMM: the user's category sequence only.
    categories = [c for c, _ in history]
    n_star, hmm_accuracy, _ = SingleLayerInterestModel.tune_states(
        categories[:cut], categories[cut:], len(CATEGORIES), max_states=6, seed=0
    )
    print(f"single-layer HMM: tuned to {n_star} states, accuracy {hmm_accuracy:.3f}")

    # BiHMM: producer layer + producer-conditioned consumer layer.  Like the
    # paper ("obtain the optimal parameters for BiHMM") we tune the coupling
    # strength; state budget matches the HMM's.
    best_accuracy, bihmm = 0.0, None
    for shrinkage in (0.2, 0.6, 0.9):
        candidate = BiHMM(n_categories=len(CATEGORIES), n_consumer_states=n_star, seed=0)
        candidate.producer_layer.fit(producers, n_iter=25)
        candidate.fit_consumers_only([train], n_iter=25, shrinkage=shrinkage)
        context = list(train)
        hits = 0
        for category, item_id in test:
            predicted = candidate.predict_top_k(context, k=1)[0]
            hits += predicted == category
            context.append((category, item_id))
        accuracy = hits / len(test)
        if accuracy >= best_accuracy:
            best_accuracy, bihmm = accuracy, candidate
    print(f"BiHMM:            same state budget, accuracy {best_accuracy:.3f}")

    # Show the producer layer reading the channel pivot.
    z_now = bihmm.producer_layer.next_state_distribution("bbc-like")
    heading = int(np.argmax(z_now[:-1]))
    print(
        f"producer layer says the BBC-like channel is heading toward "
        f"'{CATEGORIES[heading]}' content next"
    )


if __name__ == "__main__":
    main()
