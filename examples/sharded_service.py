"""Sharded serving: train once, snapshot, warm-start, serve a burst.

Walks the full serving lifecycle of the repro.serve runtime:

1. train an ssRec model on the tiny YTube-like dataset;
2. shard it with the block-aware plan (CPPse blocks never split, so
   results stay bit-identical to the single index);
3. snapshot the service to disk and reload it into a *fresh* process
   state — no retraining;
4. serve a burst of streamed items through the reloaded service, with
   interleaved profile updates and shard-local Algorithm-2 maintenance;
5. print per-shard latency/candidate metrics and the shard balance;
6. replay the same burst on the **process backend** (one OS worker per
   shard, ``serve_backend="process"``) and check the merged top-k is
   bit-identical to the in-process service.

Worker-enabled services are used in their context-manager form
throughout, so thread/process pools are always released.

Runs in a few seconds:

    python examples/sharded_service.py
"""

import tempfile
from pathlib import Path

from repro import SsRecRecommender, YTubeConfig, generate_ytube, partition_interactions
from repro.serve import ShardedRecommender


def main() -> None:
    # 1. Train every component once, scan mode (shards build their own
    #    CPPse-indexes, so no redundant global index is needed).
    dataset = generate_ytube(YTubeConfig.small())
    stream = partition_interactions(dataset)
    recommender = SsRecRecommender(seed=1)
    recommender.fit(dataset, stream.training_interactions())
    print(f"trained: {recommender}")

    # 2. Shard it: whole CPPse blocks per shard, shard-local indexes.
    items = stream.items_in_partition(2)[:24]
    updates = stream.partitions[2][:48]
    k = 5
    with tempfile.TemporaryDirectory() as tmp:
        with ShardedRecommender.from_trained(
            recommender, n_shards=3, strategy="block", use_index=True
        ) as service:
            print(f"service: {service}")
            print(f"balance: {service.balance_stats()}")

            # 3. Snapshot and warm-start.  The reloaded service restores
            #    the trained state, the shard plan and the shard indexes
            #    exactly.
            snapshot_dir = Path(tmp) / "snapshot"
            service.save(snapshot_dir)
            manifest_size = (snapshot_dir / "manifest.json").stat().st_size
            payload_size = (snapshot_dir / "state.pkl").stat().st_size
            print(
                f"snapshot: manifest {manifest_size} B, payload {payload_size // 1024} KiB"
            )

        with ShardedRecommender.load(snapshot_dir) as service:
            print(f"reloaded: {service}")

            # 4. Serve a burst from the first test partition through the
            #    *reloaded* service: items arrive in micro-batches,
            #    interactions update the owning shard's profiles.
            burst_results = []
            for start in range(0, len(items), 8):
                window = items[start : start + 8]
                for interaction in updates[start : start + 8]:
                    service.update(interaction, dataset.item(interaction.item_id))
                for item in window:
                    service.observe_item(item)
                ranked_lists = service.recommend_batch(window, k)
                burst_results.extend(ranked_lists)
                item, top = window[0], ranked_lists[0]
                print(
                    f"window @{start}: item {item.item_id} -> "
                    + ", ".join(f"user {u} ({score:.2f})" for u, score in top[:3])
                )
            refreshed = service.run_maintenance()
            print(f"profiles refreshed by shard-local Algorithm 2: {refreshed}")

            # 5. Per-shard serving metrics: the tail percentiles are the
            #    numbers sharding is judged by.
            for row in service.metrics():
                print(
                    f"shard {row['shard_id']}: users={row['users']} "
                    f"items={row['items_served']} "
                    f"p50={row['p50_latency_ms']:.2f}ms p95={row['p95_latency_ms']:.2f}ms "
                    f"p99={row['p99_latency_ms']:.2f}ms "
                    f"maintenance_runs={row['maintenance_runs']}"
                )

    # 6. The same burst on the process backend: every shard in its own OS
    #    worker process (real CPU parallelism), same bits out.  Retrain a
    #    fresh model so both replays start from identical state.
    recommender = SsRecRecommender(seed=1)
    recommender.fit(dataset, stream.training_interactions())
    with ShardedRecommender.from_trained(
        recommender, n_shards=3, strategy="block", use_index=True, backend="process"
    ) as service:
        print(f"process service: {service}")
        process_results = []
        for start in range(0, len(items), 8):
            window = items[start : start + 8]
            for interaction in updates[start : start + 8]:
                service.update(interaction, dataset.item(interaction.item_id))
            for item in window:
                service.observe_item(item)
            process_results.extend(service.recommend_batch(window, k))
        match = "bit-identical" if process_results == burst_results else "DIVERGED"
        print(f"process-backend replay vs in-process burst: {match}")


if __name__ == "__main__":
    main()
