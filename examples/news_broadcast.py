"""Time-critical news fan-out over the Storm-like topology.

The paper's motivating deployment: "users can be notified in time what is
happening moment by moment".  This example wires the full recommendation
topology — item spout, entity-extraction bolt, per-category match bolts
backed by the CPPse-index, top-k sink — runs a burst of uploads through it
and reports per-stage costs, comparing the index against the naive
sequential scan.

    python examples/news_broadcast.py
"""

import time

from repro import SsRecRecommender, YTubeConfig, generate_ytube, partition_interactions
from repro.baselines.knn_scan import NaiveScanRecommender
from repro.stream.engine import LocalEngine
from repro.stream.recommend_topology import build_recommendation_topology


def main() -> None:
    dataset = generate_ytube(YTubeConfig.small(seed=11))
    stream = partition_interactions(dataset)
    train = stream.training_interactions()

    recommender = SsRecRecommender(use_index=True, seed=1)
    recommender.fit(dataset, train)
    breaking_news = stream.items_in_partition(2)[:40]

    # The paper configures one match bolt per category.
    topology, sink = build_recommendation_topology(
        breaking_news,
        recommender.extractor,
        recommender,
        n_categories=dataset.n_categories,
        k=10,
    )
    report = LocalEngine(topology).run()

    print(f"items fanned out: {len(sink.results)}")
    print(f"mean end-to-end latency: {report.mean_latency * 1000:.2f} ms/item")
    for bolt in ("extract", "match", "sink"):
        print(
            f"  bolt {bolt:8s}: {report.tuples_processed[bolt]:4d} tuples, "
            f"{report.bolt_seconds[bolt] * 1000:7.2f} ms total"
        )

    # Compare the index against the paper's naive per-user scan.
    naive = NaiveScanRecommender(recommender.scorer, recommender.profiles)
    started = time.perf_counter()
    for item in breaking_news:
        naive.recommend(item, 10)
    naive_ms = (time.perf_counter() - started) / len(breaking_news) * 1000

    started = time.perf_counter()
    for item in breaking_news:
        recommender.recommend(item, 10)
    index_ms = (time.perf_counter() - started) / len(breaking_news) * 1000
    print(f"naive sequential scan: {naive_ms:.2f} ms/item")
    print(f"CPPse-index KNN:       {index_ms:.2f} ms/item")

    # Sample notification.
    item = breaking_news[0]
    users = ", ".join(str(u) for u, _ in sink.results[item.item_id][:5])
    print(f"breaking item {item.item_id} pushed to users: {users}")


if __name__ == "__main__":
    main()
