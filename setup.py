"""Setup shim so legacy editable installs work in offline environments.

The environment has setuptools but no ``wheel`` package, which breaks the
PEP 660 editable path (``bdist_wheel``).  ``pip install -e . --no-build-isolation
--no-use-pep517`` (or plain ``pip install -e .`` on newer toolchains) works
through this shim.
"""

from setuptools import setup

setup()
