"""Setup shim so legacy editable installs work in offline environments.

The environment has setuptools but no ``wheel`` package, which breaks the
PEP 660 editable path (``bdist_wheel``).  ``pip install -e . --no-build-isolation
--no-use-pep517`` (or plain ``pip install -e .`` on newer toolchains) works
through this shim.

Extras:
    native: numba, for the compiled scoring kernels
        (:mod:`repro.core.kernels`; ``scoring: "native"``).  Optional —
        without it the native plans serve through the bit-identical
        vectorized fallback.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ssrec",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={"native": ["numba"]},
)
