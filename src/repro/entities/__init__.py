"""Entity pipeline substrate (the paper uses TagMe + proximity heuristics).

- :class:`~repro.entities.vocabulary.EntityVocabulary` — entity string/id
  mapping with document and category frequencies.
- :class:`~repro.entities.extractor.EntityExtractor` — gazetteer-based
  longest-match extractor standing in for TagMe [26]; recovers the entity
  set ``E`` of an item from its title/description text.
- :class:`~repro.entities.expansion.EntityExpander` — the proximity-
  heuristic expansion of Sec. IV-B ("Expansion entity sets are extracted
  based on the proximity heuristics [29] ... If two entities often
  co-occurred closely in the same category, we believe they are strongly
  related").
"""

from repro.entities.vocabulary import EntityVocabulary
from repro.entities.extractor import EntityExtractor, tokenize
from repro.entities.expansion import EntityExpander, Expansion

__all__ = [
    "EntityVocabulary",
    "EntityExtractor",
    "EntityExpander",
    "Expansion",
    "tokenize",
]
