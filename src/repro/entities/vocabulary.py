"""Entity vocabulary: ids, document frequencies, per-category statistics."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


class EntityVocabulary:
    """Bidirectional mapping between entity surface forms and integer ids.

    Also tracks document frequency (number of items an entity appeared in)
    and per-category frequency, which the expansion module and the index
    statistics (Table II) rely on.
    """

    def __init__(self) -> None:
        self._id_by_name: dict[str, int] = {}
        self._name_by_id: list[str] = []
        self._doc_freq: Counter[int] = Counter()
        self._category_freq: dict[int, Counter[int]] = {}

    def __len__(self) -> int:
        return len(self._name_by_id)

    def __contains__(self, name: str) -> bool:
        return self.normalize(name) in self._id_by_name

    @staticmethod
    def normalize(name: str) -> str:
        """Canonical surface form: lowercase, collapsed whitespace."""
        return " ".join(name.lower().split())

    def add(self, name: str) -> int:
        """Intern ``name`` and return its id (existing id if already known)."""
        key = self.normalize(name)
        if not key:
            raise ValueError("entity name must be non-empty")
        entity_id = self._id_by_name.get(key)
        if entity_id is None:
            entity_id = len(self._name_by_id)
            self._id_by_name[key] = entity_id
            self._name_by_id.append(key)
        return entity_id

    def id_of(self, name: str) -> int | None:
        """Id of ``name`` or None when unknown."""
        return self._id_by_name.get(self.normalize(name))

    def name_of(self, entity_id: int) -> str:
        if not (0 <= entity_id < len(self._name_by_id)):
            raise KeyError(f"unknown entity id {entity_id}")
        return self._name_by_id[entity_id]

    def names(self) -> list[str]:
        """All interned surface forms, in id order."""
        return list(self._name_by_id)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def observe_document(self, entity_ids: Iterable[int], category: int | None = None) -> None:
        """Record one item containing ``entity_ids`` (deduplicated)."""
        unique = set(int(e) for e in entity_ids)
        for entity_id in unique:
            self._doc_freq[entity_id] += 1
            if category is not None:
                self._category_freq.setdefault(int(category), Counter())[entity_id] += 1

    def document_frequency(self, entity_id: int) -> int:
        return self._doc_freq.get(int(entity_id), 0)

    def category_frequency(self, entity_id: int, category: int) -> int:
        return self._category_freq.get(int(category), Counter()).get(int(entity_id), 0)

    def entities_in_category(self, category: int) -> list[int]:
        """Ids of entities observed at least once in ``category``."""
        return sorted(self._category_freq.get(int(category), Counter()))
