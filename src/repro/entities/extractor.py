"""Gazetteer-based entity extractor (stand-in for TagMe [26]).

The paper extracts an entity set ``E`` from each item's title/description
with TagMe, e.g. the description "Australian Open 2017 Men's Final Roger
Federer vs Rafael Nadal Full Match" yields {"Australian Open", "Roger
Federer", "Rafael Nadal", "Match"}.  TagMe is an online service; offline we
substitute a greedy longest-match gazetteer annotator, which recovers
exactly the entity phrases our synthetic text generator embeds (DESIGN.md,
Substitutions).

Besides the entity set, the extractor reports token *positions*, which the
proximity-heuristic expansion needs to weight co-occurrences by distance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.entities.vocabulary import EntityVocabulary

_TOKEN_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of ``text`` (alphanumerics and apostrophes)."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class EntityMention:
    """One matched entity occurrence inside a text.

    Attributes:
        entity_id: vocabulary id of the matched entity.
        start: token index where the match begins.
        length: number of tokens covered by the match.
    """

    entity_id: int
    start: int
    length: int


class EntityExtractor:
    """Greedy longest-match annotator over a phrase gazetteer.

    Args:
        vocabulary: the entity vocabulary; every phrase added to the
            extractor is also interned here.
        max_phrase_tokens: longest phrase length considered during matching.
    """

    def __init__(self, vocabulary: EntityVocabulary | None = None, max_phrase_tokens: int = 6) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else EntityVocabulary()
        self.max_phrase_tokens = int(max_phrase_tokens)
        # token-tuple -> entity id for O(1) phrase lookup
        self._phrase_index: dict[tuple[str, ...], int] = {}

    def add_phrase(self, phrase: str) -> int:
        """Register a gazetteer phrase; returns its vocabulary id."""
        tokens = tuple(tokenize(phrase))
        if not tokens:
            raise ValueError(f"phrase {phrase!r} contains no tokens")
        if len(tokens) > self.max_phrase_tokens:
            raise ValueError(
                f"phrase {phrase!r} has {len(tokens)} tokens; max is {self.max_phrase_tokens}"
            )
        entity_id = self.vocabulary.add(" ".join(tokens))
        self._phrase_index[tokens] = entity_id
        return entity_id

    def add_phrases(self, phrases) -> list[int]:
        """Register many phrases; returns their ids in order."""
        return [self.add_phrase(p) for p in phrases]

    @property
    def n_phrases(self) -> int:
        return len(self._phrase_index)

    def annotate(self, text: str) -> list[EntityMention]:
        """All entity mentions in ``text`` via greedy longest-match.

        Scans left to right; at each position the longest gazetteer phrase
        starting there wins and the scan resumes after it (mentions never
        overlap), mirroring how annotators like TagMe segment text.
        """
        tokens = tokenize(text)
        mentions: list[EntityMention] = []
        i = 0
        n = len(tokens)
        while i < n:
            matched = None
            longest = min(self.max_phrase_tokens, n - i)
            for length in range(longest, 0, -1):
                candidate = tuple(tokens[i : i + length])
                entity_id = self._phrase_index.get(candidate)
                if entity_id is not None:
                    matched = EntityMention(entity_id=entity_id, start=i, length=length)
                    break
            if matched is not None:
                mentions.append(matched)
                i += matched.length
            else:
                i += 1
        return mentions

    def extract(self, text: str) -> list[int]:
        """Entity ids mentioned in ``text`` (with repetitions, in order).

        Repetitions are preserved because the paper's frequency encoding of
        a query counts repeated entities (Example 1: "worldcup" appears
        twice and is encoded with frequency 2).
        """
        return [m.entity_id for m in self.annotate(text)]

    def extract_unique(self, text: str) -> list[int]:
        """Deduplicated entity ids in first-mention order."""
        seen: set[int] = set()
        ordered: list[int] = []
        for m in self.annotate(text):
            if m.entity_id not in seen:
                seen.add(m.entity_id)
                ordered.append(m.entity_id)
        return ordered
