"""Proximity-heuristic entity expansion (Section IV-B).

The paper diversifies recommendation by expanding an item's entity set:
"Expansion entity sets are extracted based on the proximity heuristics [29]
from item descriptions.  If two entities often co-occurred closely in the
same category, we believe they are strongly related.  Given two entities,
the expansion weight between them is calculated by their proximity."

We implement this with the span-based proximity accumulation of Tao & Zhai
[29]: each time two entities co-occur in one item description within the
same category, the pair accrues a proximity credit that decays with the
token distance between the mentions.  The expansion weight of a related
entity is its accumulated credit normalized by the anchor entity's total
credit mass, so weights fall in (0, 1] — matching Example 1 where expansion
weights like 0.9 and 0.7 sit below the weight 1 of original entities.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.entities.extractor import EntityMention


@dataclass(frozen=True)
class Expansion:
    """One expansion entity with its weight.

    Attributes:
        entity_id: the related entity.
        weight: expansion weight ``w_e`` in (0, 1].
    """

    entity_id: int
    weight: float


def proximity_credit(distance: int, alpha: float = 1.0) -> float:
    """Credit for a co-occurrence at token ``distance`` (Tao & Zhai style).

    ``credit = alpha / (alpha + distance)`` — 1.0 for adjacent mentions,
    decaying hyperbolically with distance.
    """
    if distance < 0:
        raise ValueError(f"distance must be >= 0, got {distance}")
    return alpha / (alpha + distance)


class EntityExpander:
    """Per-category entity co-occurrence graph with proximity weights.

    Usage: feed every training item's mentions with :meth:`observe`, then
    query :meth:`expand` for the weighted expansion set of an entity within
    a category.
    """

    def __init__(self, alpha: float = 1.0, max_expansions: int = 5, min_weight: float = 0.05) -> None:
        if max_expansions < 0:
            raise ValueError(f"max_expansions must be >= 0, got {max_expansions}")
        self.alpha = float(alpha)
        self.max_expansions = int(max_expansions)
        self.min_weight = float(min_weight)
        # category -> anchor entity -> related entity -> accumulated credit
        self._credit: dict[int, dict[int, dict[int, float]]] = defaultdict(
            lambda: defaultdict(lambda: defaultdict(float))
        )
        # Memo of expand() results, valid for one observation version:
        # ranking an anchor's full co-occurrence list is O(R log R) and
        # popular anchors recur across the items of a serving window, so
        # between observes the sort is paid once per (category, anchor).
        self._version = 0
        self._expand_cache: dict[tuple[int, int], list[Expansion]] = {}
        self._expand_cache_version = -1

    # The lambda-backed defaultdict chain cannot be pickled; snapshots
    # (repro.serve.snapshot) serialize the credit graph as plain dicts and
    # restore the defaultdict behaviour on load.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_credit"] = {
            cat: {anchor: dict(related) for anchor, related in by_cat.items()}
            for cat, by_cat in self._credit.items()
        }
        state["_expand_cache"] = {}  # rebuilt lazily after load
        return state

    def __setstate__(self, state: dict) -> None:
        credit = state.pop("_credit")
        self.__dict__.update(state)
        self._credit = defaultdict(lambda: defaultdict(lambda: defaultdict(float)))
        for cat, by_cat in credit.items():
            for anchor, related in by_cat.items():
                self._credit[cat][anchor].update(related)

    def observe(self, category: int, mentions: Sequence[EntityMention]) -> None:
        """Accumulate proximity credit for all entity pairs in one item."""
        category = int(category)
        by_cat = self._credit[category]
        n = len(mentions)
        for i in range(n):
            for j in range(i + 1, n):
                a, b = mentions[i], mentions[j]
                if a.entity_id == b.entity_id:
                    continue
                # Token gap between the end of the earlier mention and the
                # start of the later one (0 when adjacent).
                distance = max(0, b.start - (a.start + a.length))
                credit = proximity_credit(distance, self.alpha)
                by_cat[a.entity_id][b.entity_id] += credit
                by_cat[b.entity_id][a.entity_id] += credit
        self._version += 1  # rankings may shift: invalidate the expand memo

    def observe_entity_list(self, category: int, entity_ids: Sequence[int]) -> None:
        """Convenience: observe entities as adjacent mentions (distance by rank).

        Used when only the ordered entity list of an item is available (no
        token offsets), e.g. for the MovieLens-like dataset where "text" is
        a genre/tag list.
        """
        mentions = [EntityMention(entity_id=int(e), start=i, length=1) for i, e in enumerate(entity_ids)]
        self.observe(category, mentions)

    def expand(self, category: int, entity_id: int) -> list[Expansion]:
        """Top weighted expansions of ``entity_id`` within ``category``.

        Weights are credits normalized by the anchor's strongest credit, so
        the best-related entity has weight 1 scaled down by ``damping``
        toward the paper's (0,1) expansion-weight range; entities below
        ``min_weight`` or beyond ``max_expansions`` are dropped.

        Results are memoized per (category, anchor) until the next
        :meth:`observe`; treat the returned list as immutable.
        """
        if self.max_expansions == 0:
            return []
        if self._expand_cache_version != self._version:
            self._expand_cache.clear()
            self._expand_cache_version = self._version
        key = (int(category), int(entity_id))
        cached = self._expand_cache.get(key)
        if cached is not None:
            return cached
        expansions = self._expand_uncached(key[0], key[1])
        self._expand_cache[key] = expansions
        return expansions

    def _expand_uncached(self, category: int, entity_id: int) -> list[Expansion]:
        related = self._credit.get(category, {}).get(entity_id)
        if not related:
            return []
        max_credit = max(related.values())
        if max_credit <= 0:
            return []
        scored = sorted(related.items(), key=lambda kv: (-kv[1], kv[0]))
        expansions: list[Expansion] = []
        for other_id, credit in scored[: self.max_expansions]:
            weight = credit / max_credit
            # Expansion entities always weigh strictly less than original
            # entities (w_e = 1); cap just below 1.
            weight = min(weight, 0.99)
            if weight < self.min_weight:
                continue
            expansions.append(Expansion(entity_id=other_id, weight=weight))
        return expansions

    def expand_set(
        self, category: int, entity_ids: Sequence[int]
    ) -> list[Expansion]:
        """Union of expansions for a whole entity set, original ids excluded.

        When an expansion entity is reachable from several anchors its
        maximum weight wins.  The result is sorted by descending weight.
        """
        original = set(int(e) for e in entity_ids)
        best: dict[int, float] = {}
        for entity_id in original:
            for expansion in self.expand(category, entity_id):
                if expansion.entity_id in original:
                    continue
                current = best.get(expansion.entity_id, 0.0)
                if expansion.weight > current:
                    best[expansion.entity_id] = expansion.weight
        return [
            Expansion(entity_id=eid, weight=w)
            for eid, w in sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def related_entities(self, category: int, entity_id: int) -> list[int]:
        """Ids of all entities with any accumulated credit to ``entity_id``."""
        related = self._credit.get(int(category), {}).get(int(entity_id), {})
        return sorted(related)
