"""Dataset persistence: JSON-lines export/import.

Lets generated datasets be stored, shared and reloaded without re-running
the generators (useful both for reproducibility — pin the exact evaluation
data — and for plugging in real crawled data in the paper's format).

Layout of a dataset directory::

    meta.json           name, n_categories, producer/consumer ids
    entities.jsonl      one {"id", "name"} per line
    items.jsonl         one social item per line
    interactions.jsonl  one interaction per line
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.datasets.schema import Dataset, Interaction, SocialItem


def save_dataset(dataset: Dataset, directory: str | Path) -> Path:
    """Write ``dataset`` to ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "name": dataset.name,
        "n_categories": dataset.n_categories,
        "producer_ids": dataset.producer_ids,
        "consumer_ids": dataset.consumer_ids,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    with (directory / "entities.jsonl").open("w") as fh:
        for entity_id, name in enumerate(dataset.entity_names):
            fh.write(json.dumps({"id": entity_id, "name": name}) + "\n")
    with (directory / "items.jsonl").open("w") as fh:
        for item in dataset.items:
            fh.write(
                json.dumps(
                    {
                        "item_id": item.item_id,
                        "category": item.category,
                        "producer": item.producer,
                        "entities": list(item.entities),
                        "text": item.text,
                        "timestamp": item.timestamp,
                    }
                )
                + "\n"
            )
    with (directory / "interactions.jsonl").open("w") as fh:
        for inter in dataset.interactions:
            fh.write(
                json.dumps(
                    {
                        "user_id": inter.user_id,
                        "item_id": inter.item_id,
                        "category": inter.category,
                        "producer": inter.producer,
                        "timestamp": inter.timestamp,
                    }
                )
                + "\n"
            )
    return directory


def load_dataset(directory: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Validates referential integrity on load; raises ``FileNotFoundError``
    for missing files and ``ValueError`` for inconsistent content.
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    entity_names: list[str] = []
    with (directory / "entities.jsonl").open() as fh:
        for line in fh:
            record = json.loads(line)
            if record["id"] != len(entity_names):
                raise ValueError(
                    f"entities.jsonl ids must be dense/ordered; got {record['id']} "
                    f"at position {len(entity_names)}"
                )
            entity_names.append(record["name"])
    items: list[SocialItem] = []
    with (directory / "items.jsonl").open() as fh:
        for line in fh:
            record = json.loads(line)
            items.append(
                SocialItem(
                    item_id=record["item_id"],
                    category=record["category"],
                    producer=record["producer"],
                    entities=tuple(record["entities"]),
                    text=record["text"],
                    timestamp=record["timestamp"],
                )
            )
    interactions: list[Interaction] = []
    with (directory / "interactions.jsonl").open() as fh:
        for line in fh:
            record = json.loads(line)
            interactions.append(Interaction(**record))
    dataset = Dataset(
        name=meta["name"],
        n_categories=meta["n_categories"],
        items=items,
        interactions=interactions,
        entity_names=entity_names,
        producer_ids=list(meta["producer_ids"]),
        consumer_ids=list(meta["consumer_ids"]),
    )
    dataset.validate()
    return dataset
