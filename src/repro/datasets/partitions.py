"""Stream simulation protocol: timestamp-ordered partitioning.

The paper follows Wang et al. [31]: "We first order all interactions by
timestamps, and then evenly split them into six partitions, the first two of
which are the training sets while the other four are reserved for testing.
When the current partition is used for training, its immediate next
partition is used for testing."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.schema import Dataset, Interaction, SocialItem


@dataclass
class PartitionedStream:
    """A dataset split into timestamp-ordered partitions.

    Attributes:
        dataset: the source dataset.
        partitions: interaction lists, one per partition (time ordered).
        boundaries: ``(start, end]`` time range per partition; partition 0
            starts at -inf so the earliest item belongs somewhere.
        n_train: number of leading partitions reserved for initial training.
    """

    dataset: Dataset
    partitions: list[list[Interaction]]
    boundaries: list[tuple[float, float]]
    n_train: int = 2
    _items_sorted: list[SocialItem] = field(default_factory=list, repr=False)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def train_indices(self) -> list[int]:
        return list(range(self.n_train))

    @property
    def test_indices(self) -> list[int]:
        return list(range(self.n_train, self.n_partitions))

    def training_interactions(self) -> list[Interaction]:
        """All interactions in the initial training partitions."""
        out: list[Interaction] = []
        for i in self.train_indices:
            out.extend(self.partitions[i])
        return out

    def items_in_partition(self, index: int) -> list[SocialItem]:
        """Items *uploaded* during partition ``index``'s time window.

        These form the social-item stream replayed against the recommender
        during that partition.
        """
        start, end = self.boundaries[index]
        return [it for it in self._items_sorted if start < it.timestamp <= end]

    def ground_truth(self, index: int) -> dict[int, set[int]]:
        """Item id -> consumers who interacted with it *within* partition
        ``index`` — the paper's hit-judgement for P@k."""
        truth: dict[int, set[int]] = {}
        for inter in self.partitions[index]:
            truth.setdefault(inter.item_id, set()).add(inter.user_id)
        return truth

    def protocol_steps(self) -> list[tuple[list[int], int]]:
        """The sliding train->test schedule of Wang et al. [31].

        Returns ``(train_partition_indices, test_partition_index)`` pairs:
        with 6 partitions and 2 training ones, the steps are
        ``([0,1], 2), ([0,1,2], 3), ([0,1,2,3], 4), ([0,1,2,3,4], 5)``.
        """
        steps: list[tuple[list[int], int]] = []
        for test_index in self.test_indices:
            steps.append((list(range(test_index)), test_index))
        return steps


def partition_interactions(dataset: Dataset, n_partitions: int = 6, n_train: int = 2) -> PartitionedStream:
    """Evenly split the interaction stream into timestamp-ordered partitions.

    Args:
        dataset: the dataset to split; interactions are sorted by timestamp
            first (the paper's "order all interactions by timestamps").
        n_partitions: number of equal-count partitions (paper: 6).
        n_train: leading partitions used as the initial training set
            (paper: 2).
    """
    if n_partitions < 2:
        raise ValueError(f"n_partitions must be >= 2, got {n_partitions}")
    if not (1 <= n_train < n_partitions):
        raise ValueError(f"n_train must be in [1, {n_partitions}), got {n_train}")
    ordered = sorted(dataset.interactions, key=lambda i: (i.timestamp, i.item_id, i.user_id))
    if len(ordered) < n_partitions:
        raise ValueError(
            f"dataset has {len(ordered)} interactions; need at least {n_partitions}"
        )
    size = len(ordered) // n_partitions
    partitions: list[list[Interaction]] = []
    for p in range(n_partitions):
        start = p * size
        end = (p + 1) * size if p < n_partitions - 1 else len(ordered)
        partitions.append(ordered[start:end])
    boundaries: list[tuple[float, float]] = []
    for p, chunk in enumerate(partitions):
        start_t = float("-inf") if p == 0 else partitions[p - 1][-1].timestamp
        end_t = chunk[-1].timestamp if p < n_partitions - 1 else float("inf")
        boundaries.append((start_t, end_t))
    items_sorted = sorted(dataset.items, key=lambda x: (x.timestamp, x.item_id))
    return PartitionedStream(
        dataset=dataset,
        partitions=partitions,
        boundaries=boundaries,
        n_train=n_train,
        _items_sorted=items_sorted,
    )
