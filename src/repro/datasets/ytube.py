"""Synthetic YTube-like dataset generator.

The paper's YTube set was crawled from YouTube (787k videos, 3,146
producers, 8.41M consumers, 49M interactions).  Offline we generate a
laptop-scale dataset whose *latent structure* matches the behavioural
assumptions the paper models (DESIGN.md, Substitutions):

- each **producer** creates items following its own hidden-state category
  pattern (a Markov chain over latent states, each peaked on one or two
  categories and on a topic of entities) — the a-HMM's generative story;
- each **consumer** browses driven by a mixture of (i) its own sticky
  interest chain over a few preferred categories, (ii) the latest uploads
  of the producers it follows (so the consumer trajectory is *interrupted
  by producer state*, Fig. 2 — the b-HMM's generative story), and (iii)
  occasional short external-event *bursts* into unrelated categories
  (the short-term-interest phenomenon the window |W| captures);
- consumer preferences **drift slowly** over the timeline, which is what
  makes profile updates matter (Fig. 9);
- within a category, item choice is biased toward the consumer's preferred
  **entity topics** and toward recent uploads, so entity-level profile
  matching and expansion carry signal (Fig. 8: ssRec vs ssRec-ne).

Every distribution is seeded; the generator is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.datasets.text import compose_description, unique_phrases


@dataclass
class YTubeConfig:
    """Knobs for the YTube-like generator.

    Defaults are laptop scale; :meth:`small` is for tests, :meth:`paper_shape`
    keeps the paper's category count (19) at moderate size.
    """

    name: str = "YTube"
    seed: int = 7
    n_categories: int = 12
    n_producers: int = 48
    n_consumers: int = 600
    n_items: int = 4000
    n_interactions: int = 40000
    entities_per_category: int = 60
    topics_per_category: int = 4
    min_entities_per_item: int = 3
    max_entities_per_item: int = 6
    producer_states: int = 3
    producer_self_transition: float = 0.7
    #: probability mass on advancing to the *next* state (cyclically) rather
    #: than an arbitrary one.  Real channels rotate through content themes
    #: (match preview -> match -> analysis); the resulting predictable home-
    #: category switches are the producer-trajectory signal the BiHMM layer
    #: exploits (Fig. 5).
    producer_cycle_prob: float = 0.25
    #: strength of the entity-topic affinity bias when a consumer picks an
    #: item within a category; higher values make entity-level profile
    #: matching (and its expansion, Fig. 8) more informative.
    affinity_choice_weight: float = 2.5
    min_followed: int = 1
    max_followed: int = 4
    follow_prob: float = 0.5
    burst_prob: float = 0.03
    burst_length_mean: float = 5.0
    drift_prob: float = 0.002
    consumer_self_transition: float = 0.8
    min_preferred_categories: int = 2
    max_preferred_categories: int = 4
    recent_pool: int = 25
    duplicate_mention_prob: float = 0.15
    stray_weight: float = 0.01  # browse weight of non-preferred categories
    #: distinct home categories per producer (None = one per latent state,
    #: drawn independently — broad producers).  Small values concentrate a
    #: producer's output the way real channels specialize.
    producer_home_categories: int | None = None
    #: multiplicative preference for following producers whose home
    #: categories overlap the consumer's interests.
    follow_alignment: float = 5.0
    #: probability that a follow-driven browse continues with the same
    #: producer as the previous one — consumers ride a producer's creation
    #: trajectory (Fig. 2's BBC-news story), which is the dependency the
    #: BiHMM's producer layer captures.
    producer_stickiness: float = 0.7

    @classmethod
    def small(cls, seed: int = 7) -> "YTubeConfig":
        """Tiny configuration for unit/integration tests."""
        return cls(
            seed=seed,
            n_categories=6,
            n_producers=12,
            n_consumers=80,
            n_items=400,
            n_interactions=4000,
            entities_per_category=24,
            topics_per_category=3,
        )

    @classmethod
    def paper_shape(cls, seed: int = 7) -> "YTubeConfig":
        """Paper's C=19 categories at a scale a laptop handles."""
        return cls(
            seed=seed,
            n_categories=19,
            n_producers=80,
            n_consumers=1200,
            n_items=8000,
            n_interactions=80000,
            entities_per_category=80,
        )

    @classmethod
    def sparse(cls, seed: int = 7) -> "YTubeConfig":
        """The paper's natural YouTube sparsity: many consumers with few
        interactions each and narrow interests.

        Table II's blocking effect (per-block entity/producer universes
        shrinking sharply with the block count) only manifests in this
        regime — dense per-user histories union every block up to the full
        vocabulary.
        """
        return cls(
            seed=seed,
            name="YTube-sparse",
            n_categories=16,
            n_producers=64,
            n_consumers=2000,
            n_items=5000,
            n_interactions=12000,
            entities_per_category=300,
            min_preferred_categories=1,
            max_preferred_categories=1,
            follow_prob=0.6,
            burst_prob=0.005,
            drift_prob=0.0005,
            consumer_self_transition=0.92,
            stray_weight=0.001,
            producer_home_categories=1,
            follow_alignment=200.0,
        )


@dataclass
class _Producer:
    """Latent producer process: hidden-state chain over categories/topics."""

    producer_id: int
    transition: np.ndarray          # (S, S) state chain
    state_category: np.ndarray      # (S, C) peaked category emission
    state_topic: np.ndarray         # (S,) preferred topic index per state
    activity: float                 # relative upload rate
    state: int = 0


@dataclass
class _Consumer:
    """Latent consumer process: preferences, follows, burst state."""

    user_id: int
    preferred: list[int]            # preferred categories, first = current
    category_weights: np.ndarray    # (C,) browse weights over categories
    followed: list[int]             # producer ids
    topic_affinity: dict[int, int]  # category -> preferred topic
    activity: float
    current_category: int = 0
    burst_remaining: int = 0
    burst_category: int = -1
    last_producer: int = -1
    #: per-producer consumption pointer: index of the next unread item in
    #: that producer's creation sequence.
    read_pointer: dict[int, int] = field(default_factory=dict)


def _build_entities(config: YTubeConfig, rng: np.random.Generator):
    """Entity universe: per-category pools partitioned into topics.

    Returns (entity_names, pools, topic_of) where ``pools[c][t]`` is the id
    list of topic ``t`` in category ``c``.
    """
    total = config.n_categories * config.entities_per_category
    names = unique_phrases(rng, total)
    pools: list[list[list[int]]] = []
    next_id = 0
    per_topic = max(1, config.entities_per_category // config.topics_per_category)
    for _ in range(config.n_categories):
        topics: list[list[int]] = []
        remaining = config.entities_per_category
        for t in range(config.topics_per_category):
            size = per_topic if t < config.topics_per_category - 1 else remaining
            topics.append(list(range(next_id, next_id + size)))
            next_id += size
            remaining -= size
        pools.append(topics)
    return names, pools


def _build_producers(config: YTubeConfig, rng: np.random.Generator) -> list[_Producer]:
    producers = []
    for pid in range(config.n_producers):
        S = config.producer_states
        # Sticky chain with a cyclic bias: stay, else advance to the next
        # state, else jump anywhere.
        self_p = config.producer_self_transition if S > 1 else 1.0
        cycle_p = config.producer_cycle_prob if S > 1 else 0.0
        rest = max(0.0, 1.0 - self_p - cycle_p)
        transition = np.full((S, S), rest / max(S - 1, 1) if S > 1 else 0.0)
        for s in range(S):
            transition[s, s] = self_p
            if S > 1:
                transition[s, (s + 1) % S] += cycle_p
        transition /= transition.sum(axis=1, keepdims=True)
        # Each state peaks on one "home" category — distinct per state when
        # the category alphabet allows, so state switches are visible.
        if config.producer_home_categories is None:
            homes = rng.choice(
                config.n_categories, size=S, replace=S > config.n_categories
            )
        else:
            n_homes = min(config.producer_home_categories, config.n_categories)
            pool = rng.choice(config.n_categories, size=n_homes, replace=False)
            homes = pool[rng.integers(0, n_homes, size=S)]
        state_category = np.full((S, config.n_categories), 0.02)
        for s, home in enumerate(homes):
            state_category[s, home] += 1.0
        state_category /= state_category.sum(axis=1, keepdims=True)
        state_topic = rng.integers(0, config.topics_per_category, size=S)
        producers.append(
            _Producer(
                producer_id=pid,
                transition=transition,
                state_category=state_category,
                state_topic=state_topic,
                activity=float(rng.lognormal(0.0, 0.6)),
                state=int(rng.integers(S)),
            )
        )
    return producers


def _draw_item_entities(
    config: YTubeConfig,
    rng: np.random.Generator,
    pools,
    category: int,
    topic: int,
) -> list[int]:
    """Entity list for one item: mostly from the topic, some category-wide,
    with occasional repeated mentions (Example 1 repeats 'worldcup')."""
    n_entities = int(rng.integers(config.min_entities_per_item, config.max_entities_per_item + 1))
    topic_pool = pools[category][topic]
    category_pool = [e for t in pools[category] for e in t]
    entities: list[int] = []
    for _ in range(n_entities):
        pool = topic_pool if rng.random() < 0.75 else category_pool
        entities.append(int(pool[rng.integers(len(pool))]))
    if entities and rng.random() < config.duplicate_mention_prob:
        entities.append(entities[int(rng.integers(len(entities)))])
    return entities


def _build_items(
    config: YTubeConfig, rng: np.random.Generator, producers: list[_Producer], pools
) -> list[SocialItem]:
    weights = np.array([p.activity for p in producers])
    weights /= weights.sum()
    # Upload times spread over [0, 1); kept sorted so the event clock and the
    # per-producer creation order coincide.
    times = np.sort(rng.random(config.n_items))
    items: list[SocialItem] = []
    for item_id in range(config.n_items):
        producer = producers[int(rng.choice(len(producers), p=weights))]
        S = producer.transition.shape[0]
        producer.state = int(rng.choice(S, p=producer.transition[producer.state]))
        category = int(rng.choice(config.n_categories, p=producer.state_category[producer.state]))
        topic = int(producer.state_topic[producer.state])
        entities = _draw_item_entities(config, rng, pools, category, topic)
        items.append(
            SocialItem(
                item_id=item_id,
                category=category,
                producer=producer.producer_id,
                entities=tuple(entities),
                text="",  # filled after entity names exist
                timestamp=float(times[item_id]),
            )
        )
    return items


def _attach_text(items: list[SocialItem], entity_names: list[str], rng: np.random.Generator):
    """Compose the description text embedding each item's entity phrases."""
    out = []
    for it in items:
        text = compose_description(rng, [entity_names[e] for e in it.entities])
        out.append(
            SocialItem(
                item_id=it.item_id,
                category=it.category,
                producer=it.producer,
                entities=it.entities,
                text=text,
                timestamp=it.timestamp,
            )
        )
    return out


def _build_consumers(
    config: YTubeConfig, rng: np.random.Generator, producers: list[_Producer]
) -> list[_Consumer]:
    consumers = []
    base_weights = np.array([p.activity for p in producers])
    base_weights /= base_weights.sum()
    # Producers' home categories (argmax emission per latent state): consumers
    # preferentially follow producers aligned with their own interests, which
    # is both realistic and the coupling the BiHMM exploits.
    home_categories = [
        {int(np.argmax(p.state_category[s])) for s in range(p.state_category.shape[0])}
        for p in producers
    ]
    for i in range(config.n_consumers):
        user_id = config.n_producers + i  # consumer ids follow producer ids
        n_pref = int(rng.integers(config.min_preferred_categories, config.max_preferred_categories + 1))
        preferred = list(rng.choice(config.n_categories, size=n_pref, replace=False))
        weights = np.full(config.n_categories, config.stray_weight)
        # Geometric-ish decay over the preferred categories.
        for rank, cat in enumerate(preferred):
            weights[cat] += 1.0 * (0.6 ** rank)
        weights /= weights.sum()
        n_follow = int(rng.integers(config.min_followed, config.max_followed + 1))
        preferred_set = set(int(c) for c in preferred)
        follow_weights = base_weights * np.array(
            [1.0 + config.follow_alignment * len(homes & preferred_set) for homes in home_categories]
        )
        follow_weights /= follow_weights.sum()
        followed = list(
            rng.choice(
                len(producers),
                size=min(n_follow, len(producers)),
                replace=False,
                p=follow_weights,
            )
        )
        topic_affinity = {
            c: int(rng.integers(config.topics_per_category)) for c in range(config.n_categories)
        }
        consumers.append(
            _Consumer(
                user_id=user_id,
                preferred=[int(c) for c in preferred],
                category_weights=weights,
                followed=[int(p) for p in followed],
                topic_affinity=topic_affinity,
                activity=float(rng.lognormal(0.0, 0.8)),
                current_category=int(preferred[0]),
            )
        )
    return consumers


class _CategoryPools:
    """Time-aware per-category and per-producer pools of uploaded items.

    ``advance(t)`` makes all items uploaded before ``t`` visible; recent
    items per category are kept for recency-biased choice, and each
    producer's visible creation sequence supports pointer-based
    "ride the trajectory" consumption.
    """

    def __init__(self, items: list[SocialItem], n_categories: int, recent_pool: int) -> None:
        self._items = items  # must be sorted by timestamp
        self._cursor = 0
        self._recent: list[list[SocialItem]] = [[] for _ in range(n_categories)]
        self._recent_pool = recent_pool
        self._by_producer: dict[int, list[SocialItem]] = {}

    def advance(self, t: float) -> None:
        while self._cursor < len(self._items) and self._items[self._cursor].timestamp <= t:
            item = self._items[self._cursor]
            bucket = self._recent[item.category]
            bucket.append(item)
            if len(bucket) > self._recent_pool:
                bucket.pop(0)
            self._by_producer.setdefault(item.producer, []).append(item)
            self._cursor += 1

    def recent(self, category: int) -> list[SocialItem]:
        return self._recent[category]

    def producer_sequence(self, producer_id: int) -> list[SocialItem]:
        """The producer's visible creations, oldest first."""
        return self._by_producer.get(producer_id, [])

    def any_nonempty_category(self) -> int | None:
        for c, bucket in enumerate(self._recent):
            if bucket:
                return c
        return None


def _choose_item(
    rng: np.random.Generator,
    pool: list[SocialItem],
    consumer: _Consumer,
    pools_by_topic,
    affinity_weight: float = 2.5,
) -> SocialItem:
    """Pick an item from ``pool`` biased to topic affinity and recency."""
    if len(pool) == 1:
        return pool[0]
    scores = np.zeros(len(pool))
    for idx, item in enumerate(pool):
        affinity_topic = consumer.topic_affinity.get(item.category, 0)
        topic_entities = set(pools_by_topic[item.category][affinity_topic])
        overlap = sum(1 for e in item.entities if e in topic_entities)
        recency = (idx + 1) / len(pool)  # later in pool == more recent
        scores[idx] = 0.2 + affinity_weight * overlap + 0.3 * recency
    scores /= scores.sum()
    return pool[int(rng.choice(len(pool), p=scores))]


def _simulate_interactions(
    config: YTubeConfig,
    rng: np.random.Generator,
    items: list[SocialItem],
    consumers: list[_Consumer],
    pools,
) -> list[Interaction]:
    activity = np.array([c.activity for c in consumers])
    activity /= activity.sum()
    # Interactions start after 2% of the timeline so items exist to browse.
    times = np.sort(rng.random(config.n_interactions) * 0.98 + 0.02)
    category_pools = _CategoryPools(items, config.n_categories, config.recent_pool)
    interactions: list[Interaction] = []
    for t in times:
        category_pools.advance(float(t))
        consumer = consumers[int(rng.choice(len(consumers), p=activity))]

        # Slow preference drift: swap out one preferred category.
        if rng.random() < config.drift_prob:
            new_cat = int(rng.integers(config.n_categories))
            if new_cat not in consumer.preferred:
                consumer.preferred[int(rng.integers(len(consumer.preferred)))] = new_cat
                weights = np.full(config.n_categories, config.stray_weight)
                for rank, cat in enumerate(consumer.preferred):
                    weights[cat] += 1.0 * (0.6 ** rank)
                consumer.category_weights = weights / weights.sum()

        item: SocialItem | None = None
        if consumer.burst_remaining > 0:
            # External-event burst: browse the burst category.
            consumer.burst_remaining -= 1
            pool = category_pools.recent(consumer.burst_category)
            if pool:
                item = _choose_item(rng, pool, consumer, pools, config.affinity_choice_weight)
        if item is None and rng.random() < config.follow_prob and consumer.followed:
            # Producer-driven browse: ride a producer's creation trajectory.
            # Prefer sticking with the previous producer; consume its next
            # unread item so the browsing order mirrors the creation order.
            if (
                consumer.last_producer >= 0
                and consumer.last_producer in consumer.followed
                and rng.random() < config.producer_stickiness
            ):
                producer_id = consumer.last_producer
            else:
                producer_id = consumer.followed[int(rng.integers(len(consumer.followed)))]
            sequence = category_pools.producer_sequence(producer_id)
            if producer_id not in consumer.read_pointer:
                # First contact: start near the producer's current output,
                # not its full backlog.
                consumer.read_pointer[producer_id] = max(0, len(sequence) - 3)
            pointer = consumer.read_pointer[producer_id]
            if pointer < len(sequence):
                item = sequence[pointer]
                consumer.read_pointer[producer_id] = pointer + 1
                consumer.last_producer = producer_id
            else:
                # Nothing unread from this producer: try the others.
                for other in consumer.followed:
                    pointer = consumer.read_pointer.get(other, 0)
                    sequence = category_pools.producer_sequence(other)
                    if pointer < len(sequence):
                        item = sequence[pointer]
                        consumer.read_pointer[other] = pointer + 1
                        consumer.last_producer = other
                        break
        if item is None:
            # Own interest chain: sticky current category, else re-draw.
            if rng.random() >= config.consumer_self_transition:
                consumer.current_category = int(
                    rng.choice(config.n_categories, p=consumer.category_weights)
                )
            pool = category_pools.recent(consumer.current_category)
            if not pool:
                fallback = category_pools.any_nonempty_category()
                if fallback is None:
                    continue
                pool = category_pools.recent(fallback)
            item = _choose_item(rng, pool, consumer, pools, config.affinity_choice_weight)

        interactions.append(
            Interaction(
                user_id=consumer.user_id,
                item_id=item.item_id,
                category=item.category,
                producer=item.producer,
                timestamp=float(t),
            )
        )
        # Maybe start a burst (only when not already bursting).
        if consumer.burst_remaining == 0 and rng.random() < config.burst_prob:
            burst_cat = int(rng.integers(config.n_categories))
            if burst_cat not in consumer.preferred:
                consumer.burst_category = burst_cat
                consumer.burst_remaining = max(1, int(rng.poisson(config.burst_length_mean)))
    return interactions


def generate_ytube(config: YTubeConfig | None = None) -> Dataset:
    """Generate a YTube-like :class:`Dataset` from ``config`` (seeded)."""
    config = config or YTubeConfig()
    rng = np.random.default_rng(config.seed)
    entity_names, pools = _build_entities(config, rng)
    producers = _build_producers(config, rng)
    items = _build_items(config, rng, producers, pools)
    items = _attach_text(items, entity_names, rng)
    consumers = _build_consumers(config, rng, producers)
    interactions = _simulate_interactions(config, rng, items, consumers, pools)
    dataset = Dataset(
        name=config.name,
        n_categories=config.n_categories,
        items=items,
        interactions=interactions,
        entity_names=entity_names,
        producer_ids=[p.producer_id for p in producers],
        consumer_ids=[c.user_id for c in consumers],
    )
    dataset.validate()
    return dataset
