"""Core data schema: social items, interactions, datasets.

The paper describes a social item as a triplet ``v = <c, u^p, E>`` (category,
producer, extracted entity set) and considers two streams: the social item
stream (uploads) and the user-item interaction stream (browsing events).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SocialItem:
    """One social item ``v = <c, u^p, E>`` plus its text and upload time.

    Attributes:
        item_id: unique id.
        category: category index ``c`` in ``[0, n_categories)``.
        producer: id of the producing user ``u^p``.
        entities: entity ids extracted from (or embedded into) the item text.
            Order and multiplicity are preserved — the query frequency
            encoding of the index counts repetitions.
        text: title/description string the extractor runs over.
        timestamp: upload time (monotone event clock).
    """

    item_id: int
    category: int
    producer: int
    entities: tuple[int, ...]
    text: str
    timestamp: float

    def triplet(self) -> tuple[int, int, tuple[int, ...]]:
        """The ``<c, u^p, E>`` triplet used throughout the paper."""
        return (self.category, self.producer, self.entities)


@dataclass(frozen=True)
class Interaction:
    """One consumer browsing event (an element of the interaction stream).

    Attributes:
        user_id: the consumer ``u^c``.
        item_id: the item browsed.
        category: denormalized item category (saves a lookup on hot paths).
        producer: denormalized item producer.
        timestamp: event time; the stream protocol orders by this.
    """

    user_id: int
    item_id: int
    category: int
    producer: int
    timestamp: float


@dataclass
class DatasetStats:
    """Table III row: |U^p|, |U^c|, |E|, C, |IRact|, |V|."""

    name: str
    n_producers: int
    n_consumers: int
    n_entities: int
    n_categories: int
    n_interactions: int
    n_items: int

    def as_row(self) -> dict[str, object]:
        """Column-name keyed row matching Table III's header."""
        return {
            "Dataset": self.name,
            "|Up|": self.n_producers,
            "|Uc|": self.n_consumers,
            "|E|": self.n_entities,
            "C": self.n_categories,
            "|IRact|": self.n_interactions,
            "|V|": self.n_items,
        }


@dataclass
class Dataset:
    """A full dataset: items, interactions, and the entity universe.

    Attributes:
        name: dataset label (``YTube``, ``MLens``, ``SynYTube``, ...).
        n_categories: size of the category alphabet ``C``.
        items: all social items, ordered by upload timestamp.
        interactions: the full interaction stream, ordered by timestamp.
        entity_names: entity id -> surface phrase (the gazetteer).
        producer_ids: ids of users acting as producers (data sources).
        consumer_ids: ids of users acting as consumers (recommendation
            targets; per Definition 1, producer-only users receive none).
    """

    name: str
    n_categories: int
    items: list[SocialItem] = field(default_factory=list)
    interactions: list[Interaction] = field(default_factory=list)
    entity_names: list[str] = field(default_factory=list)
    producer_ids: list[int] = field(default_factory=list)
    consumer_ids: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._item_by_id: dict[int, SocialItem] | None = None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def item(self, item_id: int) -> SocialItem:
        """Item by id (index built lazily on first call)."""
        if self._item_by_id is None or len(self._item_by_id) != len(self.items):
            self._item_by_id = {it.item_id: it for it in self.items}
        return self._item_by_id[item_id]

    def producer_creations(self) -> dict[int, list[tuple[int, int]]]:
        """Producer id -> ordered ``(item_id, category)`` creation list.

        This is exactly the a-HMM training input.
        """
        created: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for it in sorted(self.items, key=lambda x: (x.timestamp, x.item_id)):
            created[it.producer].append((it.item_id, it.category))
        return dict(created)

    def consumer_histories(self) -> dict[int, list[Interaction]]:
        """Consumer id -> temporally ordered interaction list."""
        histories: dict[int, list[Interaction]] = defaultdict(list)
        for inter in sorted(self.interactions, key=lambda x: (x.timestamp, x.item_id)):
            histories[inter.user_id].append(inter)
        return dict(histories)

    def interactions_by_item(self) -> dict[int, set[int]]:
        """Item id -> set of consumers who interacted with it (ground truth
        for the P@k hit judgement)."""
        by_item: dict[int, set[int]] = defaultdict(set)
        for inter in self.interactions:
            by_item[inter.item_id].add(inter.user_id)
        return dict(by_item)

    def category_counts(self) -> Counter[int]:
        """Item count per category."""
        return Counter(it.category for it in self.items)

    # ------------------------------------------------------------------
    # Stats (Table III)
    # ------------------------------------------------------------------
    def stats(self) -> DatasetStats:
        entity_ids = set()
        for it in self.items:
            entity_ids.update(it.entities)
        return DatasetStats(
            name=self.name,
            n_producers=len(self.producer_ids),
            n_consumers=len(self.consumer_ids),
            n_entities=len(entity_ids),
            n_categories=self.n_categories,
            n_interactions=len(self.interactions),
            n_items=len(self.items),
        )

    def validate(self) -> None:
        """Referential-integrity check; raises ``ValueError`` on breakage."""
        item_ids = {it.item_id for it in self.items}
        if len(item_ids) != len(self.items):
            raise ValueError("duplicate item ids")
        producers = set(self.producer_ids)
        for it in self.items:
            if it.producer not in producers:
                raise ValueError(f"item {it.item_id} has unknown producer {it.producer}")
            if not (0 <= it.category < self.n_categories):
                raise ValueError(f"item {it.item_id} has invalid category {it.category}")
            for e in it.entities:
                if not (0 <= e < len(self.entity_names)):
                    raise ValueError(f"item {it.item_id} references unknown entity {e}")
        consumers = set(self.consumer_ids)
        for inter in self.interactions:
            if inter.item_id not in item_ids:
                raise ValueError(f"interaction references unknown item {inter.item_id}")
            if inter.user_id not in consumers:
                raise ValueError(f"interaction references unknown consumer {inter.user_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"Dataset({self.name}: items={s.n_items}, interactions={s.n_interactions}, "
            f"producers={s.n_producers}, consumers={s.n_consumers}, "
            f"categories={s.n_categories}, entities={s.n_entities})"
        )
