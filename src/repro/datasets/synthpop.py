"""Sequential conditional data synthesizer (stand-in for R's synthpop [22]).

The paper builds SynYTube and SynMLens with the synthpop package, whose core
method is *sequential conditional resampling*: columns are synthesized one at
a time, each sampled from its distribution conditional on the columns already
synthesized.  :class:`SynthpopSynthesizer` implements that method for
categorical tables with back-off (full context -> progressively shorter
context -> marginal) to handle unseen contexts.

:func:`synthesize_dataset` applies it at the dataset level: the item/entity/
user universes are preserved (Table III shows near-identical |Up|, |Uc|,
|E|, C, |V| for the synthetic sets) while the *interaction stream* is
resampled — which is also why the paper's synthetic sets differ mainly in
|IRact| (49M -> 52M for YTube).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence

import numpy as np

from repro.datasets.schema import Dataset, Interaction

#: Anything accepted where randomness is seeded: an integer seed or an
#: already-constructed generator (callers composing several seeded stages —
#: the workload simulator, the eval drivers — pass one generator through).
SeedLike = int | np.random.Generator


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing a generator through unchanged lets one explicit seed drive a
    whole pipeline (synthesize -> perturb -> replay) deterministically; an
    integer keeps the historical call sites reproducible as-is.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class SynthpopSynthesizer:
    """Sequential conditional resampler for categorical records.

    Args:
        columns: ordered column names; column ``j`` is synthesized
            conditional on columns ``0..j-1``.
        max_context: cap on how many preceding columns form the
            conditioning context (sparsity control).
    """

    def __init__(self, columns: Sequence[str], max_context: int = 2) -> None:
        if not columns:
            raise ValueError("at least one column is required")
        self.columns = list(columns)
        self.max_context = int(max_context)
        # per column: context-tuple -> Counter of values; () is the marginal
        self._tables: list[dict[tuple, Counter]] = []
        self._fitted = False

    def fit(self, records: Sequence[dict]) -> "SynthpopSynthesizer":
        """Learn the conditional frequency tables from ``records``."""
        if not records:
            raise ValueError("at least one record is required")
        self._tables = [defaultdict(Counter) for _ in self.columns]
        for record in records:
            values = [record[c] for c in self.columns]
            for j, value in enumerate(values):
                start = max(0, j - self.max_context)
                for ctx_start in range(start, j + 1):
                    context = tuple(values[ctx_start:j])
                    self._tables[j][context][value] += 1
        self._fitted = True
        return self

    def _sample_column(self, j: int, context: tuple, rng: np.random.Generator):
        """Sample column ``j`` with back-off from the longest known context."""
        table = self._tables[j]
        for drop in range(len(context) + 1):
            counter = table.get(context[drop:])
            if counter:
                values = list(counter.keys())
                weights = np.array([counter[v] for v in values], dtype=float)
                weights /= weights.sum()
                return values[int(rng.choice(len(values), p=weights))]
        raise RuntimeError(f"no distribution for column {self.columns[j]!r}")

    def sample(self, n: int, seed: SeedLike = 0) -> list[dict]:
        """Draw ``n`` synthetic records (``seed``: int or Generator)."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before sample()")
        rng = as_generator(seed)
        out: list[dict] = []
        for _ in range(n):
            values: list = []
            for j in range(len(self.columns)):
                start = max(0, j - self.max_context)
                context = tuple(values[start:j])
                values.append(self._sample_column(j, context, rng))
            out.append(dict(zip(self.columns, values)))
        return out


def _visible_prefix(pool: list, t: float) -> list:
    """Items of ``pool`` (upload-time sorted) uploaded at or before ``t``."""
    lo, hi = 0, len(pool)
    while lo < hi:
        mid = (lo + hi) // 2
        if pool[mid].timestamp <= t:
            lo = mid + 1
        else:
            hi = mid
    return pool[:lo] if lo > 0 else pool[:1]


def synthesize_dataset(
    source: Dataset,
    name: str | None = None,
    seed: SeedLike = 0,
    interaction_growth: float = 0.06,
    own_item_affinity: float = 4.0,
    recent_pool: int = 25,
) -> Dataset:
    """Synthesize a clone of ``source`` in the manner of SynYTube/SynMLens.

    The item, entity, producer and consumer universes are kept; the
    interaction stream is resynthesized **per user** by sequential
    conditional resampling — each of a user's synthetic categories is drawn
    conditional on the user's previous synthetic category (their own fitted
    transition table, backing off to their marginal), timestamps are the
    user's original ones with jitter, and items are drawn within the
    category with a preference for the items the user originally touched
    (falling back to category popularity).

    Per-user conditioning is what preserves the *behavioural* structure the
    evaluation depends on (trajectory persistence, short-term runs, entity
    affinity) while still being a synthpop-style resample; a global
    (user, category) table would produce i.i.d. browsing and wash out every
    stream-recommendation signal.

    Args:
        seed: integer seed or a live :class:`numpy.random.Generator`; the
            latter lets callers thread one generator through a multi-stage
            pipeline (the workload simulator does).
        interaction_growth: relative size change of the synthetic stream
            (the paper's SynYTube has ~6% more interactions than YTube).
        own_item_affinity: extra weight on items the user originally
            interacted with when materializing a synthetic event.
        recent_pool: synthetic events browse among the most recent visible
            items of the category (the recency behaviour of the source
            stream); without this, interactions smear over the whole
            catalogue and freshly-uploaded items collect no ground truth.
    """
    if not source.interactions:
        raise ValueError("source dataset has no interactions to synthesize from")
    rng = as_generator(seed)
    name = name or f"Syn{source.name}"

    popularity = Counter(i.item_id for i in source.interactions)
    items_by_category: dict[int, list] = defaultdict(list)
    for it in sorted(source.items, key=lambda x: x.timestamp):
        items_by_category[it.category].append(it)
    item_by_id = {it.item_id: it for it in source.items}

    by_user: dict[int, list[Interaction]] = defaultdict(list)
    for inter in sorted(source.interactions, key=lambda i: (i.timestamp, i.item_id)):
        by_user[inter.user_id].append(inter)

    all_times = np.array([i.timestamp for i in source.interactions])
    jitter_scale = float(np.std(all_times) * 0.01) or 1e-6

    interactions: list[Interaction] = []
    n_segments = 4
    for user_id in sorted(by_user):
        history = by_user[user_id]
        cats = [i.category for i in history]
        # Per-user, per-time-segment sequential model: first-order category
        # transitions with marginal back-off (synthpop conditioning with the
        # previous category as context).  Fitting per segment preserves the
        # user's preference *drift* — a stationary whole-history fit would
        # average early and late behaviour and erase exactly the temporal
        # signal the update experiments (Fig. 9) measure.
        seg_size = max(1, len(cats) // n_segments)
        segments: list[tuple[dict[int, Counter], Counter]] = []
        for s in range(0, len(cats), seg_size):
            chunk = cats[s : s + seg_size]
            transition: dict[int, Counter] = defaultdict(Counter)
            for prev, nxt in zip(chunk, chunk[1:]):
                transition[prev][nxt] += 1
            segments.append((transition, Counter(chunk)))
        # Synthetic length: original +- growth.
        n_steps = max(1, int(round(len(history) * (1.0 + interaction_growth))))
        # Timestamps: the user's own, jittered; extra steps resample theirs.
        base = np.array([i.timestamp for i in history])
        times = rng.choice(base, size=n_steps, replace=True) + rng.normal(
            0.0, jitter_scale, size=n_steps
        )
        times = np.clip(times, float(all_times.min()), float(all_times.max()))
        times.sort()
        # The user's own items per category (affinity pool).
        own_items: dict[int, list[int]] = defaultdict(list)
        for inter in history:
            own_items[inter.category].append(inter.item_id)

        category = cats[0]
        for step, t in enumerate(times):
            seg_index = min(len(segments) - 1, step * len(segments) // max(n_steps, 1))
            transition, seg_marginal = segments[seg_index]
            counter = transition.get(category)
            source_counter = counter if counter else seg_marginal
            values = list(source_counter)
            weights = np.array([source_counter[v] for v in values], dtype=float)
            weights /= weights.sum()
            category = values[int(rng.choice(len(values), p=weights))]
            pool = items_by_category.get(category)
            if not pool:
                continue
            visible = _visible_prefix(pool, float(t))[-recent_pool:]
            own = set(own_items.get(category, ()))
            item_weights = np.array(
                [
                    1.0
                    + popularity.get(it.item_id, 0)
                    + (own_item_affinity * popularity.get(it.item_id, 0) if it.item_id in own else 0.0)
                    for it in visible
                ]
            )
            item_weights /= item_weights.sum()
            item = visible[int(rng.choice(len(visible), p=item_weights))]
            interactions.append(
                Interaction(
                    user_id=user_id,
                    item_id=item.item_id,
                    category=item.category,
                    producer=item.producer,
                    timestamp=float(t),
                )
            )

    interactions.sort(key=lambda i: (i.timestamp, i.item_id, i.user_id))
    dataset = Dataset(
        name=name,
        n_categories=source.n_categories,
        items=list(source.items),
        interactions=interactions,
        entity_names=list(source.entity_names),
        producer_ids=list(source.producer_ids),
        consumer_ids=list(source.consumer_ids),
    )
    dataset.validate()
    return dataset
