"""Synthetic MLens-like dataset generator.

The paper uses MovieLens-20M and, since MovieLens has no categories or
producers, *derives* them: "We generate the category information by
clustering all MLens movies based on their ratings, and regard the users who
create social items for one category only and have frequent interactions as
producers."  Our generator emits data that already exhibits the derived
structure:

- every producer creates items of exactly **one category** (the paper's
  producer-selection criterion);
- items (movies) are **front-loaded** on the timeline — the catalogue mostly
  exists before the interaction stream ramps up, unlike YouTube's continuous
  uploads;
- consumer dynamics are **slower** than YTube (rarer bursts, less drift,
  stickier interests), matching the paper's finding that the optimal
  short-term weight is lower on MLens (0.3) than on YTube (0.4) because
  "users' interests are less robust on YouTube".

The consumer simulation is shared with the YTube generator so both datasets
exercise identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.schema import Dataset, SocialItem
from repro.datasets.text import compose_description
from repro.datasets.ytube import (
    YTubeConfig,
    _Producer,
    _build_consumers,
    _build_entities,
    _draw_item_entities,
    _simulate_interactions,
)


@dataclass
class MLensConfig(YTubeConfig):
    """MLens-like generation knobs (inherits the YTube knob set).

    The defaults encode the slower MovieLens dynamics described above.
    """

    name: str = "MLens"
    seed: int = 13
    n_categories: int = 10
    n_producers: int = 30
    n_consumers: int = 500
    n_items: int = 2500
    n_interactions: int = 35000
    entities_per_category: int = 50
    follow_prob: float = 0.35
    burst_prob: float = 0.015
    burst_length_mean: float = 4.0
    drift_prob: float = 0.0008
    consumer_self_transition: float = 0.88
    #: per-state probability mass on a secondary "crossover" category.
    #: Producers remain dominantly single-category (the paper's derivation
    #: criterion) but cross genres in a state-patterned way, which is the
    #: residual producer-trajectory signal on MovieLens-like data.
    producer_crossover: float = 0.2

    @classmethod
    def small(cls, seed: int = 13) -> "MLensConfig":
        """Tiny configuration for unit/integration tests."""
        return cls(
            seed=seed,
            n_categories=5,
            n_producers=10,
            n_consumers=70,
            n_items=300,
            n_interactions=3500,
            entities_per_category=20,
            topics_per_category=3,
        )

    @classmethod
    def paper_shape(cls, seed: int = 13) -> "MLensConfig":
        """Paper's C=15 categories at laptop scale."""
        return cls(
            seed=seed,
            n_categories=15,
            n_producers=50,
            n_consumers=900,
            n_items=5000,
            n_interactions=60000,
        )


def _build_single_category_producers(
    config: MLensConfig, rng: np.random.Generator
) -> list[_Producer]:
    """Producers dominated by one home category.

    States differ in their preferred entity *topic* and in a small
    state-dependent crossover category, so the a-HMM has non-trivial
    structure even though each producer is (nearly) single-category.
    """
    producers = []
    for pid in range(config.n_producers):
        S = config.producer_states
        self_p = config.producer_self_transition if S > 1 else 1.0
        cycle_p = config.producer_cycle_prob if S > 1 else 0.0
        rest = max(0.0, 1.0 - self_p - cycle_p)
        transition = np.full((S, S), rest / max(S - 1, 1) if S > 1 else 0.0)
        for s in range(S):
            transition[s, s] = self_p
            if S > 1:
                transition[s, (s + 1) % S] += cycle_p
        transition /= transition.sum(axis=1, keepdims=True)
        home = int(rng.integers(config.n_categories))
        state_category = np.full((S, config.n_categories), 1e-6)
        state_category[:, home] = 1.0 - config.producer_crossover
        for s in range(S):
            crossover = int(rng.integers(config.n_categories))
            state_category[s, crossover] += config.producer_crossover
        state_category /= state_category.sum(axis=1, keepdims=True)
        state_topic = rng.integers(0, config.topics_per_category, size=S)
        producers.append(
            _Producer(
                producer_id=pid,
                transition=transition,
                state_category=state_category,
                state_topic=state_topic,
                activity=float(rng.lognormal(0.0, 0.5)),
                state=int(rng.integers(S)),
            )
        )
    return producers


def _build_frontloaded_items(
    config: MLensConfig,
    rng: np.random.Generator,
    producers: list[_Producer],
    pools,
    entity_names: list[str],
) -> list[SocialItem]:
    """Item (movie) creation with a front-loaded upload schedule."""
    weights = np.array([p.activity for p in producers])
    weights /= weights.sum()
    # Beta(1.2, 3) skews mass toward the start of the timeline: most of the
    # catalogue exists before the bulk of the interactions.
    times = np.sort(rng.beta(1.2, 3.0, size=config.n_items))
    items: list[SocialItem] = []
    for item_id in range(config.n_items):
        producer = producers[int(rng.choice(len(producers), p=weights))]
        S = producer.transition.shape[0]
        producer.state = int(rng.choice(S, p=producer.transition[producer.state]))
        category = int(np.argmax(producer.state_category[producer.state]))
        topic = int(producer.state_topic[producer.state])
        entities = _draw_item_entities(config, rng, pools, category, topic)
        text = compose_description(rng, [entity_names[e] for e in entities])
        items.append(
            SocialItem(
                item_id=item_id,
                category=category,
                producer=producer.producer_id,
                entities=tuple(entities),
                text=text,
                timestamp=float(times[item_id]),
            )
        )
    return items


def generate_mlens(config: MLensConfig | None = None) -> Dataset:
    """Generate an MLens-like :class:`Dataset` from ``config`` (seeded)."""
    config = config or MLensConfig()
    rng = np.random.default_rng(config.seed)
    entity_names, pools = _build_entities(config, rng)
    producers = _build_single_category_producers(config, rng)
    items = _build_frontloaded_items(config, rng, producers, pools, entity_names)
    consumers = _build_consumers(config, rng, producers)
    interactions = _simulate_interactions(config, rng, items, consumers, pools)
    dataset = Dataset(
        name=config.name,
        n_categories=config.n_categories,
        items=items,
        interactions=interactions,
        entity_names=entity_names,
        producer_ids=[p.producer_id for p in producers],
        consumer_ids=[c.user_id for c in consumers],
    )
    dataset.validate()
    return dataset
