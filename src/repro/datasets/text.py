"""Synthetic title/description text with embedded entity phrases.

The extractor (TagMe stand-in) must be able to recover each item's entity
set from text, so the generator embeds entity phrases verbatim between
filler words.  Entity phrases themselves are pronounceable pseudo-words so
the corpus looks like real media titles rather than opaque ids.
"""

from __future__ import annotations

import numpy as np

_ONSETS = [
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k",
    "kr", "l", "m", "n", "p", "pr", "r", "s", "sh", "st", "t", "tr", "v", "w", "z",
]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"]
_CODAS = ["", "n", "r", "s", "l", "m", "x", "nd", "rk", "st"]

_FILLER = [
    "the", "best", "new", "official", "full", "live", "top", "video",
    "highlights", "review", "episode", "latest", "exclusive", "ultimate",
    "amazing", "watch", "now", "today", "special", "world",
]


def pseudo_word(rng: np.random.Generator, syllables: int | None = None) -> str:
    """One pronounceable pseudo-word, e.g. ``kranshou``."""
    if syllables is None:
        syllables = int(rng.integers(2, 4))
    parts = []
    for _ in range(syllables):
        parts.append(
            _ONSETS[rng.integers(len(_ONSETS))]
            + _NUCLEI[rng.integers(len(_NUCLEI))]
            + _CODAS[rng.integers(len(_CODAS))]
        )
    return "".join(parts)


def pseudo_phrase(rng: np.random.Generator, max_tokens: int = 3) -> str:
    """A 1..max_tokens entity phrase of pseudo-words, e.g. ``kran velsu``."""
    n_tokens = int(rng.integers(1, max_tokens + 1))
    return " ".join(pseudo_word(rng) for _ in range(n_tokens))


def unique_phrases(rng: np.random.Generator, count: int, max_tokens: int = 3) -> list[str]:
    """``count`` distinct entity phrases (collision-free by retry)."""
    phrases: list[str] = []
    seen: set[str] = set()
    attempts = 0
    while len(phrases) < count:
        phrase = pseudo_phrase(rng, max_tokens=max_tokens)
        attempts += 1
        if attempts > count * 100:
            raise RuntimeError("could not generate enough unique phrases")
        if phrase in seen:
            continue
        seen.add(phrase)
        phrases.append(phrase)
    return phrases


def compose_description(
    rng: np.random.Generator,
    entity_phrases: list[str],
    filler_ratio: float = 0.5,
) -> str:
    """Interleave entity phrases with filler words into one description.

    Entity phrase order is preserved (mention positions matter for the
    proximity-based expansion); filler words are sprinkled between them.
    """
    tokens: list[str] = []
    for phrase in entity_phrases:
        n_filler = int(rng.binomial(3, filler_ratio))
        for _ in range(n_filler):
            tokens.append(_FILLER[rng.integers(len(_FILLER))])
        tokens.append(phrase)
    if not tokens:
        tokens.append(_FILLER[rng.integers(len(_FILLER))])
    return " ".join(tokens)
