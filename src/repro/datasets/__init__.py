"""Datasets substrate: schema, synthetic generators, synthpop, partitioning.

The paper evaluates on four datasets (Table III): a crawled YouTube set
(YTube), MovieLens-20M (MLens), and two synthpop-generated clones (SynYTube,
SynMLens).  Offline we substitute seeded synthetic generators whose latent
structure matches the paper's modelling assumptions — producers create items
following per-producer hidden-state category patterns, consumers browse
driven by their own interest chain *interrupted by followed producers* and
by short external bursts (Fig. 2's scenario) — plus a sequential-conditional
synthesizer standing in for the R synthpop package.
"""

from repro.datasets.schema import (
    Dataset,
    DatasetStats,
    Interaction,
    SocialItem,
)
from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.datasets.mlens import MLensConfig, generate_mlens
from repro.datasets.synthpop import SynthpopSynthesizer, synthesize_dataset
from repro.datasets.partitions import PartitionedStream, partition_interactions
from repro.datasets.io import load_dataset, save_dataset

__all__ = [
    "Dataset",
    "DatasetStats",
    "Interaction",
    "SocialItem",
    "YTubeConfig",
    "generate_ytube",
    "MLensConfig",
    "generate_mlens",
    "SynthpopSynthesizer",
    "synthesize_dataset",
    "PartitionedStream",
    "partition_interactions",
    "load_dataset",
    "save_dataset",
]
