"""repro.bench — machine-readable benchmark artifacts and the perf gate.

Every driver under ``benchmarks/bench_*.py`` emits, besides its
human-readable ``results/<name>.txt``, a schema-validated
``results/BENCH_<name>.json`` artifact (:mod:`repro.bench.schema`), so
the performance trajectory of the repo is a diffable, comparable record
instead of prose.  :mod:`repro.bench.compare` turns two such artifacts
(or two directories of them) into a pass/fail regression verdict — the
CLI ``python -m repro.bench compare baseline.json current.json
--tolerance 0.15`` exits non-zero on regression, which is exactly what
the CI ``perf-gate`` job runs against the committed baselines in
``benchmarks/baselines/``.  See docs/BENCHMARKS.md for the schema and
the baseline-update procedure.
"""

from repro.bench.compare import ComparisonReport, MetricDelta, compare_results
from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BenchResult,
    BenchSchemaError,
    artifact_name,
    load_result,
    validate_result,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchResult",
    "BenchSchemaError",
    "artifact_name",
    "load_result",
    "validate_result",
    "ComparisonReport",
    "MetricDelta",
    "compare_results",
]
