"""Benchmark-artifact CLI: validate artifacts, gate on regressions.

Compare one artifact pair or two whole directories (matched by
``BENCH_<name>.json`` filename)::

    python -m repro.bench compare benchmarks/baselines/BENCH_shard_scaling.json \\
        benchmarks/results/BENCH_shard_scaling.json --tolerance 0.15
    python -m repro.bench compare benchmarks/baselines benchmarks/results

    python -m repro.bench validate benchmarks/results/BENCH_*.json

``compare`` exits 1 on any throughput regression beyond the tolerance,
on a measurement missing from the current run, or on a baseline artifact
with no current counterpart — CI gates on this exit status.
``validate`` exits 1 on any malformed artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.compare import DEFAULT_TOLERANCE, compare_results
from repro.bench.schema import BenchSchemaError, load_result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Validate and compare BENCH_*.json benchmark artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare",
        help="gate current artifacts against baselines (exit 1 on regression)",
    )
    compare.add_argument(
        "baseline", help="baseline artifact file, or a directory of BENCH_*.json"
    )
    compare.add_argument(
        "current", help="current artifact file, or a directory of BENCH_*.json"
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative throughput drop (default: %(default)s)",
    )

    validate = sub.add_parser("validate", help="schema-check artifacts (exit 1 on error)")
    validate.add_argument("files", nargs="+", help="BENCH_*.json files to validate")
    return parser


def _artifact_pairs(baseline: Path, current: Path) -> list[tuple[Path, Path | None]]:
    """Resolve the (baseline, current) artifact pairs to compare.

    File + file compares directly.  Directory + directory matches by
    filename: every baseline artifact must have a current counterpart
    (``None`` marks the ones that do not — the caller fails on them).
    """
    if baseline.is_dir() != current.is_dir():
        raise BenchSchemaError(
            "compare needs two files or two directories, "
            f"got {baseline} and {current}"
        )
    if not baseline.is_dir():
        return [(baseline, current if current.exists() else None)]
    pairs: list[tuple[Path, Path | None]] = []
    for base_file in sorted(baseline.glob("BENCH_*.json")):
        cur_file = current / base_file.name
        pairs.append((base_file, cur_file if cur_file.exists() else None))
    if not pairs:
        raise BenchSchemaError(f"no BENCH_*.json artifacts under {baseline}")
    return pairs


def _run_compare(args) -> int:
    pairs = _artifact_pairs(Path(args.baseline), Path(args.current))
    failed = False
    for base_file, cur_file in pairs:
        if cur_file is None:
            print(f"{base_file.name}: NO current artifact — did the bench run?")
            failed = True
            continue
        report = compare_results(
            load_result(base_file), load_result(cur_file), tolerance=args.tolerance
        )
        print(report.to_text())
        print()
        failed = failed or not report.ok
    print("perf gate:", "FAIL" if failed else "PASS")
    return 1 if failed else 0


def _run_validate(args) -> int:
    failed = False
    for name in args.files:
        try:
            data = load_result(name)
        except BenchSchemaError as exc:
            print(f"INVALID: {exc}")
            failed = True
        else:
            print(f"ok: {name} ({data['name']}, {len(data['metrics'])} metric paths)")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "compare":
            return _run_compare(args)
        return _run_validate(args)
    except BenchSchemaError as exc:
        print(f"error: {exc}")
        return 1


if __name__ == "__main__":
    sys.exit(main())
