"""Regression comparison of benchmark artifacts (the CI perf gate).

:func:`compare_results` lines two artifacts of the same benchmark up
path by path and decides pass/fail:

- **throughput** (``items_per_sec``): a regression when the current run
  is more than ``tolerance`` below the baseline (default 15%) — this is
  the gating rule;
- **wall clock** (``seconds``) and **latency percentiles** are reported
  with their ratios for the record but never gate on their own — whole-
  driver wall clock is too noisy to fail a PR on, and latency already
  moves inversely with the gated throughput;
- a path present in the baseline but **missing** from the current run is
  a failure (silently dropping a measurement is how regressions hide);
  new paths are listed as informational.

Speedups (faster-than-baseline) are reported but never fail the gate.

Absolute throughput only compares honestly between like machines, so the
report also diffs the artifacts' ``meta`` blocks (cpu_count, interpreter,
NumPy, platform, ``REPRO_BENCH_*`` knobs) and prints a note for every
mismatch — a gate run against a baseline recorded on different hardware
says so in its output instead of silently gating apples against oranges
(see docs/BENCHMARKS.md for the baseline-update procedure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.schema import BenchSchemaError

#: Default allowed relative throughput drop before the gate fails.
DEFAULT_TOLERANCE = 0.15


@dataclass
class MetricDelta:
    """One (path, metric) pair lined up across baseline and current."""

    path: str
    metric: str
    baseline: float
    current: float
    gated: bool
    regressed: bool

    @property
    def ratio(self) -> float:
        """current / baseline (for throughput, > 1 means faster)."""
        return self.current / self.baseline if self.baseline else float("inf")

    def to_text(self) -> str:
        marker = "REGRESSED" if self.regressed else ("ok" if self.gated else "info")
        return (
            f"{self.path:<36} {self.metric:<14} "
            f"base={self.baseline:12.3f} cur={self.current:12.3f} "
            f"x{self.ratio:6.3f}  {marker}"
        )


@dataclass
class ComparisonReport:
    """Verdict of one baseline-vs-current artifact comparison."""

    name: str
    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_paths: list[str] = field(default_factory=list)
    new_paths: list[str] = field(default_factory=list)
    environment_notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_paths

    def to_text(self) -> str:
        lines = [
            f"Benchmark {self.name!r} — tolerance {self.tolerance:.0%}",
        ]
        for note in self.environment_notes:
            lines.append(f"  note: {note}")
        lines.extend(f"  {delta.to_text()}" for delta in self.deltas)
        for path in self.missing_paths:
            lines.append(f"  {path:<36} MISSING from current run (fails the gate)")
        for path in self.new_paths:
            lines.append(f"  {path:<36} new in current run (no baseline)")
        verdict = (
            "PASS"
            if self.ok
            else f"FAIL ({len(self.regressions)} regressions, "
            f"{len(self.missing_paths)} missing)"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


#: ``meta`` keys whose mismatch weakens absolute-throughput comparison.
_META_KEYS = ("cpu_count", "python", "numpy", "platform", "machine", "env")


def _environment_mismatches(baseline: dict, current: dict) -> list[str]:
    """Human-readable notes for every run-environment difference.

    Informational only: the gate still runs, but its output names the
    hardware/config skew so an operator can tell "code got slower" from
    "different machine" (and knows when baselines need regenerating on
    CI hardware — docs/BENCHMARKS.md).
    """
    base_meta = baseline.get("meta") or {}
    cur_meta = current.get("meta") or {}
    notes = []
    for key in _META_KEYS:
        base_value, cur_value = base_meta.get(key), cur_meta.get(key)
        if base_value != cur_value:
            notes.append(
                f"baseline {key}={base_value!r} vs current {key}={cur_value!r} "
                "— absolute throughput comparison weakened"
            )
    for key in ("seed", "scale"):
        if baseline.get(key) != current.get(key):
            notes.append(
                f"baseline {key}={baseline.get(key)!r} vs current "
                f"{key}={current.get(key)!r} — runs are not like-for-like"
            )
    return notes


def compare_results(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> ComparisonReport:
    """Compare two validated artifacts of the same benchmark.

    Args:
        baseline: the committed reference artifact.
        current: the freshly measured artifact.
        tolerance: allowed relative throughput drop (0.15 = 15%).
    """
    if not (0.0 <= float(tolerance) < 1.0):
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    if baseline.get("name") != current.get("name"):
        raise BenchSchemaError(
            f"artifact mismatch: baseline is {baseline.get('name')!r}, "
            f"current is {current.get('name')!r} — compare like with like"
        )
    report = ComparisonReport(name=str(baseline["name"]), tolerance=float(tolerance))
    report.environment_notes.extend(_environment_mismatches(baseline, current))
    base_metrics: dict = baseline["metrics"]
    cur_metrics: dict = current["metrics"]
    for path in base_metrics:
        base_entry = base_metrics[path]
        cur_entry = cur_metrics.get(path)
        if cur_entry is None:
            report.missing_paths.append(path)
            continue
        if "items_per_sec" in base_entry and "items_per_sec" in cur_entry:
            base_value = float(base_entry["items_per_sec"])
            cur_value = float(cur_entry["items_per_sec"])
            regressed = cur_value < base_value * (1.0 - report.tolerance)
            report.deltas.append(
                MetricDelta(path, "items_per_sec", base_value, cur_value, True, regressed)
            )
        if "seconds" in base_entry and "seconds" in cur_entry:
            report.deltas.append(
                MetricDelta(
                    path,
                    "seconds",
                    float(base_entry["seconds"]),
                    float(cur_entry["seconds"]),
                    False,
                    False,
                )
            )
        base_latency = base_entry.get("latency_ms") or {}
        cur_latency = cur_entry.get("latency_ms") or {}
        for stat in base_latency:
            if stat in cur_latency:
                report.deltas.append(
                    MetricDelta(
                        path,
                        f"latency:{stat}",
                        float(base_latency[stat]),
                        float(cur_latency[stat]),
                        False,
                        False,
                    )
                )
    report.new_paths.extend(path for path in cur_metrics if path not in base_metrics)
    return report
