"""The benchmark artifact schema: one validated JSON file per bench run.

A :class:`BenchResult` records everything needed to compare two runs of
the same benchmark honestly:

- **run metadata** — schema version, benchmark name, creation time, and
  the environment (interpreter, NumPy, platform, CPU count, plus the
  ``REPRO_BENCH_*`` knobs that shaped the run);
- **reproducibility knobs** — the master seed and dataset scale every
  seeded stage derived from;
- **metrics** — per-path measurements: ``items_per_sec`` for throughput
  paths, ``seconds`` for whole-driver wall clock, and an optional
  ``latency_ms`` percentile summary (mean/p50/p95/p99);
- **checks** — the boolean/numeric assertions the bench made (parity
  flags, speedup ratios), so a regression report can say *what held*;
- **extras** — free-form result payload (figure series, tables) for
  plotting trajectories; never compared.

Artifacts are written as ``BENCH_<name>.json`` and validated both on
write and on load, so a malformed artifact fails at the producer or at
the gate — never silently passes through CI.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from numbers import Number
from pathlib import Path

#: Bump when the artifact layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Metric keys a path entry may carry; at least one of the first two is
#: required (a path without a comparable quantity cannot be gated).
_THROUGHPUT_KEY = "items_per_sec"
_SECONDS_KEY = "seconds"
_LATENCY_KEY = "latency_ms"


class BenchSchemaError(ValueError):
    """A benchmark artifact is malformed or incompatible."""


def artifact_name(name: str) -> str:
    """Filename of one benchmark's artifact (``BENCH_<name>.json``)."""
    return f"BENCH_{name}.json"


def run_environment(env_prefix: str = "REPRO_BENCH_") -> dict:
    """The run-environment block every artifact carries.

    Captures what legitimately moves benchmark numbers between runs —
    interpreter, NumPy, platform, CPU budget, and every ``REPRO_BENCH_*``
    knob — so a regression report can distinguish "code got slower" from
    "the run was configured differently".
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith(env_prefix)
        },
    }


@dataclass
class BenchResult:
    """One benchmark run, ready to serialize as ``BENCH_<name>.json``."""

    name: str
    seed: int
    scale: str
    metrics: dict[str, dict]
    checks: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    meta: dict = field(default_factory=run_environment)
    schema_version: int = BENCH_SCHEMA_VERSION
    created_unix: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "created_unix": self.created_unix,
            "seed": self.seed,
            "scale": self.scale,
            "meta": self.meta,
            "metrics": self.metrics,
            "checks": self.checks,
            "extras": self.extras,
        }

    def write(self, directory) -> Path:
        """Validate and write the artifact into ``directory``.

        Validation runs *before* the write: a bench with a malformed
        payload fails its own run rather than poisoning the baseline
        directory with an artifact the gate would later reject.
        """
        data = self.to_dict()
        validate_result(data)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / artifact_name(self.name)
        path.write_text(json.dumps(data, indent=2, sort_keys=True, allow_nan=False) + "\n")
        return path


def _require(condition: bool, problems: list[str], message: str) -> None:
    if not condition:
        problems.append(message)


def _check_json_clean(value: object, where: str, problems: list[str]) -> None:
    """Recursively require ``value`` to be strict-JSON serializable.

    ``extras`` is free-form (nested metric-registry dumps, figure
    series), but it still must survive ``json.dumps(..., allow_nan=False)``
    and a round trip: string keys only, no NaN/Inf, no foreign types.
    Checked at validation time so a bench with a poisoned payload fails
    its own run, not the later gate that loads the artifact.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return
    if isinstance(value, float):
        _require(
            math.isfinite(value),
            problems,
            f"{where} must be a finite number, got {value!r}",
        )
        return
    if isinstance(value, dict):
        for key, entry in value.items():
            if not isinstance(key, str):
                problems.append(f"{where} has a non-string key {key!r}")
                continue
            _check_json_clean(entry, f"{where}[{key!r}]", problems)
        return
    if isinstance(value, list):
        for index, entry in enumerate(value):
            _check_json_clean(entry, f"{where}[{index}]", problems)
        return
    problems.append(
        f"{where} must be JSON-serializable, got {type(value).__name__}"
    )


def validate_result(data: object, source: str = "artifact") -> dict:
    """Check one artifact against the schema; returns it on success.

    Raises :class:`BenchSchemaError` listing *every* problem found, so a
    broken producer is fixed in one round trip instead of one failure at
    a time.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        raise BenchSchemaError(f"{source}: not a JSON object")
    version = data.get("schema_version")
    _require(
        version == BENCH_SCHEMA_VERSION,
        problems,
        f"schema_version must be {BENCH_SCHEMA_VERSION}, got {version!r}",
    )
    name = data.get("name")
    _require(
        isinstance(name, str) and bool(name),
        problems,
        f"name must be a non-empty string, got {name!r}",
    )
    _require(
        isinstance(data.get("created_unix"), Number),
        problems,
        "created_unix must be a number",
    )
    _require(isinstance(data.get("seed"), int), problems, "seed must be an integer")
    _require(
        isinstance(data.get("scale"), str) and bool(data.get("scale")),
        problems,
        "scale must be a non-empty string",
    )
    _require(isinstance(data.get("meta"), dict), problems, "meta must be an object")
    _require(isinstance(data.get("checks", {}), dict), problems, "checks must be an object")
    extras = data.get("extras", {})
    if not isinstance(extras, dict):
        problems.append("extras must be an object")
    else:
        # extras may nest arbitrarily deep (metric-registry dumps ride
        # along here) but must stay strict-JSON clean all the way down.
        _check_json_clean(extras, "extras", problems)

    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics must be a non-empty object")
    else:
        for path, entry in metrics.items():
            where = f"metrics[{path!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            comparable = [k for k in (_THROUGHPUT_KEY, _SECONDS_KEY) if k in entry]
            _require(
                bool(comparable),
                problems,
                f"{where} needs '{_THROUGHPUT_KEY}' or '{_SECONDS_KEY}'",
            )
            for key in comparable:
                value = entry[key]
                _require(
                    isinstance(value, Number) and float(value) >= 0.0,
                    problems,
                    f"{where}.{key} must be a non-negative number, got {value!r}",
                )
            latency = entry.get(_LATENCY_KEY)
            if latency is not None:
                if not isinstance(latency, dict):
                    problems.append(f"{where}.{_LATENCY_KEY} must be an object")
                else:
                    for stat, value in latency.items():
                        _require(
                            isinstance(value, Number),
                            problems,
                            f"{where}.{_LATENCY_KEY}[{stat!r}] must be a number",
                        )
    if problems:
        raise BenchSchemaError(
            f"{source}: invalid benchmark artifact:\n  - " + "\n  - ".join(problems)
        )
    return data


def load_result(path) -> dict:
    """Read and validate one ``BENCH_<name>.json`` artifact."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise BenchSchemaError(f"{path}: unreadable: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: malformed JSON: {exc}") from exc
    return validate_result(data, source=str(path))
