"""Stream evaluation harness implementing the paper's protocol.

Interactions are split into six timestamp-ordered partitions (2 train /
4 test, Wang et al. [31]).  Each test partition is replayed as a merged
event stream: item uploads trigger a recommendation that is judged against
the users who interact with that item *within the partition*; interaction
events update the user profiles (unless updates are disabled — the
ssRec-nu setting of Fig. 9).  Once a partition has been tested it has, by
construction, also been absorbed into the models, realizing "when the
current partition is used for training, its immediate next partition is
used for testing".

The harness also offers a *decomposed-score sweep*: because Eq. 3 combines
the cached long/short components linearly, P@k for every ``lambda_s`` on a
grid can be measured in a single replay — which is what makes the Fig. 6/7
parameter studies affordable.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.ssrec import SsRecRecommender
from repro.datasets.partitions import PartitionedStream
from repro.datasets.schema import Interaction, SocialItem
from repro.eval.metrics import PrecisionAccumulator, TimingStats


@dataclass
class EvalOutcome:
    """Result of one harness run.

    Attributes:
        p_at_k: overall P@k across all test partitions.
        hits: raw hit counts per k.
        n_items: judged items (the paper's |V| over test partitions).
        timing: per-item recommendation response times.
        per_partition_timing: one TimingStats per test partition, in order
            (Fig. 10's accumulation basis).
    """

    p_at_k: dict[int, float]
    hits: dict[int, int]
    n_items: int
    timing: TimingStats = field(default_factory=TimingStats)
    per_partition_timing: list[TimingStats] = field(default_factory=list)


class StreamEvaluator:
    """Replays the test partitions against a recommender.

    Args:
        stream: the partitioned dataset.
        ks: P@k cutoffs (paper: 5, 10, 20, 30).
        min_truth: only items with at least this many interacting users in
            the partition are judged (ground-truth density control; the
            shapes are insensitive to it, the absolute level is not).
        max_items_per_partition: judge at most this many items per test
            partition (timing-run cost control); None = all.
    """

    def __init__(
        self,
        stream: PartitionedStream,
        ks: Iterable[int] = (5, 10, 20, 30),
        min_truth: int = 1,
        max_items_per_partition: int | None = None,
    ) -> None:
        self.stream = stream
        self.ks = sorted(set(int(k) for k in ks))
        self.min_truth = int(min_truth)
        self.max_items = max_items_per_partition
        self._item_by_id = {it.item_id: it for it in stream.dataset.items}

    # ------------------------------------------------------------------
    # Event replay
    # ------------------------------------------------------------------
    def _partition_events(
        self, partition: int
    ) -> tuple[list[tuple[float, int, object]], dict[int, set[int]]]:
        """Merged (timestamp, kind, payload) events of one test partition.

        kind 0 = item upload (recommend + judge), kind 1 = interaction
        (profile update).  Uploads sort before interactions at equal time.
        """
        truth = self.stream.ground_truth(partition)
        events: list[tuple[float, int, object]] = []
        judged = 0
        for item in self.stream.items_in_partition(partition):
            keep = len(truth.get(item.item_id, ())) >= self.min_truth
            if keep and (self.max_items is None or judged < self.max_items):
                judged += 1
            else:
                keep = False
            events.append((item.timestamp, 0, (item, keep)))
        for inter in self.stream.partitions[partition]:
            events.append((inter.timestamp, 1, inter))
        events.sort(key=lambda e: (e[0], e[1]))
        return events, truth

    def run(
        self,
        recommender,
        update: bool = True,
        observe_items: bool = True,
        k: int | None = None,
    ) -> EvalOutcome:
        """Replay all test partitions against ``recommender``.

        The recommender must expose ``recommend(item, k)`` and, when
        ``update``/``observe_items`` are on, ``update(interaction, item)``
        and ``observe_item(item)`` (extra arguments are tolerated via
        duck typing; baselines ignore what they don't model).

        Args:
            update: apply interaction events to the model (ssRec vs
                ssRec-nu, Fig. 9).
            observe_items: forward item uploads to the model.
            k: recommendation depth; defaults to ``max(ks)``.
        """
        depth = int(k) if k is not None else max(self.ks)
        accumulator = PrecisionAccumulator(self.ks)
        timing = TimingStats()
        per_partition: list[TimingStats] = []
        for partition in self.stream.test_indices:
            events, truth = self._partition_events(partition)
            part_timing = TimingStats()
            for _, kind, payload in events:
                if kind == 0:
                    item, keep = payload
                    if observe_items and hasattr(recommender, "observe_item"):
                        recommender.observe_item(item)
                    if not keep:
                        continue
                    # Flush pending index maintenance outside the response
                    # timer: the paper reports recommendation and update
                    # costs separately (Fig. 10 vs Fig. 11).
                    if hasattr(recommender, "run_maintenance"):
                        recommender.run_maintenance()
                    started = time.perf_counter()
                    ranked = recommender.recommend(item, depth)
                    elapsed = time.perf_counter() - started
                    timing.record(elapsed)
                    part_timing.record(elapsed)
                    accumulator.add(
                        [user for user, _ in ranked], truth.get(item.item_id, set())
                    )
                else:
                    if update:
                        inter: Interaction = payload
                        recommender.update(inter, self._item_by_id.get(inter.item_id))
            per_partition.append(part_timing)
        return EvalOutcome(
            p_at_k=accumulator.precision(),
            hits=dict(accumulator.hits),
            n_items=accumulator.n_items,
            timing=timing,
            per_partition_timing=per_partition,
        )

    # ------------------------------------------------------------------
    # Micro-batched replay (the batched serving path)
    # ------------------------------------------------------------------
    def run_batch(
        self,
        recommender,
        batch_size: int | None = None,
        update: bool = True,
        observe_items: bool = True,
        k: int | None = None,
    ) -> EvalOutcome:
        """Replay all test partitions through ``recommend_batch``.

        Judged items are buffered into windows of ``batch_size`` (default:
        the recommender's ``config.batch_size`` when it has one) and served
        with one ``recommend_batch`` call per window (partial windows flush
        at partition end).  Interaction events still update profiles in
        stream order, so a window's items are scored with the profile state
        at window-flush time — the inherent freshness trade of
        micro-batching (at ``batch_size=1`` results match :meth:`run`
        exactly).  Timing records the per-item share of each window's
        serving cost; maintenance is flushed outside the timer, mirroring
        :meth:`run`.
        """
        if batch_size is None:
            batch_size = _configured_batch_size(recommender)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        depth = int(k) if k is not None else max(self.ks)
        accumulator = PrecisionAccumulator(self.ks)
        timing = TimingStats()
        per_partition: list[TimingStats] = []

        def flush(window, truth, part_timing) -> None:
            if not window:
                return
            if hasattr(recommender, "run_maintenance"):
                recommender.run_maintenance()
            started = time.perf_counter()
            ranked_lists = recommender.recommend_batch(window, depth)
            per_item = (time.perf_counter() - started) / len(window)
            for item, ranked in zip(window, ranked_lists):
                timing.record(per_item)
                part_timing.record(per_item)
                accumulator.add(
                    [user for user, _ in ranked], truth.get(item.item_id, set())
                )
            window.clear()

        for partition in self.stream.test_indices:
            events, truth = self._partition_events(partition)
            part_timing = TimingStats()
            window: list[SocialItem] = []
            for _, kind, payload in events:
                if kind == 0:
                    item, keep = payload
                    if observe_items and hasattr(recommender, "observe_item"):
                        recommender.observe_item(item)
                    if keep:
                        window.append(item)
                        if len(window) >= batch_size:
                            flush(window, truth, part_timing)
                else:
                    if update:
                        inter: Interaction = payload
                        recommender.update(inter, self._item_by_id.get(inter.item_id))
            flush(window, truth, part_timing)
            per_partition.append(part_timing)
        return EvalOutcome(
            p_at_k=accumulator.precision(),
            hits=dict(accumulator.hits),
            n_items=accumulator.n_items,
            timing=timing,
            per_partition_timing=per_partition,
        )

    # ------------------------------------------------------------------
    # Decomposed-score lambda sweep (Figs. 6-7)
    # ------------------------------------------------------------------
    def run_lambda_sweep(
        self,
        recommender: SsRecRecommender,
        lambdas: Sequence[float],
        update: bool = True,
    ) -> dict[float, dict[int, float]]:
        """P@k for every ``lambda_s`` in one replay.

        Requires an ssRec recommender in scan mode: per judged item the
        vectorized matcher returns the (R_l, R_s) component arrays once,
        and the Eq. 3 recombination ranks users for each lambda.  Profile
        updates do not depend on lambda, so the sweep is exact.
        """
        if recommender.matcher is None:
            raise ValueError("recommender must be fitted (scan mode) for the sweep")
        lambdas = [float(l) for l in lambdas]
        accumulators = {l: PrecisionAccumulator(self.ks) for l in lambdas}
        depth = max(self.ks)
        for partition in self.stream.test_indices:
            events, truth = self._partition_events(partition)
            for _, kind, payload in events:
                if kind == 0:
                    item, keep = payload
                    if hasattr(recommender, "observe_item"):
                        recommender.observe_item(item)
                    if not keep:
                        continue
                    r_long, r_short = recommender.matcher.score_components(item)
                    user_ids = np.asarray(recommender.matcher.user_ids)
                    item_truth = truth.get(item.item_id, set())
                    for lam in lambdas:
                        scores = (1.0 - lam) * r_long + lam * r_short
                        order = np.lexsort((user_ids, -scores))[:depth]
                        accumulators[lam].add(
                            [int(user_ids[i]) for i in order], item_truth
                        )
                else:
                    if update:
                        inter = payload
                        recommender.update(inter, self._item_by_id.get(inter.item_id))
        return {lam: acc.precision() for lam, acc in accumulators.items()}

    # ------------------------------------------------------------------
    # Index maintenance cost (Fig. 11)
    # ------------------------------------------------------------------
    def maintenance_cost(
        self,
        recommender: SsRecRecommender,
        n_update_partitions: int,
        batch_size: int = 100,
    ) -> float:
        """Seconds spent in Algorithm 2 while absorbing the first
        ``n_update_partitions`` test partitions' interactions.

        Updates are applied in batches of ``batch_size`` profile touches
        (the paper maintains the index "periodically").
        """
        if recommender.index is None:
            raise ValueError("recommender must be fitted with use_index=True")
        if not (1 <= n_update_partitions <= len(self.stream.test_indices)):
            raise ValueError(
                f"n_update_partitions must be in [1, {len(self.stream.test_indices)}]"
            )
        total = 0.0
        pending = 0
        for partition in self.stream.test_indices[:n_update_partitions]:
            for inter in self.stream.partitions[partition]:
                item = self._item_by_id.get(inter.item_id)
                recommender.profiles.record(
                    inter.user_id,
                    _to_event(inter, item),
                )
                recommender._maintenance_pending.add(inter.user_id)
                pending += 1
                if pending >= batch_size:
                    started = time.perf_counter()
                    recommender.run_maintenance()
                    total += time.perf_counter() - started
                    pending = 0
        if pending:
            started = time.perf_counter()
            recommender.run_maintenance()
            total += time.perf_counter() - started
        return total


def _configured_batch_size(recommender, fallback: int = 64) -> int:
    """The recommender's configured micro-batch window, or ``fallback``."""
    config = getattr(recommender, "config", None)
    return int(getattr(config, "batch_size", fallback))


def _to_event(inter: Interaction, item: SocialItem | None):
    from repro.core.profiles import ProfileEvent

    return ProfileEvent.from_interaction(inter, item)
