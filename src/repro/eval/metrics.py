"""Evaluation metrics.

The paper's effectiveness metric is precision at k:
``P@k = #Hit / (|V| * k)`` where ``#Hit`` counts recommended users who
actually interacted with the item in the test partition and ``|V|`` is the
number of judged social items.  Efficiency is "the average response time
for an item on the stream".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.obs.metrics import exact_percentile


def precision_at_k(
    recommended: Sequence[int], truth: set[int], k: int
) -> float:
    """Single-item P@k: fraction of the top-``k`` users that are hits."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top = list(recommended)[:k]
    if not top:
        return 0.0
    hits = sum(1 for user in top if user in truth)
    return hits / k


class PrecisionAccumulator:
    """Accumulates the paper's P@k over a stream of judged items.

    ``P@k = total_hits_at_k / (n_items * k)`` — items with empty
    recommendation lists still count in the denominator.
    """

    def __init__(self, ks: Iterable[int] = (5, 10, 20, 30)) -> None:
        self.ks = sorted(set(int(k) for k in ks))
        if not self.ks or self.ks[0] < 1:
            raise ValueError("ks must contain positive cutoffs")
        self.hits: dict[int, int] = {k: 0 for k in self.ks}
        self.n_items = 0

    def add(self, recommended: Sequence[int], truth: set[int]) -> None:
        """Judge one item's ranked user list against its ground truth."""
        self.n_items += 1
        for k in self.ks:
            self.hits[k] += sum(1 for user in list(recommended)[:k] if user in truth)

    def merge(self, other: "PrecisionAccumulator") -> None:
        """Fold another accumulator (e.g. another partition) into this one."""
        if other.ks != self.ks:
            raise ValueError("cannot merge accumulators with different ks")
        self.n_items += other.n_items
        for k in self.ks:
            self.hits[k] += other.hits[k]

    def precision(self) -> dict[int, float]:
        """P@k for every configured cutoff."""
        if self.n_items == 0:
            return {k: 0.0 for k in self.ks}
        return {k: self.hits[k] / (self.n_items * k) for k in self.ks}


def prediction_accuracy(predicted: Sequence[int], actual: Sequence[int]) -> float:
    """Fraction of positions where prediction equals the actual category
    (Fig. 5's Accuracy)."""
    if len(predicted) != len(actual):
        raise ValueError(
            f"length mismatch: {len(predicted)} predictions vs {len(actual)} actuals"
        )
    if not actual:
        return 0.0
    hits = sum(1 for p, a in zip(predicted, actual) if int(p) == int(a))
    return hits / len(actual)


def intra_list_distance(items: Sequence[tuple[int, ...]]) -> float:
    """Mean pairwise Jaccard *distance* between recommended items' entity
    sets — the standard diversity measure for the paper's diversification
    claim (higher = more diverse)."""
    n = len(items)
    if n < 2:
        return 0.0
    total = 0.0
    pairs = 0
    sets = [set(e) for e in items]
    for i in range(n):
        for j in range(i + 1, n):
            union = sets[i] | sets[j]
            if not union:
                distance = 0.0
            else:
                distance = 1.0 - len(sets[i] & sets[j]) / len(union)
            total += distance
            pairs += 1
    return total / pairs


@dataclass
class TimingStats:
    """Response-time summary (Fig. 10/11's measurements)."""

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(float(seconds))

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.n if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) of the samples (the one shared
        implementation in :mod:`repro.obs.metrics`)."""
        return exact_percentile(self.samples, q)

    @property
    def p50(self) -> float:
        """Median response time — robust to warm-up spikes."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile response time — the tail the mean hides (and
        the quantity sharded serving is meant to improve)."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile response time."""
        return self.percentile(99)

    def summary_ms(self) -> dict[str, float]:
        """Mean/p50/p95/p99 in milliseconds, for harness reporting."""
        return {
            "mean_ms": self.mean * 1000.0,
            "p50_ms": self.p50 * 1000.0,
            "p95_ms": self.p95 * 1000.0,
            "p99_ms": self.p99 * 1000.0,
        }

    def merge(self, other: "TimingStats") -> None:
        self.samples.extend(other.samples)
