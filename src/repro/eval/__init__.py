"""Evaluation harness: metrics, stream protocol, per-figure experiments.

- :mod:`repro.eval.metrics` — P@k (the paper's definition), prediction
  accuracy, diversity, timing summaries.
- :mod:`repro.eval.harness` — :class:`StreamEvaluator`: replays the test
  partitions item-by-item with interleaved profile updates, judging hits
  against the partition's ground-truth interactions; includes the
  decomposed-score lambda sweep that makes Figs. 6-7 cheap.
- :mod:`repro.eval.experiments` — one driver per table/figure (Table II,
  Figs. 5-11), each returning a structured result.
- :mod:`repro.eval.reporting` — plain-text tables matching the paper's
  rows/series.
"""

from repro.eval.metrics import (
    PrecisionAccumulator,
    TimingStats,
    intra_list_distance,
    precision_at_k,
)
from repro.eval.harness import EvalOutcome, StreamEvaluator
from repro.eval import experiments
from repro.eval.reporting import format_table, format_series

__all__ = [
    "PrecisionAccumulator",
    "TimingStats",
    "intra_list_distance",
    "precision_at_k",
    "EvalOutcome",
    "StreamEvaluator",
    "experiments",
    "format_table",
    "format_series",
]
