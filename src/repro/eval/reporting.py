"""Plain-text rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """ASCII table with aligned columns."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def format_series(
    title: str, series: Mapping[str, Mapping], x_label: str = "x"
) -> str:
    """Render named series sharing an x-axis (a text 'figure').

    ``series`` maps series name -> {x: y}; the union of x values forms the
    rows.
    """
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x, "") for name in series])
    return f"{title}\n{format_table(headers, rows)}"
