"""One driver per table/figure of the paper's evaluation (Sec. VI).

Every ``run_*`` function takes explicit datasets/parameters (so tests and
benchmarks control scale) and returns a structured result whose
``to_text()`` renders the same rows/series the paper reports.

| Paper artifact | Driver        |
|----------------|---------------|
| Table II       | run_table2    |
| Table III      | run_table3    |
| Fig. 5         | run_fig5      |
| Fig. 6         | run_fig6      |
| Fig. 7         | run_fig7      |
| Fig. 8         | run_fig8      |
| Fig. 9         | run_fig9      |
| Fig. 10        | run_fig10     |
| Fig. 11        | run_fig11     |

Beyond the paper, ``run_batch_throughput`` measures the repo's batched
serving path (``recommend_batch``) against the per-item loop,
``run_sharded_throughput`` sweeps the sharded serving runtime
(:mod:`repro.serve`) over shard counts and fan-out backends
(sequential/thread/process), asserting exact parity with the
single index while reporting throughput and tail-latency percentiles, and
``run_conformance`` replays the :mod:`repro.sim` adversarial scenario
catalog through every serving path against the naive oracle.
"""

from __future__ import annotations

import copy
import time
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.ctt import CTTRecommender
from repro.baselines.hmm_rec import SingleLayerInterestModel
from repro.baselines.ucd import UCDRecommender
from repro.core.config import SsRecConfig
from repro.core.profiles import ProfileEvent, UserProfile
from repro.core.ssrec import SsRecRecommender
from repro.datasets.mlens import MLensConfig, generate_mlens
from repro.datasets.partitions import partition_interactions
from repro.datasets.schema import Dataset
from repro.datasets.synthpop import synthesize_dataset
from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.eval.harness import StreamEvaluator
from repro.eval.metrics import TimingStats
from repro.eval.reporting import format_series, format_table
from repro.hmm.bihmm import BiHMM
from repro.index.blocks import block_statistics, one_pass_clustering

DEFAULT_KS = (5, 10, 20, 30)


# ----------------------------------------------------------------------
# Dataset bundles
# ----------------------------------------------------------------------
def make_datasets(scale: str = "small", seed: int = 7) -> dict[str, Dataset]:
    """The paper's four datasets (Table III) at a given scale.

    Args:
        scale: ``"small"`` (tests), ``"default"`` (benchmarks) or
            ``"paper_shape"`` (paper category counts, laptop sizes).
    """
    if scale == "small":
        yt_cfg, ml_cfg = YTubeConfig.small(seed), MLensConfig.small(seed + 6)
    elif scale == "default":
        yt_cfg, ml_cfg = YTubeConfig(seed=seed), MLensConfig(seed=seed + 6)
    elif scale == "paper_shape":
        yt_cfg, ml_cfg = YTubeConfig.paper_shape(seed), MLensConfig.paper_shape(seed + 6)
    else:
        raise ValueError(f"unknown scale {scale!r}")
    ytube = generate_ytube(yt_cfg)
    mlens = generate_mlens(ml_cfg)
    return {
        "YTube": ytube,
        "SynYTube": synthesize_dataset(ytube, seed=seed + 100),
        "MLens": mlens,
        "SynMLens": synthesize_dataset(mlens, seed=seed + 200),
    }


def _profiles_from_dataset(dataset: Dataset, window_size: int = 1) -> list[UserProfile]:
    """Full-history user profiles (for blocking studies).

    ``window_size=1`` flushes every event into the long-term list, so the
    blocking features see each user's complete history even for users with
    very short histories.
    """
    item_by_id = {it.item_id: it for it in dataset.items}
    events: dict[int, list[ProfileEvent]] = defaultdict(list)
    for inter in sorted(dataset.interactions, key=lambda i: (i.timestamp, i.item_id)):
        item = item_by_id[inter.item_id]
        events[inter.user_id].append(
            ProfileEvent(
                category=inter.category,
                producer=inter.producer,
                item_id=inter.item_id,
                entities=item.entities,
                timestamp=inter.timestamp,
            )
        )
    profiles = []
    for user_id in sorted(events):
        profile = UserProfile(user_id, window_size=window_size)
        profile.bootstrap(events[user_id])
        profiles.append(profile)
    return profiles


# ----------------------------------------------------------------------
# Table II — signature-size factors vs block count
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    """Max entity/producer universe per signature entry vs block count."""

    block_counts: list[int]
    max_entities: list[int]
    max_producers: list[int]

    def rows(self) -> list[list]:
        return [
            ["User block num"] + self.block_counts,
            ["Max entity num"] + self.max_entities,
            ["Max producer num"] + self.max_producers,
        ]

    def to_text(self) -> str:
        headers = [""] + [str(b) for b in self.block_counts]
        body = [row for row in self.rows()]
        return "Table II — factors relevant to user profile signature size\n" + format_table(
            headers, body
        )


def run_table2(
    dataset: Dataset, block_counts: Sequence[int] = (1, 10, 20, 30, 40, 50)
) -> Table2Result:
    """Sweep the user-block count and report the worst-case signature size.

    A high similarity threshold forces the one-pass clustering to open new
    blocks until the cap, so the sweep controls the block count exactly
    (matching the paper's row of target counts).
    """
    profiles = _profiles_from_dataset(dataset)
    max_entities, max_producers = [], []
    for count in block_counts:
        # A moderate threshold lets genuinely similar users share a block
        # while dissimilar ones open new blocks until the cap — coherent
        # blocks are what shrinks the per-block universes.
        blocks = one_pass_clustering(
            profiles,
            dataset.n_categories,
            similarity_threshold=0.7 if count > 1 else 0.0,
            max_blocks=count,
        )
        stats = block_statistics(blocks)
        max_entities.append(stats["max_entity_num"])
        max_producers.append(stats["max_producer_num"])
    return Table2Result(list(block_counts), max_entities, max_producers)


# ----------------------------------------------------------------------
# Table III — dataset overview
# ----------------------------------------------------------------------
@dataclass
class Table3Result:
    rows_: list[dict]

    def to_text(self) -> str:
        headers = list(self.rows_[0].keys())
        return "Table III — overview of datasets\n" + format_table(
            headers, [[row[h] for h in headers] for row in self.rows_]
        )


def run_table3(
    datasets: dict[str, Dataset] | None = None, scale: str = "small", seed: int = 7
) -> Table3Result:
    """Dataset statistics in Table III's column layout."""
    datasets = datasets or make_datasets(scale, seed=seed)
    return Table3Result([ds.stats().as_row() for ds in datasets.values()])


# ----------------------------------------------------------------------
# Fig. 5 — BiHMM vs HMM prediction accuracy
# ----------------------------------------------------------------------
@dataclass
class Fig5Result:
    """Mean accuracy per optimal-hidden-state group, both models."""

    dataset: str
    hmm_by_group: dict[int, float]
    bihmm_by_group: dict[int, float]
    users_by_group: dict[int, int]

    def to_text(self) -> str:
        return format_series(
            f"Fig. 5 ({self.dataset}) — prediction accuracy by optimal state count",
            {"HMM": self.hmm_by_group, "BiHMM": self.bihmm_by_group, "n_users": self.users_by_group},
            x_label="states",
        )


def _bihmm_sequential_accuracy(
    bihmm: BiHMM,
    train_pairs: list[tuple[int, int]],
    test_pairs: list[tuple[int, int]],
) -> float:
    """Teacher-forced top-1 next-category accuracy of a trained BiHMM."""
    if not test_pairs:
        return 0.0
    context = list(train_pairs)
    hits = 0
    for category, item_id in test_pairs:
        dist = bihmm.predict_next_distribution(context)
        if int(np.argmax(dist)) == int(category):
            hits += 1
        context.append((category, item_id))
    return hits / len(test_pairs)


def run_fig5(
    dataset: Dataset,
    max_users: int = 40,
    max_states: int = 8,
    min_history: int = 20,
    train_fraction: float = 0.8,
    seed: int = 0,
    hmm_iterations: int = 15,
) -> Fig5Result:
    """Per-user BiHMM-vs-HMM accuracy comparison, grouped by the user's
    optimal hidden-state count (the paper's Fig. 5 protocol).

    For each selected consumer: the first 80% of the browsing history
    trains, the rest tests.  The HMM state count is tuned per user; the
    BiHMM uses the same count for its consumer layer and a producer layer
    shared across users (trained on the items created during the training
    window).
    """
    histories = dataset.consumer_histories()
    eligible = [
        (uid, h) for uid, h in histories.items() if len(h) >= min_history
    ]
    eligible.sort(key=lambda kv: (-len(kv[1]), kv[0]))
    eligible = eligible[:max_users]
    if not eligible:
        raise ValueError("no consumer has enough history for Fig. 5")

    # Shared producer layer trained on all creations (both modes considered).
    shared = BiHMM(n_categories=dataset.n_categories, seed=seed)
    shared.producer_layer.fit(dataset.producer_creations(), n_iter=hmm_iterations)

    hmm_acc: dict[int, list[float]] = defaultdict(list)
    bihmm_acc: dict[int, list[float]] = defaultdict(list)
    for uid, history in eligible:
        cats = [i.category for i in history]
        pairs = [(i.category, i.item_id) for i in history]
        cut = max(1, int(len(history) * train_fraction))
        if cut >= len(history):
            cut = len(history) - 1
        n_star, acc_h, _ = SingleLayerInterestModel.tune_states(
            cats[:cut],
            cats[cut:],
            dataset.n_categories,
            max_states=max_states,
            seed=seed + uid,
            n_iter=hmm_iterations,
        )
        # Symmetric per-user tuning for the BiHMM ("obtain the optimal
        # parameters for BiHMM"): its consumer-layer state count is searched
        # over the same range the HMM's was, and the producer-coupling
        # strength (shrinkage toward the pooled single-layer behaviour) is
        # part of the search space — at shrinkage 1.0 the model degrades
        # gracefully to single-layer behaviour when z carries no signal.
        acc_b = 0.0
        for n_states in range(1, max_states + 1):
            for shrinkage in (0.2, 0.6, 0.9):
                bi = BiHMM(
                    n_categories=dataset.n_categories,
                    n_consumer_states=n_states,
                    n_producer_states=shared.producer_layer.n_states,
                    seed=seed + uid,
                )
                bi.producer_layer = shared.producer_layer
                bi.consumer_model = type(bi.consumer_model)(
                    n_states=n_states,
                    n_symbols=dataset.n_categories,
                    n_inputs=shared.producer_layer.n_input_symbols,
                    seed=seed + uid + n_states,
                )
                bi.fit_consumers_only(
                    [pairs[:cut]], n_iter=hmm_iterations, shrinkage=shrinkage
                )
                acc_b = max(
                    acc_b, _bihmm_sequential_accuracy(bi, pairs[:cut], pairs[cut:])
                )
        hmm_acc[n_star].append(acc_h)
        bihmm_acc[n_star].append(acc_b)

    groups = sorted(hmm_acc)
    return Fig5Result(
        dataset=dataset.name,
        hmm_by_group={g: float(np.mean(hmm_acc[g])) for g in groups},
        bihmm_by_group={g: float(np.mean(bihmm_acc[g])) for g in groups},
        users_by_group={g: len(hmm_acc[g]) for g in groups},
    )


# ----------------------------------------------------------------------
# Shared helper for effectiveness runs
# ----------------------------------------------------------------------
def _fit_ssrec(
    dataset: Dataset,
    stream,
    config: SsRecConfig,
    use_index: bool = False,
    seed: int = 1,
) -> SsRecRecommender:
    rec = SsRecRecommender(config=config, use_index=use_index, seed=seed)
    rec.fit(dataset, stream.training_interactions())
    return rec


# ----------------------------------------------------------------------
# Fig. 6 — effect of the short-term window size |W|
# ----------------------------------------------------------------------
@dataclass
class Fig6Result:
    dataset: str
    #: window size -> {k: best P@k over the lambda grid}
    precision: dict[int, dict[int, float]]

    def to_text(self) -> str:
        series = {
            f"Top {k}": {w: self.precision[w][k] for w in sorted(self.precision)}
            for k in sorted(next(iter(self.precision.values())))
        }
        return format_series(
            f"Fig. 6 ({self.dataset}) — P@k vs short-term window size |W|",
            series,
            x_label="|W|",
        )


def run_fig6(
    dataset: Dataset,
    window_sizes: Iterable[int] = range(1, 11),
    lambdas: Sequence[float] = tuple(round(0.1 * i, 1) for i in range(1, 11)),
    ks: Sequence[int] = DEFAULT_KS,
    min_truth: int = 1,
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> Fig6Result:
    """For each |W|, the best P@k over the lambda grid (paper protocol:
    "At each |W| value, we measure the prediction precision ... by changing
    the weight ... and report the optimal precision value")."""
    base = config or SsRecConfig()
    precision: dict[int, dict[int, float]] = {}
    for w in window_sizes:
        stream = partition_interactions(dataset)
        rec = _fit_ssrec(dataset, stream, base.with_options(window_size=int(w)), seed=seed)
        evaluator = StreamEvaluator(stream, ks=ks, min_truth=min_truth)
        sweep = evaluator.run_lambda_sweep(rec, lambdas)
        precision[int(w)] = {
            k: max(sweep[lam][k] for lam in sweep) for k in evaluator.ks
        }
    return Fig6Result(dataset=dataset.name, precision=precision)


# ----------------------------------------------------------------------
# Fig. 7 — effect of the short-term weight lambda_s
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    dataset: str
    #: lambda -> {k: P@k}
    precision: dict[float, dict[int, float]]

    def optimal_lambda(self, k: int) -> float:
        return max(self.precision, key=lambda lam: self.precision[lam][k])

    def to_text(self) -> str:
        ks = sorted(next(iter(self.precision.values())))
        series = {
            f"Top {k}": {lam: self.precision[lam][k] for lam in sorted(self.precision)}
            for k in ks
        }
        return format_series(
            f"Fig. 7 ({self.dataset}) — P@k vs short-term weight lambda_s",
            series,
            x_label="lambda",
        )


def run_fig7(
    dataset: Dataset,
    lambdas: Sequence[float] = tuple(round(0.1 * i, 1) for i in range(0, 11)),
    ks: Sequence[int] = DEFAULT_KS,
    window_size: int = 5,
    min_truth: int = 1,
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> Fig7Result:
    """P@k over the lambda grid with |W| fixed to its optimum (5)."""
    base = (config or SsRecConfig()).with_options(window_size=window_size)
    stream = partition_interactions(dataset)
    rec = _fit_ssrec(dataset, stream, base, seed=seed)
    evaluator = StreamEvaluator(stream, ks=ks, min_truth=min_truth)
    sweep = evaluator.run_lambda_sweep(rec, lambdas)
    return Fig7Result(dataset=dataset.name, precision=sweep)


# ----------------------------------------------------------------------
# Fig. 8 — effectiveness comparison (CTT, UCD, ssRec-ne, ssRec)
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    dataset: str
    #: method -> {k: P@k}
    precision: dict[str, dict[int, float]]

    def to_text(self) -> str:
        return format_series(
            f"Fig. 8 ({self.dataset}) — effectiveness comparison",
            self.precision,
            x_label="k",
        )


def run_fig8(
    dataset: Dataset,
    ks: Sequence[int] = DEFAULT_KS,
    config: SsRecConfig | None = None,
    min_truth: int = 1,
    seed: int = 1,
) -> Fig8Result:
    """P@k of CTT, UCD, ssRec-ne (no expansion) and full ssRec."""
    base = config or SsRecConfig()
    precision: dict[str, dict[int, float]] = {}

    stream = partition_interactions(dataset)
    ctt = CTTRecommender().fit(dataset, stream.training_interactions())
    precision["CTT"] = StreamEvaluator(stream, ks=ks, min_truth=min_truth).run(ctt).p_at_k

    stream = partition_interactions(dataset)
    ucd = UCDRecommender().fit(dataset, stream.training_interactions())
    precision["UCD"] = StreamEvaluator(stream, ks=ks, min_truth=min_truth).run(ucd).p_at_k

    stream = partition_interactions(dataset)
    ssrec_ne = _fit_ssrec(
        dataset, stream, base.with_options(use_expansion=False), seed=seed
    )
    precision["ssRec-ne"] = (
        StreamEvaluator(stream, ks=ks, min_truth=min_truth).run(ssrec_ne).p_at_k
    )

    stream = partition_interactions(dataset)
    ssrec = _fit_ssrec(dataset, stream, base, seed=seed)
    precision["ssRec"] = (
        StreamEvaluator(stream, ks=ks, min_truth=min_truth).run(ssrec).p_at_k
    )
    return Fig8Result(dataset=dataset.name, precision=precision)


# ----------------------------------------------------------------------
# Fig. 9 — effect of user profile updates
# ----------------------------------------------------------------------
@dataclass
class Fig9Result:
    dataset: str
    precision: dict[str, dict[int, float]]

    def to_text(self) -> str:
        return format_series(
            f"Fig. 9 ({self.dataset}) — effect of user profile updates",
            self.precision,
            x_label="k",
        )


def run_fig9(
    dataset: Dataset,
    ks: Sequence[int] = DEFAULT_KS,
    config: SsRecConfig | None = None,
    min_truth: int = 1,
    seed: int = 1,
) -> Fig9Result:
    """ssRec (stream setting, updates on) vs ssRec-nu (static setting)."""
    base = config or SsRecConfig()
    precision: dict[str, dict[int, float]] = {}
    stream = partition_interactions(dataset)
    nu = _fit_ssrec(dataset, stream, base, seed=seed)
    precision["ssRec-nu"] = (
        StreamEvaluator(stream, ks=ks, min_truth=min_truth).run(nu, update=False).p_at_k
    )
    stream = partition_interactions(dataset)
    full = _fit_ssrec(dataset, stream, base, seed=seed)
    precision["ssRec"] = (
        StreamEvaluator(stream, ks=ks, min_truth=min_truth).run(full, update=True).p_at_k
    )
    return Fig9Result(dataset=dataset.name, precision=precision)


# ----------------------------------------------------------------------
# Fig. 10 — recommendation efficiency comparison
# ----------------------------------------------------------------------
@dataclass
class Fig10Result:
    dataset: str
    #: method -> {n_partitions: mean per-item milliseconds over the first n
    #: test partitions}
    time_ms: dict[str, dict[int, float]]

    def to_text(self) -> str:
        return format_series(
            f"Fig. 10 ({self.dataset}) — mean per-item time (ms) vs partitions",
            self.time_ms,
            x_label="partitions",
        )


def _cumulative_means(per_partition) -> dict[int, float]:
    out = {}
    total, count = 0.0, 0
    for i, stats in enumerate(per_partition, start=1):
        total += stats.total
        count += stats.n
        out[i] = (total / count * 1000.0) if count else 0.0
    return out


def run_fig10(
    dataset: Dataset,
    k: int = 30,
    max_items_per_partition: int | None = 50,
    min_truth: int = 1,
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> Fig10Result:
    """Per-item response time of CTT, UCD and the CPPse-index, accumulated
    over growing numbers of test partitions (the paper's x-axis)."""
    base = config or SsRecConfig()
    time_ms: dict[str, dict[int, float]] = {}

    stream = partition_interactions(dataset)
    ctt = CTTRecommender().fit(dataset, stream.training_interactions())
    outcome = StreamEvaluator(
        stream, ks=(k,), min_truth=min_truth, max_items_per_partition=max_items_per_partition
    ).run(ctt, k=k)
    time_ms["CTT"] = _cumulative_means(outcome.per_partition_timing)

    stream = partition_interactions(dataset)
    ucd = UCDRecommender().fit(dataset, stream.training_interactions())
    outcome = StreamEvaluator(
        stream, ks=(k,), min_truth=min_truth, max_items_per_partition=max_items_per_partition
    ).run(ucd, k=k)
    time_ms["UCD"] = _cumulative_means(outcome.per_partition_timing)

    stream = partition_interactions(dataset)
    indexed = _fit_ssrec(dataset, stream, base, use_index=True, seed=seed)
    outcome = StreamEvaluator(
        stream, ks=(k,), min_truth=min_truth, max_items_per_partition=max_items_per_partition
    ).run(indexed, k=k)
    time_ms["CPPse-index"] = _cumulative_means(outcome.per_partition_timing)
    return Fig10Result(dataset=dataset.name, time_ms=time_ms)


# ----------------------------------------------------------------------
# Fig. 11 — efficiency of media updates
# ----------------------------------------------------------------------
@dataclass
class Fig11Result:
    #: dataset -> {n_update_partitions: seconds in Algorithm 2}
    seconds: dict[str, dict[int, float]]

    def to_text(self) -> str:
        return format_series(
            "Fig. 11 — index maintenance cost vs update size (partitions)",
            self.seconds,
            x_label="partitions",
        )


def run_fig11(
    datasets: dict[str, Dataset],
    sizes: Sequence[int] = (1, 2, 3, 4),
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> Fig11Result:
    """Algorithm 2 cost while absorbing 1..4 test partitions of updates."""
    base = config or SsRecConfig()
    seconds: dict[str, dict[int, float]] = {}
    for name, dataset in datasets.items():
        per_size: dict[int, float] = {}
        for n in sizes:
            stream = partition_interactions(dataset)
            rec = _fit_ssrec(dataset, stream, base, use_index=True, seed=seed)
            evaluator = StreamEvaluator(stream)
            per_size[int(n)] = evaluator.maintenance_cost(rec, n)
        seconds[name] = per_size
    return Fig11Result(seconds=seconds)


# ----------------------------------------------------------------------
# Batched serving throughput (the recommend_batch path)
# ----------------------------------------------------------------------
@dataclass
class BatchThroughputResult:
    """Items/sec of micro-batched vs per-item serving.

    Attributes:
        dataset: benchmark dataset name.
        n_items: items served per measurement.
        items_per_sec: scenario -> {batch_size: items/sec}; batch size 1 is
            the per-item ``recommend`` loop, larger sizes go through
            ``recommend_batch``.  Scenarios: ``scan`` (vectorized matcher),
            ``index`` (CPPse-index, pure serving) and ``index+updates``
            (CPPse-index with interleaved profile updates, where batching
            also amortizes the Algorithm 2 maintenance flush).
    """

    dataset: str
    n_items: int
    items_per_sec: dict[str, dict[int, float]]

    def speedup(self, scenario: str, batch_size: int) -> float:
        """Throughput of ``batch_size`` relative to the per-item loop."""
        base = self.items_per_sec[scenario][1]
        return self.items_per_sec[scenario][int(batch_size)] / base if base else 0.0

    def to_text(self) -> str:
        return format_series(
            f"Batched serving throughput ({self.dataset}) — items/sec vs batch size",
            self.items_per_sec,
            x_label="batch",
        )


# ----------------------------------------------------------------------
# Sharded serving throughput (the repro.serve runtime)
# ----------------------------------------------------------------------
def _shard_path_key(mode: str, serve: str, backend: str) -> str:
    """Series key of one sharded measurement.

    The sequential backend keeps the historical ``sharded-<mode>-<serve>``
    names; other backends append ``@<backend>`` so one sweep renders
    backends side by side.
    """
    key = f"sharded-{mode}-{serve}"
    return key if backend == "sequential" else f"{key}@{backend}"


@dataclass
class ShardScalingResult:
    """Throughput and tail latency of the sharded runtime vs shard count.

    Attributes:
        dataset: benchmark dataset name.
        n_items: items served per measurement.
        strategy: shard strategy swept (``"block"`` for exact parity).
        backends: fan-out backends swept (``sequential``/``thread``/
            ``process``).
        items_per_sec: path -> {n_shards: items/sec}; paths are
            ``sharded-<mode>-<serve>`` for mode in scan/index and serve in
            item (per-item fan-out) / batch (micro-batched fan-out), with
            ``@<backend>`` appended for non-sequential backends.
        baselines: unsharded reference throughputs — ``scan-item``,
            ``scan-batch``, ``index-item``, ``index-batch``.
        latency_ms: n_shards -> mean/p50/p95/p99 of the first backend's
            sharded-index per-item path in milliseconds (tail latency is
            what the percentile satellite surfaces).
        parity_ok: every swept (shard count, backend) returned results
            identical to the single recommender in the same mode, per item
            and per batch — the bit-identical guarantee across sequential,
            thread and process fan-out.
    """

    dataset: str
    n_items: int
    strategy: str
    backends: tuple[str, ...]
    items_per_sec: dict[str, dict[int, float]]
    baselines: dict[str, float]
    latency_ms: dict[int, dict[str, float]]
    parity_ok: bool

    def speedup_over_scan(
        self, n_shards: int, path: str = "sharded-scan-batch"
    ) -> float:
        """Sharded throughput relative to the unsharded per-item scan."""
        base = self.baselines["scan-item"]
        return self.items_per_sec[path][int(n_shards)] / base if base else 0.0

    def backend_speedup(
        self,
        n_shards: int,
        mode: str = "scan",
        serve: str = "batch",
        backend: str = "process",
        over: str = "sequential",
    ) -> float:
        """Throughput of one backend relative to another on the same
        sharded path (the process-vs-sequential acceptance ratio)."""
        base = self.items_per_sec[_shard_path_key(mode, serve, over)][int(n_shards)]
        fast = self.items_per_sec[_shard_path_key(mode, serve, backend)][int(n_shards)]
        return fast / base if base else 0.0

    def best_backend_speedup(
        self, n_shards: int, backend: str = "process", over: str = "sequential"
    ) -> float:
        """Best ``backend_speedup`` over all (mode, serve) paths at one
        shard count — the headline parallelism win."""
        return max(
            self.backend_speedup(n_shards, mode, serve, backend, over)
            for mode in ("scan", "index")
            for serve in ("item", "batch")
        )

    def to_text(self) -> str:
        lines = [
            format_series(
                f"Sharded serving ({self.dataset}) — items/sec vs shard count "
                f"(backends: {', '.join(self.backends)})",
                self.items_per_sec,
                x_label="shards",
            ),
            "",
            "Unsharded baselines (items/sec): "
            + "  ".join(f"{name}={ips:.1f}" for name, ips in self.baselines.items()),
            "",
            format_series(
                "Sharded-index per-item serving latency (ms) vs shard count",
                {
                    stat: {n: self.latency_ms[n][stat] for n in sorted(self.latency_ms)}
                    for stat in ("mean_ms", "p50_ms", "p95_ms", "p99_ms")
                },
                x_label="shards",
            ),
            "",
            f"parity with single index: {'exact' if self.parity_ok else 'BROKEN'}",
        ]
        return "\n".join(lines)


def run_sharded_throughput(
    dataset: Dataset,
    shard_counts: Sequence[int] = (1, 2, 4),
    k: int = 30,
    max_items: int = 512,
    strategy: str = "block",
    workers: int = 0,
    backends: Sequence[str] = ("sequential",),
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> ShardScalingResult:
    """Sweep shard counts (and fan-out backends) over a fixed serving
    slice, with parity checks.

    One scan-mode recommender is trained and reused: the unsharded scan
    and index baselines, the parity reference, and every sharded service
    all share its trained state (serving is read-only), so differences in
    results can only come from the serving structures — which is exactly
    what the parity check isolates.  All paths are warmed untimed first
    (for the process backend the warm-up also pays the worker spawn, so
    the timed loops measure steady-state serving).
    """
    from repro.serve.service import ShardedRecommender  # local: keeps eval import-light

    base = config or SsRecConfig()
    backends = tuple(backends)
    stream = partition_interactions(dataset)
    items = [
        item
        for partition in stream.test_indices
        for item in stream.items_in_partition(partition)
    ][: int(max_items)]
    if not items:
        raise ValueError("dataset has no test items to serve")
    batch_size = base.batch_size

    trained = _fit_ssrec(dataset, stream, base, use_index=False, seed=seed)

    def timed_item_loop(rec) -> tuple[float, list[float]]:
        stats: list[float] = []
        started_all = time.perf_counter()
        for item in items:
            started = time.perf_counter()
            rec.recommend(item, k)
            stats.append(time.perf_counter() - started)
        return time.perf_counter() - started_all, stats

    def timed_batch_loop(rec) -> float:
        started = time.perf_counter()
        for start in range(0, len(items), batch_size):
            rec.recommend_batch(items[start : start + batch_size], k)
        return time.perf_counter() - started

    # Scan baselines first (warmed untimed), then upgrade the same trained
    # state to index mode for the index baselines and parity references —
    # one measurement protocol for both modes.
    baselines: dict[str, float] = {}
    references: dict[str, list] = {}
    for mode in ("scan", "index"):
        if mode == "index":
            trained.attach_index()
        for item in items:
            trained.recommend(item, k)
        trained.recommend_batch(items, k)
        item_seconds, _ = timed_item_loop(trained)
        baselines[f"{mode}-item"] = len(items) / item_seconds
        baselines[f"{mode}-batch"] = len(items) / timed_batch_loop(trained)
        references[mode] = [trained.recommend(item, k) for item in items]

    items_per_sec: dict[str, dict[int, float]] = {
        _shard_path_key(mode, serve, backend): {}
        for mode in ("scan", "index")
        for serve in ("item", "batch")
        for backend in backends
    }
    latency_ms: dict[int, dict[str, float]] = {}
    parity_ok = True
    for n_shards in sorted({int(n) for n in shard_counts}):
        for mode, reference in references.items():
            for backend in backends:
                with ShardedRecommender.from_trained(
                    trained,
                    n_shards=n_shards,
                    strategy=strategy,
                    use_index=(mode == "index"),
                    workers=workers,
                    backend=backend,
                ) as service:
                    # Parity first (also warms the shard structures and,
                    # for the process backend, spawns the workers).
                    per_item = [service.recommend(item, k) for item in items]
                    per_batch = service.recommend_batch(items, k)
                    parity_ok = (
                        parity_ok and per_item == reference and per_batch == reference
                    )
                    seconds, samples = timed_item_loop(service)
                    items_per_sec[_shard_path_key(mode, "item", backend)][
                        n_shards
                    ] = len(items) / seconds
                    items_per_sec[_shard_path_key(mode, "batch", backend)][
                        n_shards
                    ] = len(items) / timed_batch_loop(service)
                    if mode == "index" and backend == backends[0]:
                        latency_ms[n_shards] = TimingStats(samples=samples).summary_ms()
    return ShardScalingResult(
        dataset=dataset.name,
        n_items=len(items),
        strategy=strategy,
        backends=backends,
        items_per_sec=items_per_sec,
        baselines=baselines,
        latency_ms=latency_ms,
        parity_ok=parity_ok,
    )


# ----------------------------------------------------------------------
# Differential conformance (the repro.sim harness)
# ----------------------------------------------------------------------
@dataclass
class ConformanceSuiteResult:
    """Per-scenario conformance reports over the serving-path matrix.

    Attributes:
        seed: master seed the scenario generator ran with.
        k: recommendation depth per query.
        reports: one :class:`~repro.sim.conformance.ConformanceReport`
            per replayed scenario, in replay order.
    """

    seed: int
    k: int
    reports: list  # list[ConformanceReport]

    @property
    def total_divergences(self) -> int:
        return sum(report.total_divergences for report in self.reports)

    @property
    def conformant(self) -> bool:
        return self.total_divergences == 0

    def to_text(self) -> str:
        lines = ["Differential conformance — serving paths vs the naive oracle", ""]
        for report in self.reports:
            lines.append(report.to_text())
            lines.append("")
        verdict = (
            "all scenarios EXACT"
            if self.conformant
            else f"BROKEN: {self.total_divergences} divergences"
        )
        lines.append(f"suite verdict: {verdict}")
        return "\n".join(lines)


def run_conformance(
    scenarios: Sequence[str] | None = None,
    seed: int = 7,
    k: int = 10,
    window_size: int = 8,
    n_shards: int = 3,
    max_events: int = 600,
    base: Dataset | None = None,
    config: SsRecConfig | None = None,
    paths: Sequence[str] | None = None,
) -> ConformanceSuiteResult:
    """Replay the adversarial scenario catalog through every serving path.

    Each scenario is generated deterministically from ``seed``, replayed
    through the per-item scan, batched scan, CPPse-index (per-item and
    batched), and sharded paths — hash-scan, block-index with one
    mid-stream snapshot reload, and the process backend with one
    mid-stream rolling worker restart — and judged window by window
    against the naive per-pair oracle.  Zero total divergences is the
    acceptance bar every serving-path change must hold.

    Args:
        scenarios: catalog names to replay (default: the full catalog).
        base: base dataset for the scenario generator (default: the small
            YTube generator at ``seed``).
        paths: registry plan names to replay (default: every plan the
            :data:`repro.exec.PLAN_REGISTRY` marks for conformance,
            ``*-cached`` variants included).
    """
    from repro.sim import ConformanceRunner, ScenarioGenerator  # local: keeps eval import-light

    generator = ScenarioGenerator(base=base, seed=seed, max_events=max_events)
    runner = ConformanceRunner(
        k=k,
        window_size=window_size,
        n_shards=n_shards,
        config=config,
        snapshot_window=1,
        restart_window=1,
        paths=None if paths is None else tuple(paths),
    )
    reports = [runner.run(scenario) for scenario in generator.generate_all(scenarios)]
    return ConformanceSuiteResult(seed=int(seed), k=int(k), reports=reports)


@dataclass
class ResultCacheResult:
    """Cached-vs-uncached serving over one duplicate-heavy scenario.

    Attributes:
        scenario: replayed scenario name.
        seed: scenario generator seed.
        k: recommendation depth per query.
        window_size: uploads per served window.
        n_windows: windows served.
        n_served: items served per replica (redeliveries included).
        uncached_seconds: serve-loop wall clock of the uncached anchor.
        cached_seconds: serve-loop wall clock of the cached plan.
        cache_stats: hit/miss/eviction counters of the result cache.
        parity_ok: every cached ranked list equalled the anchor's, bitwise.
    """

    scenario: str
    seed: int
    k: int
    window_size: int
    n_windows: int
    n_served: int
    uncached_seconds: float
    cached_seconds: float
    cache_stats: dict
    parity_ok: bool

    @property
    def uncached_items_per_sec(self) -> float:
        return self.n_served / self.uncached_seconds if self.uncached_seconds else 0.0

    @property
    def cached_items_per_sec(self) -> float:
        return self.n_served / self.cached_seconds if self.cached_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (
            self.cached_items_per_sec / self.uncached_items_per_sec
            if self.uncached_items_per_sec
            else 0.0
        )

    @property
    def hit_rate(self) -> float:
        return float(self.cache_stats.get("hit_rate", 0.0))

    def to_text(self) -> str:
        lines = [
            "Plan-level result cache — cached vs uncached serving "
            f"({self.scenario!r}, seed {self.seed})",
            f"  windows={self.n_windows} items_served={self.n_served} "
            f"k={self.k} window={self.window_size}",
            f"  uncached: {self.uncached_items_per_sec:9.1f} items/sec "
            f"({self.uncached_seconds:.3f}s)",
            f"  cached:   {self.cached_items_per_sec:9.1f} items/sec "
            f"({self.cached_seconds:.3f}s)",
            f"  speedup: {self.speedup:.2f}x   hit_rate: {self.hit_rate:.1%} "
            f"(hits={self.cache_stats.get('hits', 0)} "
            f"misses={self.cache_stats.get('misses', 0)} "
            f"evictions={self.cache_stats.get('evictions', 0)})",
            f"  parity: {'bit-identical' if self.parity_ok else 'BROKEN'}",
        ]
        return "\n".join(lines)


def run_result_cache(
    base: Dataset | None = None,
    scenario: str = "duplicate_out_of_order",
    seed: int = 7,
    k: int = 30,
    window_size: int = 16,
    max_events: int = 4800,
    fit_seed: int = 1,
    config: SsRecConfig | None = None,
) -> ResultCacheResult:
    """Measure the ``*-cached`` execution plans on duplicate-heavy traffic.

    Two replicas of one trained scan-mode recommender replay the same
    scenario stream (observes and updates applied to both): the uncached
    anchor serves every delivered upload per item, the cached replica
    serves the identical stream through its ``scan-item-cached`` plan.
    Redelivered uploads whose signature was already served in the same
    mutation epoch hit the cache; every ranked list is compared to the
    anchor's bitwise, so the measured win is proven exact as it is timed.

    The serve order alternates per window (uncached first on even
    windows, cached first on odd) so neither replica systematically
    benefits from warmed CPU caches.
    """
    from repro.sim import ScenarioGenerator  # local: keeps eval import-light

    generator = ScenarioGenerator(base=base, seed=seed, max_events=max_events)
    scn = generator.generate(scenario)
    cfg = (config or SsRecConfig()).with_options(
        maintenance_interval=scn.maintenance_interval
    )
    template = SsRecRecommender(config=cfg, use_index=False, seed=fit_seed)
    template.fit(scn.dataset, scn.train_interactions)
    uncached = copy.deepcopy(template)
    cached = copy.deepcopy(template).enable_result_cache()

    uncached_seconds = 0.0
    cached_seconds = 0.0
    n_windows = 0
    n_served = 0
    parity_ok = True

    def serve(recommender, window) -> tuple[list, float]:
        started = time.perf_counter()
        ranked = [recommender.recommend(item, k) for item in window]
        return ranked, time.perf_counter() - started

    window: list = []
    for event in scn.events:
        if event.kind == "upload":
            item = event.payload
            uncached.observe_item(item)
            cached.observe_item(item)
            window.append(item)
            if len(window) < window_size:
                continue
            # Absorb the updates accumulated since the last window
            # *untimed* in both replicas (profile-row refresh + interest
            # redistribution is identical shared work), so the timed
            # loops isolate the serving machinery — the same warm-state
            # discipline ``run_batch_throughput`` uses.
            uncached.matcher.sync()
            cached.matcher.sync()
            if n_windows % 2 == 0:
                want, u_secs = serve(uncached, window)
                got, c_secs = serve(cached, window)
            else:
                got, c_secs = serve(cached, window)
                want, u_secs = serve(uncached, window)
            uncached_seconds += u_secs
            cached_seconds += c_secs
            parity_ok = parity_ok and got == want
            n_served += len(window)
            n_windows += 1
            window = []
        else:
            interaction = event.payload
            payload_item = scn.item_payload(interaction)
            uncached.update(interaction, payload_item)
            cached.update(interaction, payload_item)

    stats = cached.result_cache_stats() or {}
    return ResultCacheResult(
        scenario=scenario,
        seed=int(seed),
        k=int(k),
        window_size=int(window_size),
        n_windows=n_windows,
        n_served=n_served,
        uncached_seconds=uncached_seconds,
        cached_seconds=cached_seconds,
        cache_stats=stats,
        parity_ok=parity_ok,
    )


@dataclass
class DedupResult:
    """Deduplicated-vs-anchor serving over one near-duplicate scenario.

    Attributes:
        scenario: replayed scenario name.
        seed: scenario generator seed.
        k: recommendation depth per query.
        window_size: uploads per served window.
        n_windows: windows served.
        n_served: items served per replica (redeliveries included).
        anchor_seconds: serve-loop wall clock of the dedup-off anchor.
        exact_seconds: serve-loop wall clock of the exact-mode replica.
        exact_stats: collapse counters of the exact-mode replica.
        exact_parity_ok: every exact-mode ranked list equalled the
            anchor's, bitwise (the mode's contract — CI exits non-zero
            when this is False).
        default_tau: the Jaccard threshold the config defaults to (its
            sweep row is the one the recall gate reads).
        approx: one row per swept threshold:
            ``{"tau", "seconds", "recall", "stats"}``.
    """

    scenario: str
    seed: int
    k: int
    window_size: int
    n_windows: int
    n_served: int
    anchor_seconds: float
    exact_seconds: float
    exact_stats: dict
    exact_parity_ok: bool
    default_tau: float
    approx: list

    @property
    def anchor_items_per_sec(self) -> float:
        return self.n_served / self.anchor_seconds if self.anchor_seconds else 0.0

    @property
    def exact_items_per_sec(self) -> float:
        return self.n_served / self.exact_seconds if self.exact_seconds else 0.0

    @property
    def exact_speedup(self) -> float:
        return (
            self.exact_items_per_sec / self.anchor_items_per_sec
            if self.anchor_items_per_sec
            else 0.0
        )

    @property
    def exact_collapse_rate(self) -> float:
        return float(self.exact_stats.get("collapse_rate", 0.0))

    def approx_at(self, tau: float) -> dict | None:
        """The sweep row for ``tau`` (None when not swept)."""
        for row in self.approx:
            if abs(row["tau"] - tau) < 1e-9:
                return row
        return None

    @property
    def default_recall(self) -> float:
        """Oracle-judged recall@k at the config-default threshold."""
        row = self.approx_at(self.default_tau)
        return float(row["recall"]) if row else 0.0

    def to_text(self) -> str:
        lines = [
            "Near-duplicate collapse — deduplicated vs anchor serving "
            f"({self.scenario!r}, seed {self.seed})",
            f"  windows={self.n_windows} items_served={self.n_served} "
            f"k={self.k} window={self.window_size}",
            f"  anchor: {self.anchor_items_per_sec:9.1f} items/sec "
            f"({self.anchor_seconds:.3f}s)",
            f"  exact:  {self.exact_items_per_sec:9.1f} items/sec "
            f"({self.exact_seconds:.3f}s)  speedup: {self.exact_speedup:.2f}x  "
            f"collapse_rate: {self.exact_collapse_rate:.1%} "
            f"(collapsed={self.exact_stats.get('collapsed', 0)} "
            f"groups={self.exact_stats.get('groups', 0)})",
            f"  exact parity: "
            f"{'bit-identical' if self.exact_parity_ok else 'BROKEN'}",
            "  approx sweep (tau  recall@k  collapse_rate  items/sec):",
        ]
        for row in self.approx:
            stats = row["stats"]
            rate = float(stats.get("collapse_rate", 0.0))
            ips = self.n_served / row["seconds"] if row["seconds"] else 0.0
            marker = " *" if abs(row["tau"] - self.default_tau) < 1e-9 else ""
            lines.append(
                f"    {row['tau']:.2f}  {row['recall']:8.4f}  "
                f"{rate:13.1%}  {ips:9.1f}{marker}"
            )
        lines.append("  (* = config-default threshold)")
        return "\n".join(lines)


def run_dedup(
    base: Dataset | None = None,
    scenario: str = "mutated_retry",
    seed: int = 7,
    k: int = 30,
    window_size: int = 16,
    max_events: int = 4800,
    fit_seed: int = 1,
    config: SsRecConfig | None = None,
    taus: Sequence[float] | None = None,
) -> DedupResult:
    """Measure the ``*-dedup`` execution plans on near-duplicate traffic.

    Replicas of one trained scan-mode recommender replay the same
    scenario stream (observes and updates applied to all): a dedup-off
    anchor serves every delivered upload from scratch, an exact-mode
    replica collapses bit-identical resolved queries, and one
    approx-mode replica per swept Jaccard threshold collapses
    near-duplicates onto group representatives.  Exact-mode output is
    compared to the anchor's bitwise (its contract); approx-mode output
    is judged by recall@k against the anchor — the fraction of the
    anchor's top-k audience each approx list retains, averaged over
    every served upload.

    The replica serve order rotates per window so no replica
    systematically benefits from warmed CPU caches — the same
    discipline ``run_result_cache`` uses, generalized past two
    replicas.
    """
    from repro.sim import ScenarioGenerator  # local: keeps eval import-light

    generator = ScenarioGenerator(base=base, seed=seed, max_events=max_events)
    scn = generator.generate(scenario)
    cfg = (config or SsRecConfig()).with_options(
        maintenance_interval=scn.maintenance_interval
    )
    default_tau = cfg.dedup_threshold
    if taus is None:
        taus = (0.4, default_tau, 0.8)
    taus = sorted({round(float(t), 9) for t in taus})
    template = SsRecRecommender(config=cfg, use_index=False, seed=fit_seed)
    template.fit(scn.dataset, scn.train_interactions)

    anchor = copy.deepcopy(template)
    exact = copy.deepcopy(template).set_dedup("exact")
    approx_replicas = []
    for tau in taus:
        replica = copy.deepcopy(template)
        replica.config = cfg.with_options(dedup_threshold=tau)
        approx_replicas.append((tau, replica.set_dedup("approx")))
    replicas = [anchor, exact, *(rep for _, rep in approx_replicas)]

    seconds = [0.0] * len(replicas)
    recall_sums = dict.fromkeys(taus, 0.0)
    n_windows = 0
    n_served = 0
    exact_parity_ok = True

    def serve(recommender, window) -> tuple[list, float]:
        started = time.perf_counter()
        ranked = [recommender.recommend(item, k) for item in window]
        return ranked, time.perf_counter() - started

    window: list = []
    for event in scn.events:
        if event.kind == "upload":
            item = event.payload
            for replica in replicas:
                replica.observe_item(item)
            window.append(item)
            if len(window) < window_size:
                continue
            # Absorb accumulated updates *untimed* in every replica, so
            # the timed loops isolate the serving machinery.
            for replica in replicas:
                replica.matcher.sync()
            results: list = [None] * len(replicas)
            # Rotate who serves first each window.
            offset = n_windows % len(replicas)
            for step in range(len(replicas)):
                position = (offset + step) % len(replicas)
                ranked, secs = serve(replicas[position], window)
                results[position] = ranked
                seconds[position] += secs
            want = results[0]
            exact_parity_ok = exact_parity_ok and results[1] == want
            for tau_index, tau in enumerate(taus):
                got = results[2 + tau_index]
                for anchor_ranked, approx_ranked in zip(want, got):
                    anchor_users = {user for user, _ in anchor_ranked}
                    if not anchor_users:
                        recall_sums[tau] += 1.0
                        continue
                    approx_users = {user for user, _ in approx_ranked}
                    recall_sums[tau] += (
                        len(anchor_users & approx_users) / len(anchor_users)
                    )
            n_served += len(window)
            n_windows += 1
            window = []
        else:
            interaction = event.payload
            payload_item = scn.item_payload(interaction)
            for replica in replicas:
                replica.update(interaction, payload_item)

    approx_rows = []
    for tau_index, (tau, replica) in enumerate(approx_replicas):
        approx_rows.append(
            {
                "tau": tau,
                "seconds": seconds[2 + tau_index],
                "recall": recall_sums[tau] / n_served if n_served else 0.0,
                "stats": replica.dedup_stats() or {},
            }
        )
    return DedupResult(
        scenario=scenario,
        seed=int(seed),
        k=int(k),
        window_size=int(window_size),
        n_windows=n_windows,
        n_served=n_served,
        anchor_seconds=seconds[0],
        exact_seconds=seconds[1],
        exact_stats=exact.dedup_stats() or {},
        exact_parity_ok=exact_parity_ok,
        default_tau=default_tau,
        approx=approx_rows,
    )


def run_batch_throughput(
    dataset: Dataset,
    batch_sizes: Sequence[int] = (1, 16, 64),
    k: int = 30,
    max_items: int = 512,
    updates_per_item: int = 1,
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> BatchThroughputResult:
    """Measure ``recommend_batch`` against the per-item serving loop.

    Scan and index scenarios serve a fixed item slice with warm caches (a
    full per-item pass runs untimed first, so the comparison isolates the
    serving machinery rather than one-off cache fills).  The
    ``index+updates`` scenario interleaves ``updates_per_item`` profile
    updates per served item — arriving window-by-window, as micro-batching
    delivers them — so the per-item loop flushes index maintenance before
    every query while the batched path flushes once per window; only
    serving calls (including their maintenance flushes) are timed.
    """
    base = config or SsRecConfig()
    batch_sizes = sorted({1, *(int(b) for b in batch_sizes)})
    stream = partition_interactions(dataset)
    items = [
        item
        for partition in stream.test_indices
        for item in stream.items_in_partition(partition)
    ][: int(max_items)]
    if not items:
        raise ValueError("dataset has no test items to serve")
    interactions = [
        inter
        for partition in stream.test_indices
        for inter in stream.partitions[partition]
    ]
    item_by_id = {item.item_id: item for item in dataset.items}

    def serve_seconds(rec: SsRecRecommender, batch_size: int) -> float:
        if batch_size == 1:
            started = time.perf_counter()
            for item in items:
                rec.recommend(item, k)
            return time.perf_counter() - started
        started = time.perf_counter()
        for start in range(0, len(items), batch_size):
            rec.recommend_batch(items[start : start + batch_size], k)
        return time.perf_counter() - started

    items_per_sec: dict[str, dict[int, float]] = {}
    for scenario, use_index in (("scan", False), ("index", True)):
        rec = _fit_ssrec(dataset, stream, base, use_index=use_index, seed=seed)
        # Untimed warm-up of both paths: the per-item pass fills the
        # expanded-query cache, the batch pass fills the persistent column
        # caches — so no measured batch size pays one-off cache fills for
        # the others.
        for item in items:
            rec.recommend(item, k)
        rec.recommend_batch(items, k)
        items_per_sec[scenario] = {
            bs: len(items) / serve_seconds(rec, bs) for bs in batch_sizes
        }

    template = _fit_ssrec(dataset, stream, base, use_index=True, seed=seed)
    with_updates: dict[int, float] = {}
    for bs in batch_sizes:
        rec = copy.deepcopy(template)
        cursor = 0
        elapsed = 0.0
        for start in range(0, len(items), bs):
            window = items[start : start + bs]
            for _ in range(updates_per_item * len(window)):
                inter = interactions[cursor % len(interactions)]
                cursor += 1
                rec.update(inter, item_by_id.get(inter.item_id))
            started = time.perf_counter()
            if bs == 1:
                rec.recommend(window[0], k)
            else:
                rec.recommend_batch(window, k)
            elapsed += time.perf_counter() - started
        with_updates[bs] = len(items) / elapsed
    items_per_sec["index+updates"] = with_updates
    return BatchThroughputResult(
        dataset=dataset.name, n_items=len(items), items_per_sec=items_per_sec
    )


# ----------------------------------------------------------------------
# Native scoring kernels — fused-kernel vs vectorized scan-batch serving
# ----------------------------------------------------------------------
@dataclass
class NativeKernelsResult:
    """Fused-kernel (``scoring="native"``) vs vectorized scan-batch serving.

    Attributes:
        dataset: benchmark dataset name.
        n_items: items served per timed pass.
        k: recommendation depth per query.
        batch_size: micro-batch window of the timed passes.
        rounds: timed passes per arm (throughput uses the total).
        vectorized_seconds: total timed seconds of the vectorized arm.
        native_seconds: total timed seconds of the native arm.
        native_engaged: the compiled kernels actually served (numba
            present and self-tested); False means the native arm ran the
            bit-identical vectorized fallback — parity still judged, the
            >=5x headline not claimed.
        fallbacks: ``repro.core.kernels`` fallback counter after the run.
        parity_ok: every native ranked list matched the vectorized arm's
            within the 1e-9 tie discipline (bitwise when falling back).
    """

    dataset: str
    n_items: int
    k: int
    batch_size: int
    rounds: int
    vectorized_seconds: float
    native_seconds: float
    native_engaged: bool
    fallbacks: int
    parity_ok: bool

    @property
    def vectorized_items_per_sec(self) -> float:
        total = self.n_items * self.rounds
        return total / self.vectorized_seconds if self.vectorized_seconds else 0.0

    @property
    def native_items_per_sec(self) -> float:
        total = self.n_items * self.rounds
        return total / self.native_seconds if self.native_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (
            self.native_items_per_sec / self.vectorized_items_per_sec
            if self.vectorized_items_per_sec
            else 0.0
        )

    def to_text(self) -> str:
        mode = "compiled kernels" if self.native_engaged else "FALLBACK (vectorized)"
        lines = [
            f"Native scoring kernels — scan-batch serving ({self.dataset})",
            f"  items={self.n_items} k={self.k} batch={self.batch_size} "
            f"rounds={self.rounds}",
            f"  vectorized: {self.vectorized_items_per_sec:9.1f} items/sec "
            f"({self.vectorized_seconds:.3f}s)",
            f"  native:     {self.native_items_per_sec:9.1f} items/sec "
            f"({self.native_seconds:.3f}s)  [{mode}]",
            f"  speedup: {self.speedup:.2f}x   fallbacks={self.fallbacks}",
            f"  parity: {'within 1e-9 ties' if self.parity_ok else 'BROKEN'}",
        ]
        return "\n".join(lines)


def run_native_kernels(
    dataset: Dataset,
    k: int = 30,
    batch_size: int = 64,
    max_items: int = 512,
    rounds: int = 3,
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> NativeKernelsResult:
    """Measure the fused native kernels on the scan-batch serving path.

    Two replicas of one trained scan-mode recommender serve the same item
    slice through ``recommend_batch``: the vectorized arm and a replica
    switched to ``scoring="native"``.  Both arms run one full **untimed**
    warm-up pass first — for the native arm that is where numba JIT
    compilation happens, so compile time is excluded from the timed
    region by construction (the rule docs/BENCHMARKS.md states).  The
    timed passes alternate arm order per round so neither arm
    systematically benefits from warmed CPU caches, and the native arm's
    ranked lists are compared to the vectorized arm's within the 1e-9
    tie discipline while being timed, so the measured win is proven
    correct as it is measured.

    Without numba the native arm serves through the bit-identical
    vectorized fallback: parity still gates, the throughput columns
    approximately tie, and ``native_engaged`` records that the >=5x
    headline was not claimable on this machine.
    """
    from repro.core import kernels
    from repro.sim.oracle import matches_within_ties  # local: keeps eval import-light

    base = config or SsRecConfig()
    stream = partition_interactions(dataset)
    items = [
        item
        for partition in stream.test_indices
        for item in stream.items_in_partition(partition)
    ][: int(max_items)]
    if not items:
        raise ValueError("dataset has no test items to serve")
    windows = [
        items[start : start + int(batch_size)]
        for start in range(0, len(items), int(batch_size))
    ]

    template = _fit_ssrec(dataset, stream, base, use_index=False, seed=seed)
    vectorized = template
    native = copy.deepcopy(template).set_scoring("native")

    def serve(rec: SsRecRecommender) -> tuple[list, float]:
        started = time.perf_counter()
        ranked = [rec.recommend_batch(window, k) for window in windows]
        return ranked, time.perf_counter() - started

    # Untimed warm-up passes: JIT compilation (native), expanded-query
    # and column caches (both arms).
    serve(vectorized)
    serve(native)

    vectorized_seconds = 0.0
    native_seconds = 0.0
    parity_ok = True
    for round_index in range(int(rounds)):
        if round_index % 2 == 0:
            want, v_secs = serve(vectorized)
            got, n_secs = serve(native)
        else:
            got, n_secs = serve(native)
            want, v_secs = serve(vectorized)
        vectorized_seconds += v_secs
        native_seconds += n_secs
        for want_window, got_window in zip(want, got):
            for want_ranked, got_ranked in zip(want_window, got_window):
                parity_ok = parity_ok and matches_within_ties(got_ranked, want_ranked)

    return NativeKernelsResult(
        dataset=dataset.name,
        n_items=len(items),
        k=int(k),
        batch_size=int(batch_size),
        rounds=int(rounds),
        vectorized_seconds=vectorized_seconds,
        native_seconds=native_seconds,
        native_engaged=kernels.native_ready(),
        fallbacks=kernels.fallback_count(),
        parity_ok=parity_ok,
    )


# ----------------------------------------------------------------------
# Network serving — coalescing throughput and scenario load generation
# ----------------------------------------------------------------------
@dataclass
class ServerThroughputResult:
    """Open-loop served throughput: dynamic coalescing vs per-request.

    Both arms fire the same concurrent recommend traffic through the
    socket at one live server; the only difference is whether the server
    coalesces concurrently queued requests into micro-batches.  Every
    served ranked list is compared bitwise against the in-process
    ``recommend_batch`` reference, so the measured win is proven exact
    as it is timed.

    Attributes:
        dataset: served dataset name.
        n_items: queries per measured arm.
        k: recommendation depth per query.
        concurrency: load generator's in-flight request bound.
        per_request_seconds / coalesced_seconds: measured wall clock.
        per_request_latency_ms / coalesced_latency_ms: client-observed
            round-trip percentiles per arm.
        mean_batch_size / max_batch_size: the coalescer's formed batches.
        parity_ok: every served list matched the in-process reference.
        obs: the coalesced server's ``metrics``-route payload after the
            measured rounds — the server-side queue-wait vs batch-exec
            decomposition behind the client-observed latencies.
    """

    dataset: str
    n_items: int
    k: int
    concurrency: int
    per_request_seconds: float
    coalesced_seconds: float
    per_request_latency_ms: dict
    coalesced_latency_ms: dict
    mean_batch_size: float
    max_batch_size: int
    parity_ok: bool
    obs: dict = field(default_factory=dict)

    @property
    def per_request_items_per_sec(self) -> float:
        return self.n_items / self.per_request_seconds if self.per_request_seconds else 0.0

    @property
    def coalesced_items_per_sec(self) -> float:
        return self.n_items / self.coalesced_seconds if self.coalesced_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (
            self.coalesced_items_per_sec / self.per_request_items_per_sec
            if self.per_request_items_per_sec
            else 0.0
        )

    def to_text(self) -> str:
        lines = [
            f"Network serving — dynamic coalescing vs per-request dispatch "
            f"({self.dataset})",
            f"  queries={self.n_items} k={self.k} concurrency={self.concurrency}",
            f"  per-request: {self.per_request_items_per_sec:9.1f} items/sec "
            f"(p50={self.per_request_latency_ms.get('p50_ms', 0.0):.2f}ms "
            f"p95={self.per_request_latency_ms.get('p95_ms', 0.0):.2f}ms)",
            f"  coalesced:   {self.coalesced_items_per_sec:9.1f} items/sec "
            f"(p50={self.coalesced_latency_ms.get('p50_ms', 0.0):.2f}ms "
            f"p95={self.coalesced_latency_ms.get('p95_ms', 0.0):.2f}ms, "
            f"mean_batch={self.mean_batch_size:.1f} max={self.max_batch_size})",
            f"  speedup: {self.speedup:.2f}x",
            f"  parity: {'bit-identical' if self.parity_ok else 'BROKEN'}",
        ]
        histograms = {
            entry.get("name"): entry
            for entry in self.obs.get("registry", {}).get("histograms", [])
        }
        queue = histograms.get("server.queue_seconds")
        batch = histograms.get("server.batch_seconds")
        if queue or batch:
            lines.append(
                "  server-side: "
                f"queued {0 if queue is None else queue.get('count', 0)} requests, "
                f"executed {0 if batch is None else batch.get('count', 0)} batches "
                "(scrape the metrics route for the full registry)"
            )
        return "\n".join(lines)


def run_server_throughput(
    dataset: Dataset,
    k: int = 10,
    max_items: int = 256,
    concurrency: int = 16,
    max_batch: int | None = None,
    max_delay: float = 0.0,
    rounds: int = 3,
    config: SsRecConfig | None = None,
    seed: int = 1,
) -> ServerThroughputResult:
    """Measure the server's dynamic micro-batch coalescing win.

    One scan-mode recommender is fitted and serves both arms (read-only
    query traffic, warmed untimed first, so neither arm pays one-off
    cache fills).  The load generator fires ``max_items`` concurrent
    recommends per arm — the open-loop shape the coalescer is built
    for — and the in-process ``recommend_batch`` output is the bitwise
    reference for every served list.

    Both arms run ``rounds`` measured passes, *alternating* so drift
    (allocator state, CPU contention — client, server and model share
    cores here) hits them evenly, and each arm reports its best pass —
    the min-time discipline every other bench in this repo inherits
    from pytest-benchmark.  Parity is asserted on every pass of every
    round.  ``max_batch`` defaults to twice the concurrency so the
    coalescer's natural window (it tracks the arrival rate — see
    :class:`~repro.serve.server._Coalescer`) is never split by the cap.
    """
    from repro.serve.loadgen import drive_queries  # local: keeps eval import-light
    from repro.serve.server import RecommenderServer, ServerThread

    base = config or SsRecConfig()
    if max_batch is None:
        max_batch = max(2, 2 * int(concurrency))
    stream = partition_interactions(dataset)
    items = [
        item
        for partition in stream.test_indices
        for item in stream.items_in_partition(partition)
    ][: int(max_items)]
    if not items:
        raise ValueError("dataset has no test items to serve")
    rec = _fit_ssrec(dataset, stream, base, use_index=False, seed=seed)
    # Untimed warm-up doubling as the bitwise reference.
    expected = rec.recommend_batch(items, k)

    measured = {}
    parity_ok = True
    batch_stats = (0.0, 0)
    arms = (("per-request", False), ("coalesced", True))
    servers = {}
    threads = {}
    try:
        for arm, coalesce in arms:
            server = RecommenderServer(
                rec, coalesce=coalesce, max_batch=max_batch, max_delay=max_delay
            )
            threads[arm] = ServerThread(server)
            threads[arm].start()
            servers[arm] = server
            drive_queries(
                server.host, server.port, items[:8], k=k, concurrency=concurrency
            )
        for rnd in range(max(1, int(rounds))):
            # Reverse the arm order on odd rounds so a monotone drift in
            # the box (thermal, cgroup throttling) cannot systematically
            # favor whichever arm runs first.
            for arm, _coalesce in (arms if rnd % 2 == 0 else arms[::-1]):
                server = servers[arm]
                report = drive_queries(
                    server.host, server.port, items, k=k, concurrency=concurrency
                )
                parity_ok = parity_ok and report.results == expected
                best = measured.get(arm)
                if best is None or report.seconds < best.seconds:
                    measured[arm] = report
    finally:
        for thread in threads.values():
            thread.stop()
    batch_stats = (
        servers["coalesced"].stats.mean_batch_size,
        servers["coalesced"].stats.max_batch_size,
    )
    return ServerThroughputResult(
        dataset=dataset.name,
        n_items=len(items),
        k=int(k),
        concurrency=int(concurrency),
        per_request_seconds=measured["per-request"].seconds,
        coalesced_seconds=measured["coalesced"].seconds,
        per_request_latency_ms=measured["per-request"].latency.summary_ms(),
        coalesced_latency_ms=measured["coalesced"].latency.summary_ms(),
        mean_batch_size=batch_stats[0],
        max_batch_size=batch_stats[1],
        parity_ok=parity_ok,
        # The coalesced arm's metrics scrape (cumulative up to its best
        # round): the server-side queue/batch decomposition behind the
        # client-observed latencies.
        obs=measured["coalesced"].server_obs,
    )


@dataclass
class LoadgenSuiteResult:
    """Scenario catalog replayed as network traffic, one report each.

    Attributes:
        seed: scenario generator seed.
        k / window_size / concurrency: traffic shape.
        verified: reports carry bitwise verdicts against a replica.
        reports: one :class:`~repro.serve.loadgen.LoadgenReport` per
            scenario, in replay order.
    """

    seed: int
    k: int
    window_size: int
    concurrency: int
    verified: bool
    reports: list  # list[LoadgenReport]

    @property
    def total_divergences(self) -> int:
        return sum(report.divergences for report in self.reports)

    @property
    def total_overloads(self) -> int:
        return sum(report.overloads for report in self.reports)

    @property
    def conformant(self) -> bool:
        return self.total_divergences == 0

    def to_text(self) -> str:
        lines = [
            "Open-loop load generation — scenarios replayed through the wire "
            f"(seed {self.seed}, k={self.k}, window={self.window_size}, "
            f"concurrency={self.concurrency})",
        ]
        lines.extend(f"  {report.to_text()}" for report in self.reports)
        if self.verified:
            verdict = (
                "all scenarios EXACT through the socket"
                if self.conformant
                else f"BROKEN: {self.total_divergences} divergences"
            )
        else:
            verdict = "unverified (no replica)"
        lines.append(f"  loadgen verdict: {verdict}")
        return "\n".join(lines)


def run_loadgen(
    scenarios: Sequence[str] | None = None,
    seed: int = 7,
    k: int = 10,
    window_size: int = 8,
    concurrency: int = 8,
    max_events: int = 600,
    base: Dataset | None = None,
    config: SsRecConfig | None = None,
    verify: bool = True,
    coalesce: bool = True,
    fit_seed: int = 1,
    address: tuple[str, int] | None = None,
) -> LoadgenSuiteResult:
    """Replay the adversarial scenario catalog as open-loop traffic.

    Self-hosting mode (the default): each scenario fits one template,
    deep-copies it into the served owner and (when ``verify``) an
    in-process replica fed the identical event sequence, hosts the owner
    on a background server thread and drives the stream through the
    asyncio client — mutations in order, recommendation windows fired
    concurrently.  With ``verify`` every served ranked list must match
    the replica **bit for bit**; any divergence fails the suite (the CI
    server-smoke job gates on this).

    Args:
        address: replay against an already-running external server at
            ``(host, port)`` instead of self-hosting; verification is
            off in this mode (the external state is unknown).
    """
    from repro.serve.loadgen import drive_scenario  # local: keeps eval import-light
    from repro.serve.server import RecommenderServer, ServerThread
    from repro.sim import ScenarioGenerator

    generator = ScenarioGenerator(base=base, seed=seed, max_events=max_events)
    verify = bool(verify) and address is None
    reports = []
    for scenario in generator.generate_all(scenarios):
        if address is not None:
            host, port = address
            reports.append(drive_scenario(
                host, port, scenario, k=k, window_size=window_size,
                concurrency=concurrency,
            ))
            continue
        cfg = (config or SsRecConfig()).with_options(
            maintenance_interval=scenario.maintenance_interval
        )
        template = SsRecRecommender(config=cfg, use_index=False, seed=fit_seed)
        template.fit(scenario.dataset, scenario.train_interactions)
        owner = copy.deepcopy(template)
        replica = copy.deepcopy(template) if verify else None
        server = RecommenderServer(owner, coalesce=coalesce)
        with ServerThread(server) as (host, port):
            reports.append(drive_scenario(
                host, port, scenario, k=k, window_size=window_size,
                concurrency=concurrency, replica=replica,
            ))
    return LoadgenSuiteResult(
        seed=int(seed),
        k=int(k),
        window_size=int(window_size),
        concurrency=int(concurrency),
        verified=verify,
        reports=reports,
    )


def run_serve(
    dataset: Dataset,
    host: str = "127.0.0.1",
    port: int = 0,
    coalesce: bool = True,
    use_index: bool = False,
    config: SsRecConfig | None = None,
    seed: int = 1,
):
    """Fit on ``dataset`` and host it over the wire on a background loop.

    Returns the started :class:`~repro.serve.server.ServerThread`; the
    caller reads the bound address from ``thread.server`` and calls
    ``stop()`` to drain (the CLI blocks until Ctrl-C and does exactly
    that).
    """
    from repro.serve.server import RecommenderServer, ServerThread

    base = config or SsRecConfig()
    stream = partition_interactions(dataset)
    rec = _fit_ssrec(dataset, stream, base, use_index=use_index, seed=seed)
    thread = ServerThread(RecommenderServer(
        rec, host=host, port=port, coalesce=coalesce
    ))
    thread.start()
    return thread
