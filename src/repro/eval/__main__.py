"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from the shell::

    python -m repro.eval table2
    python -m repro.eval table3 --scale default
    python -m repro.eval fig5 --dataset YTube
    python -m repro.eval fig7 --dataset MLens --scale small
    python -m repro.eval fig10 --dataset YTube --scale default
    python -m repro.eval fig11

Beyond the paper, ``batch`` measures the batched serving path, ``sharded``
sweeps the sharded serving runtime, ``cache`` measures the plan-level
result cache on duplicate-heavy delivery, ``dedup`` measures the
near-duplicate collapse stage on mutated-retry traffic (exit status 1 on
any exact-mode divergence — CI gates on it), and ``conformance`` replays
the adversarial scenario catalog through every registered execution plan
against the naive oracle (exit status 1 on any divergence — CI gates on
it)::

    python -m repro.eval batch --dataset YTube --scale default
    python -m repro.eval sharded --dataset YTube --scale default
    python -m repro.eval cache --scale default
    python -m repro.eval dedup --scale default
    python -m repro.eval conformance
    python -m repro.eval conformance --scenarios bursty_uploads,abrupt_drift --events 300
    python -m repro.eval conformance --paths scan-item,scan-item-cached,index-batch
    python -m repro.eval conformance --list-paths

The network layer has two entry points: ``serve`` fits on a dataset and
hosts it over the framed JSON socket protocol until Ctrl-C; ``loadgen``
replays the adversarial scenario catalog as open-loop socket traffic —
self-hosting a verified server per scenario by default (exit status 1 on
any bitwise divergence — the CI server-smoke job gates on it), or
against an external ``--address host:port`` (unverified)::

    python -m repro.eval serve --dataset YTube --scale default --port 7431
    python -m repro.eval loadgen --scenarios duplicate_out_of_order,bursty_uploads
    python -m repro.eval loadgen --address 127.0.0.1:7431 --no-verify
    python -m repro.eval loadgen --obs-dump metrics.json

``--paths`` accepts plan names from the registry (``--list-paths`` prints
it, one line per plan — the conformance catalog is registry-derived, so
newly registered plans appear automatically).  ``--scale`` controls the
dataset size (small | default | paper_shape); ``--dataset`` picks one of
the four Table III datasets where applicable.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.eval import experiments as ex

SINGLE_DATASET_EXPERIMENTS = {
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "batch", "sharded", "cache",
    "dedup", "serve",
}
ALL_EXPERIMENTS = sorted(
    SINGLE_DATASET_EXPERIMENTS | {"table2", "table3", "fig11", "conformance", "loadgen"}
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate a table/figure of 'Online Social Media "
        "Recommendation over Streams' (ICDE 2019).",
    )
    parser.add_argument("experiment", choices=ALL_EXPERIMENTS)
    parser.add_argument(
        "--dataset",
        default="YTube",
        choices=["YTube", "SynYTube", "MLens", "SynMLens"],
        help="dataset for single-dataset experiments (default: YTube)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=["small", "default", "paper_shape"],
        help="dataset scale (default: small)",
    )
    parser.add_argument(
        "--min-truth",
        type=int,
        default=3,
        help="minimum interacting users for an item to be judged (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--scenarios",
        default=None,
        help="conformance only: comma-separated scenario names "
        "(default: the full catalog)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=600,
        help="conformance only: serving-stream length per scenario (default: 600)",
    )
    parser.add_argument(
        "--k",
        type=int,
        default=10,
        help="conformance only: recommendation depth per query (default: 10)",
    )
    parser.add_argument(
        "--paths",
        default=None,
        help="conformance only: comma-separated execution-plan names from "
        "the registry (default: every conformance-marked plan)",
    )
    parser.add_argument(
        "--list-paths",
        action="store_true",
        help="conformance only: print the plan registry (one line per "
        "plan) and exit",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve only: interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve only: port to bind (default: 0 = ephemeral)",
    )
    parser.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="loadgen only: replay against an already-running external "
        "server instead of self-hosting (implies --no-verify)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="loadgen only: in-flight recommend bound (default: 8)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=8,
        help="loadgen only: recommend window size (default: 8)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="loadgen only: skip the bitwise replica verification",
    )
    parser.add_argument(
        "--obs-dump",
        default=None,
        metavar="PATH",
        help="loadgen only: write the merged server metrics scrape "
        "(registry dump + Prometheus text + slow-request log) to PATH as "
        "JSON — readable by `python -m repro.obs summarize`",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="serve/loadgen: per-request dispatch instead of micro-batch "
        "coalescing",
    )
    return parser


def _write_obs_dump(path: str, reports) -> None:
    """Merge every scenario's server metrics scrape into one dump file.

    Each loadgen report carries the ``metrics``-route payload of its own
    (per-scenario) server; merging their registries gives the suite-wide
    view.  The written JSON round-trips through
    ``python -m repro.obs summarize`` — CI schema-checks it that way.
    """
    import json

    from repro.obs import MetricsRegistry

    merged = MetricsRegistry()
    slow_requests: list = []
    for report in reports:
        obs = getattr(report, "server_obs", None) or {}
        registry = obs.get("registry")
        if registry is not None:
            merged.merge(MetricsRegistry.from_dict(registry))
        slow_requests.extend(obs.get("slow_requests", []))
    payload = {
        "registry": merged.to_dict(),
        "prometheus": merged.to_prometheus(),
        "slow_requests": slow_requests,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
    print(f"server metrics dump written to {path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "table2":
        dataset = generate_ytube(YTubeConfig.sparse(seed=args.seed))
        print(ex.run_table2(dataset).to_text())
        return 0
    if args.experiment == "table3":
        print(ex.run_table3(scale=args.scale, seed=args.seed).to_text())
        return 0
    if args.experiment == "loadgen":
        address = None
        if args.address:
            host, _, port = args.address.rpartition(":")
            address = (host, int(port))
        names = args.scenarios.split(",") if args.scenarios else None
        result = ex.run_loadgen(
            scenarios=names,
            seed=args.seed,
            k=args.k,
            window_size=args.window,
            concurrency=args.concurrency,
            max_events=args.events,
            verify=not args.no_verify,
            coalesce=not args.no_coalesce,
            address=address,
        )
        print(result.to_text())
        if args.obs_dump:
            _write_obs_dump(args.obs_dump, result.reports)
        # Non-zero exit on any served/replica divergence: CI gates on this.
        return 0 if result.total_divergences == 0 else 1
    if args.experiment == "conformance":
        if args.list_paths:
            from repro.exec import PLAN_REGISTRY

            print(PLAN_REGISTRY.describe())
            return 0
        names = args.scenarios.split(",") if args.scenarios else None
        paths = args.paths.split(",") if args.paths else None
        result = ex.run_conformance(
            scenarios=names,
            seed=args.seed,
            k=args.k,
            max_events=args.events,
            paths=paths,
        )
        print(result.to_text())
        # Non-zero exit on any divergence: CI gates on this.
        return 0 if result.total_divergences == 0 else 1
    datasets = ex.make_datasets(args.scale, seed=args.seed)
    if args.experiment == "fig11":
        print(ex.run_fig11(datasets, seed=args.seed).to_text())
        return 0
    dataset = datasets[args.dataset]
    # One --seed drives both the dataset generators above and the model
    # initialization inside every driver — a run is reproducible from the
    # command line alone.
    if args.experiment == "fig5":
        result = ex.run_fig5(
            dataset, max_users=16, max_states=4, min_history=25, seed=args.seed
        )
    elif args.experiment == "fig6":
        result = ex.run_fig6(dataset, min_truth=args.min_truth, seed=args.seed)
    elif args.experiment == "fig7":
        result = ex.run_fig7(dataset, min_truth=args.min_truth, seed=args.seed)
    elif args.experiment == "fig8":
        result = ex.run_fig8(dataset, min_truth=args.min_truth, seed=args.seed)
    elif args.experiment == "fig9":
        result = ex.run_fig9(dataset, min_truth=args.min_truth, seed=args.seed)
    elif args.experiment == "fig10":
        result = ex.run_fig10(dataset, min_truth=2, seed=args.seed)
    elif args.experiment == "batch":
        result = ex.run_batch_throughput(dataset, seed=args.seed)
    elif args.experiment == "sharded":
        result = ex.run_sharded_throughput(dataset, seed=args.seed)
    elif args.experiment == "cache":
        result = ex.run_result_cache(base=dataset, seed=args.seed)
    elif args.experiment == "dedup":
        result = ex.run_dedup(base=dataset, seed=args.seed)
        print(result.to_text())
        # Non-zero exit on exact-mode divergence: CI gates on this.
        return 0 if result.exact_parity_ok else 1
    elif args.experiment == "serve":
        thread = ex.run_serve(
            dataset,
            host=args.host,
            port=args.port,
            coalesce=not args.no_coalesce,
            seed=args.seed,
        )
        host, port = thread.server.host, thread.server.port
        print(f"serving {args.dataset} ({args.scale}) on {host}:{port} "
              f"— Ctrl-C to drain and stop", flush=True)
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            thread.stop()
        return 0
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.experiment)
    print(result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
