"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from the shell::

    python -m repro.eval table2
    python -m repro.eval table3 --scale default
    python -m repro.eval fig5 --dataset YTube
    python -m repro.eval fig7 --dataset MLens --scale small
    python -m repro.eval fig10 --dataset YTube --scale default
    python -m repro.eval fig11

Beyond the paper, ``batch`` measures the batched serving path and
``sharded`` sweeps the sharded serving runtime::

    python -m repro.eval batch --dataset YTube --scale default
    python -m repro.eval sharded --dataset YTube --scale default

``--scale`` controls the dataset size (small | default | paper_shape);
``--dataset`` picks one of the four Table III datasets where applicable.
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.eval import experiments as ex

SINGLE_DATASET_EXPERIMENTS = {
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "batch", "sharded",
}
ALL_EXPERIMENTS = sorted(SINGLE_DATASET_EXPERIMENTS | {"table2", "table3", "fig11"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate a table/figure of 'Online Social Media "
        "Recommendation over Streams' (ICDE 2019).",
    )
    parser.add_argument("experiment", choices=ALL_EXPERIMENTS)
    parser.add_argument(
        "--dataset",
        default="YTube",
        choices=["YTube", "SynYTube", "MLens", "SynMLens"],
        help="dataset for single-dataset experiments (default: YTube)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=["small", "default", "paper_shape"],
        help="dataset scale (default: small)",
    )
    parser.add_argument(
        "--min-truth",
        type=int,
        default=3,
        help="minimum interacting users for an item to be judged (default: 3)",
    )
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "table2":
        dataset = generate_ytube(YTubeConfig.sparse(seed=args.seed))
        print(ex.run_table2(dataset).to_text())
        return 0
    if args.experiment == "table3":
        print(ex.run_table3(scale=args.scale).to_text())
        return 0
    datasets = ex.make_datasets(args.scale, seed=args.seed)
    if args.experiment == "fig11":
        print(ex.run_fig11(datasets).to_text())
        return 0
    dataset = datasets[args.dataset]
    if args.experiment == "fig5":
        result = ex.run_fig5(dataset, max_users=16, max_states=4, min_history=25)
    elif args.experiment == "fig6":
        result = ex.run_fig6(dataset, min_truth=args.min_truth)
    elif args.experiment == "fig7":
        result = ex.run_fig7(dataset, min_truth=args.min_truth)
    elif args.experiment == "fig8":
        result = ex.run_fig8(dataset, min_truth=args.min_truth)
    elif args.experiment == "fig9":
        result = ex.run_fig9(dataset, min_truth=args.min_truth)
    elif args.experiment == "fig10":
        result = ex.run_fig10(dataset, min_truth=2)
    elif args.experiment == "batch":
        result = ex.run_batch_throughput(dataset, seed=args.seed)
    elif args.experiment == "sharded":
        result = ex.run_sharded_throughput(dataset, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.experiment)
    print(result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
