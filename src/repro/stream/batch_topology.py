"""Micro-batched deployment: recommendation over item windows.

The per-item topology (:mod:`repro.stream.recommend_topology`) re-enters the
recommender once per tuple, paying the full serving overhead — profile sync,
tree location, query encoding — for every item.  The batched deployment
drains the stream in configurable windows instead::

    ItemSpout --> EntityExtractBolt --(fields: category)--> MicroBatchBolt x C
              --(fields: category)--> BatchMatchBolt x C --> TopKSinkBolt

- :class:`MicroBatchBolt` buffers items into per-category windows and emits
  one batch tuple whenever a window fills; partial windows flush at end of
  stream through the engine's ``finish`` pass.
- :class:`BatchMatchBolt` hands each window to ``recommend_batch`` — the
  amortized path through the vectorized matcher (scan mode) or the
  CPPse-index (index mode) — and re-emits one result tuple per item, so the
  unchanged :class:`~repro.stream.recommend_topology.TopKSinkBolt` collects
  the same ``results[item_id] = [(user, score)]`` mapping.

Batches are single-category by construction, matching the paper's
one-match-bolt-per-category deployment and maximizing shared sigtree
descents inside ``knn_batch``.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from typing import Protocol

from repro.datasets.schema import SocialItem
from repro.entities.extractor import EntityExtractor
from repro.stream.recommend_topology import EntityExtractBolt, ItemSpout, TopKSinkBolt
from repro.stream.topology import Bolt, Emitter, Topology, TopologyBuilder
from repro.stream.tuples import StreamTuple


class BatchRecommender(Protocol):
    """Minimal protocol the batch match bolts require."""

    def recommend_batch(
        self, items: Sequence[SocialItem], k: int
    ) -> list[list[tuple[int, float]]]:
        """Per-item top-``k`` ``(user_id, score)`` lists for a window."""
        ...


class MicroBatchBolt(Bolt):
    """Buffers item tuples into fixed-size per-category windows.

    Args:
        batch_size: window size; a category's window is emitted as one
            ``items`` tuple the moment it fills.  Partial windows are
            emitted by ``finish`` when the stream ends, so every item is
            served exactly once.
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size = int(batch_size)
        self._windows: dict[int, list[SocialItem]] = defaultdict(list)

    def _emit_window(self, category: int, emitter: Emitter) -> None:
        window = self._windows.pop(category, [])
        if not window:
            return
        emitter.emit_values(
            "",
            timestamp=window[-1].timestamp,
            items=list(window),
            category=category,
        )

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        item: SocialItem = tup["item"]
        window = self._windows[item.category]
        window.append(item)
        if len(window) >= self._batch_size:
            self._emit_window(item.category, emitter)

    def finish(self, emitter: Emitter) -> None:
        for category in sorted(self._windows):
            self._emit_window(category, emitter)


class BatchMatchBolt(Bolt):
    """Serves one window per tuple through the plan's batch entry point.

    Emits one result tuple per item of the window so the per-item sink
    bolt collects results exactly as in the per-item topology.  As in
    :class:`~repro.stream.recommend_topology.MatchBolt`, plan-aware
    facades supply their compiled execution plan via
    :func:`repro.exec.as_executor`; plain batch recommenders are adapted.
    """

    def __init__(self, recommender: BatchRecommender, k: int) -> None:
        self._recommender = recommender
        self._k = int(k)

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        from repro.exec import as_executor  # local: keeps stream import-light

        items: list[SocialItem] = tup["items"]
        # Resolved per window (cheap — facades cache their compiled
        # plan), so mid-topology facade reconfiguration is honored.
        ranked_lists = as_executor(self._recommender).run_batch(items, self._k)
        for item, ranked in zip(items, ranked_lists):
            emitter.emit(
                tup.with_values("", item_id=item.item_id, recommendations=ranked)
            )


def build_batch_recommend_topology(
    items: Sequence[SocialItem],
    extractor: EntityExtractor,
    recommender: BatchRecommender,
    n_categories: int,
    k: int = 30,
    batch_size: int | None = None,
) -> tuple[Topology, TopKSinkBolt]:
    """Wire the micro-batched topology; returns ``(topology, sink)``.

    Mirrors :func:`~repro.stream.recommend_topology.build_recommendation_topology`
    with the match stage split into batcher + batch matcher; both stages are
    fields-grouped on ``category`` with one task per category, per the
    paper's bolt count.  ``batch_size`` defaults to the recommender's
    ``config.batch_size`` when it has one (the ssRec facade does), else 64.
    """
    if n_categories < 1:
        raise ValueError(f"n_categories must be >= 1, got {n_categories}")
    if batch_size is None:
        config = getattr(recommender, "config", None)
        batch_size = int(getattr(config, "batch_size", 64))
    sink = TopKSinkBolt()
    builder = TopologyBuilder()
    builder.set_spout("items", ItemSpout(items))
    builder.set_bolt("extract", lambda: EntityExtractBolt(extractor)).shuffle_grouping("items")
    builder.set_bolt(
        "batcher", lambda: MicroBatchBolt(batch_size), parallelism=n_categories
    ).fields_grouping("extract", "category")
    builder.set_bolt(
        "match", lambda: BatchMatchBolt(recommender, k), parallelism=n_categories
    ).fields_grouping("batcher", "category")
    builder.set_bolt("sink", lambda: sink).global_grouping("match")
    return builder.build(), sink
