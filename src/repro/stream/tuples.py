"""Stream tuples: the unit of data flowing through a topology."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class StreamTuple:
    """An immutable named-field tuple, Storm style.

    Attributes:
        values: field name -> value mapping.
        source: name of the component that emitted it.
        timestamp: logical event time (propagated downstream by default).
    """

    values: dict[str, Any] = field(default_factory=dict)
    source: str = ""
    timestamp: float = 0.0

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def with_values(self, source: str, **updates: Any) -> "StreamTuple":
        """Derived tuple: copy of this one with updated/added fields."""
        merged = dict(self.values)
        merged.update(updates)
        return StreamTuple(values=merged, source=source, timestamp=self.timestamp)
