"""Deterministic single-process topology execution engine.

Executes a :class:`~repro.stream.topology.Topology` synchronously: each
spout tuple is pushed through the dataflow graph depth-first before the next
one is pulled (per-item latency is therefore well defined — the quantity
Fig. 10 reports).  Per-bolt wall-clock time, tuple counts and per-item
end-to-end latencies are recorded in an :class:`EngineReport`.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.stream.topology import Bolt, Emitter, Topology
from repro.stream.tuples import StreamTuple


@dataclass
class EngineReport:
    """Execution statistics of one topology run.

    Attributes:
        tuples_emitted: component name -> number of tuples it emitted.
        tuples_processed: bolt name -> number of tuples it consumed.
        bolt_seconds: bolt name -> total wall-clock seconds in ``process``.
        item_latencies: end-to-end seconds for each spout tuple.
    """

    tuples_emitted: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    tuples_processed: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bolt_seconds: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    item_latencies: list[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        if not self.item_latencies:
            return 0.0
        return sum(self.item_latencies) / len(self.item_latencies)

    def latency_percentile(self, q: float) -> float:
        """q-th percentile (0..100) of the per-item end-to-end latencies.

        Delegates to :func:`repro.obs.metrics.exact_percentile` (imported
        lazily so the stream substrate stays import-light) — the one
        percentile implementation serving engine reports, timing stats
        and the evaluation harness alike.
        """
        from repro.obs.metrics import exact_percentile

        return exact_percentile(self.item_latencies, q)

    @property
    def p50_latency(self) -> float:
        """Median per-item latency (seconds)."""
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-item latency (seconds) — the tail the mean
        hides, and the quantity sharding is meant to improve."""
        return self.latency_percentile(95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile per-item latency (seconds)."""
        return self.latency_percentile(99)

    @property
    def total_seconds(self) -> float:
        return sum(self.item_latencies)


class LocalEngine:
    """Runs a topology to stream exhaustion, single process, deterministic.

    Parallelism is simulated: each bolt spec is instantiated ``parallelism``
    times and groupings decide which instance handles a tuple, exactly as
    Storm routes tuples to tasks — so a fields-grouped bolt keeps per-key
    state correctly partitioned even though execution is sequential.
    """

    def __init__(self, topology: Topology) -> None:
        topology.validate()
        self.topology = topology
        self._tasks: dict[str, list[Bolt]] = {}
        self._round_robin: dict[tuple[str, str], int] = defaultdict(int)
        for name, spec in topology.bolts.items():
            instances = [spec.factory() for _ in range(spec.parallelism)]
            for index, bolt in enumerate(instances):
                bolt.prepare(index, spec.parallelism)
            self._tasks[name] = instances

    def _dispatch(self, tup: StreamTuple, report: EngineReport) -> None:
        """Push one tuple to every subscribed bolt task, depth-first.

        ``all``-grouped bolts receive the tuple on every task (broadcast);
        all other groupings resolve to exactly one task.
        """
        for spec in self.topology.downstream_of(tup.source):
            grouping = next(g for g in spec.groupings if g.source == tup.source)
            rr_key = (tup.source, spec.name)
            task_indices = grouping.route(tup, spec.parallelism, self._round_robin[rr_key])
            self._round_robin[rr_key] += 1
            for task_index in task_indices:
                bolt = self._tasks[spec.name][task_index]
                emitter = Emitter()
                started = time.perf_counter()
                bolt.process(tup, emitter)
                report.bolt_seconds[spec.name] += time.perf_counter() - started
                report.tuples_processed[spec.name] += 1
                for emitted in emitter.drain():
                    out = StreamTuple(
                        values=emitted.values,
                        source=spec.name,
                        timestamp=emitted.timestamp or tup.timestamp,
                    )
                    report.tuples_emitted[spec.name] += 1
                    self._dispatch(out, report)

    def run(self, max_tuples: int | None = None) -> EngineReport:
        """Pump every spout to exhaustion (or ``max_tuples`` per spout)."""
        report = EngineReport()
        for name, spout in self.topology.spouts.items():
            spout.open()
            count = 0
            while max_tuples is None or count < max_tuples:
                tup = spout.next_tuple()
                if tup is None:
                    break
                count += 1
                report.tuples_emitted[name] += 1
                sourced = StreamTuple(values=tup.values, source=name, timestamp=tup.timestamp)
                started = time.perf_counter()
                self._dispatch(sourced, report)
                report.item_latencies.append(time.perf_counter() - started)
        self._finish(report)
        for instances in self._tasks.values():
            for bolt in instances:
                bolt.cleanup()
        return report

    def _finish(self, report: EngineReport) -> None:
        """End-of-stream pass: let every bolt flush buffered state.

        Runs in topological order so tuples flushed by an upstream bolt
        reach downstream bolts before their own ``finish`` is called.
        """
        for name in self.topology.topological_order():
            for bolt in self._tasks[name]:
                emitter = Emitter()
                started = time.perf_counter()
                bolt.finish(emitter)
                report.bolt_seconds[name] += time.perf_counter() - started
                for emitted in emitter.drain():
                    out = StreamTuple(
                        values=emitted.values, source=name, timestamp=emitted.timestamp
                    )
                    report.tuples_emitted[name] += 1
                    self._dispatch(out, report)

    def task_instances(self, bolt_name: str) -> list[Bolt]:
        """The live task instances of ``bolt_name`` (for tests/inspection)."""
        return list(self._tasks[bolt_name])
