"""The paper's deployment: recommendation as a Storm topology.

Section VI-D: "Our CPPse-index is implemented over Apache Storm ... The bolt
in Apache Storm is responsible for receiving inputs and works as the CPU.
We configure the number of bolts over Apache Storm same as the category
number of each dataset."

The topology is::

    ItemSpout --> EntityExtractBolt --(fields: category)--> MatchBolt x C --> TopKSinkBolt

- :class:`ItemSpout` replays the social-item stream;
- :class:`EntityExtractBolt` runs the entity extractor over the item text
  (the TagMe step);
- :class:`MatchBolt` is parallelized with one task per category (fields
  grouping on ``category``) and asks the recommender for the top-k users;
- :class:`TopKSinkBolt` collects the final ranked lists.

Any object with a ``recommend(item, k) -> list[(user_id, score)]`` method
works as the recommender — the ssRec facade, the naive scan, or a baseline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol

from repro.datasets.schema import SocialItem
from repro.entities.extractor import EntityExtractor
from repro.stream.topology import Bolt, Emitter, Spout, Topology, TopologyBuilder
from repro.stream.tuples import StreamTuple


class Recommender(Protocol):
    """Minimal protocol the match bolts require."""

    def recommend(self, item: SocialItem, k: int) -> list[tuple[int, float]]:
        """Top-``k`` ``(user_id, score)`` pairs for ``item``."""
        ...


class ItemSpout(Spout):
    """Replays a sequence of :class:`SocialItem` as the source stream."""

    def __init__(self, items: Iterable[SocialItem]) -> None:
        self._items = list(items)
        self._cursor = 0

    def open(self) -> None:
        self._cursor = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._cursor >= len(self._items):
            return None
        item = self._items[self._cursor]
        self._cursor += 1
        return StreamTuple(
            values={"item": item, "category": item.category},
            timestamp=item.timestamp,
        )


class EntityExtractBolt(Bolt):
    """Re-extracts the entity set from the item text (the TagMe step).

    The extracted entities replace the item's declared ones downstream, so
    the pipeline genuinely exercises text -> entities -> matching.
    """

    def __init__(self, extractor: EntityExtractor) -> None:
        self._extractor = extractor

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        item: SocialItem = tup["item"]
        extracted = tuple(self._extractor.extract(item.text))
        enriched = SocialItem(
            item_id=item.item_id,
            category=item.category,
            producer=item.producer,
            entities=extracted if extracted else item.entities,
            text=item.text,
            timestamp=item.timestamp,
        )
        emitter.emit(tup.with_values("", item=enriched, category=enriched.category))


class MatchBolt(Bolt):
    """Executes the recommender's compiled plan per incoming item.

    One task per category (fields grouping), per the paper's bolt count.
    Plan-aware facades hand the bolt their compiled execution plan
    (:func:`repro.exec.as_executor`); plain recommenders — baselines,
    test doubles — are adapted to the same interface, so the topology
    shape never depends on what serves it.
    """

    def __init__(self, recommender: Recommender, k: int) -> None:
        self._recommender = recommender
        self._k = int(k)

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        from repro.exec import as_executor  # local: keeps stream import-light

        item: SocialItem = tup["item"]
        # Resolved per tuple (plan-aware facades cache their compiled
        # plan, so this is an attribute lookup): a facade reconfigured
        # mid-topology — attach_index(), enable_result_cache() — serves
        # the next tuple through its new plan, matching the old per-call
        # recommend() delegation.
        ranked = as_executor(self._recommender).run_item(item, self._k)
        emitter.emit(tup.with_values("", item_id=item.item_id, recommendations=ranked))


class TopKSinkBolt(Bolt):
    """Collects final ranked lists: ``results[item_id] = [(user, score)]``."""

    def __init__(self) -> None:
        self.results: dict[int, list[tuple[int, float]]] = {}

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        self.results[tup["item_id"]] = tup["recommendations"]


def build_recommendation_topology(
    items: Sequence[SocialItem],
    extractor: EntityExtractor,
    recommender: Recommender,
    n_categories: int,
    k: int = 30,
) -> tuple[Topology, TopKSinkBolt]:
    """Wire the paper's topology; returns ``(topology, sink)``.

    The sink instance is returned so callers can read ``sink.results`` after
    the engine run.
    """
    if n_categories < 1:
        raise ValueError(f"n_categories must be >= 1, got {n_categories}")
    sink = TopKSinkBolt()
    builder = TopologyBuilder()
    builder.set_spout("items", ItemSpout(items))
    builder.set_bolt("extract", lambda: EntityExtractBolt(extractor)).shuffle_grouping("items")
    builder.set_bolt(
        "match", lambda: MatchBolt(recommender, k), parallelism=n_categories
    ).fields_grouping("extract", "category")
    builder.set_bolt("sink", lambda: sink).global_grouping("match")
    return builder.build(), sink
