"""Sharded deployment: fan-out/merge recommendation as a topology.

The paper parallelizes match bolts by *category*; the sharded runtime
(:mod:`repro.serve`) parallelizes by *user partition* instead — every
shard must see every item, and the per-shard top-k lists are merged into
the global top-k.  As a Storm-style dataflow::

    ItemSpout --> EntityExtractBolt --(all)--> ShardMatchBolt x N
              --(global)--> ShardMergeBolt --> TopKSinkBolt

- :class:`ShardMatchBolt` is instantiated once per shard (the *all*
  grouping broadcasts each item to every task); task ``i`` serves shard
  ``i`` of a :class:`~repro.serve.service.ShardedRecommender` and emits
  its shard-local top-k.
- :class:`ShardMergeBolt` buffers the partial lists per item and, once
  all ``N`` shards have reported, emits the merged global top-k — which
  is exactly what ``ShardedRecommender.recommend`` computes in-process.

The unchanged :class:`~repro.stream.recommend_topology.TopKSinkBolt`
collects ``results[item_id] = [(user, score)]`` as in the other
deployments, so parity with the per-item topology is a list equality.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datasets.schema import SocialItem
from repro.entities.extractor import EntityExtractor
from repro.exec import MergeOp
from repro.serve.service import ShardedRecommender
from repro.stream.recommend_topology import EntityExtractBolt, ItemSpout, TopKSinkBolt
from repro.stream.topology import Bolt, Emitter, Topology, TopologyBuilder
from repro.stream.tuples import StreamTuple


class ShardMatchBolt(Bolt):
    """Serves one shard's slice; task index selects the shard.

    The bolt is the dataflow rendering of one branch of the execution
    plan's :class:`~repro.exec.ops.FanoutOp`: each task executes its
    shard through the shared plan-executor interface
    (:func:`repro.exec.as_executor`).
    """

    def __init__(self, service: ShardedRecommender, k: int) -> None:
        self._service = service
        self._k = int(k)
        self._shard = None

    def prepare(self, task_index: int, n_tasks: int) -> None:
        if n_tasks != self._service.n_shards:
            raise ValueError(
                f"shard bolt parallelism {n_tasks} != service shard count "
                f"{self._service.n_shards}"
            )
        self._shard = self._service.shards[task_index]

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        from repro.exec import as_executor  # local: keeps stream import-light

        item: SocialItem = tup["item"]
        ranked = as_executor(self._shard).run_item(item, self._k)
        emitter.emit(
            tup.with_values(
                "",
                item_id=item.item_id,
                shard_id=self._shard.shard_id,
                partial=ranked,
            )
        )


class ShardMergeBolt(Bolt):
    """Merges per-shard partial top-k lists into the global top-k.

    Emits an item's final list only when every shard has reported it, so
    downstream sees exactly one result tuple per item.
    """

    def __init__(self, n_shards: int, k: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = int(n_shards)
        self._k = int(k)
        self._merge = MergeOp()  # the execution plan's merge operator
        self._partials: dict[int, list[list[tuple[int, float]]]] = {}

    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        item_id = tup["item_id"]
        partials = self._partials.setdefault(item_id, [])
        partials.append(tup["partial"])
        if len(partials) == self._n_shards:
            del self._partials[item_id]
            emitter.emit(
                tup.with_values(
                    "",
                    item_id=item_id,
                    recommendations=self._merge.merge(partials, self._k),
                )
            )

    def cleanup(self) -> None:
        if self._partials:  # pragma: no cover - indicates a routing bug
            raise RuntimeError(
                f"{len(self._partials)} items ended the stream with missing "
                f"shard partials"
            )


def build_sharded_recommend_topology(
    items: Sequence[SocialItem],
    extractor: EntityExtractor,
    service: ShardedRecommender,
    k: int = 30,
) -> tuple[Topology, TopKSinkBolt]:
    """Wire the fan-out/merge topology; returns ``(topology, sink)``.

    One match task per shard (all-grouped broadcast), one merge task
    (global grouping) — the Storm shape of what
    ``ShardedRecommender.recommend`` does in-process.
    """
    sink = TopKSinkBolt()
    builder = TopologyBuilder()
    builder.set_spout("items", ItemSpout(items))
    builder.set_bolt("extract", lambda: EntityExtractBolt(extractor)).shuffle_grouping("items")
    builder.set_bolt(
        "shard_match",
        lambda: ShardMatchBolt(service, k),
        parallelism=service.n_shards,
    ).all_grouping("extract")
    builder.set_bolt(
        "merge", lambda: ShardMergeBolt(service.n_shards, k)
    ).global_grouping("shard_match")
    builder.set_bolt("sink", lambda: sink).global_grouping("merge")
    return builder.build(), sink
