"""Topology programming model: spouts, bolts, groupings, builder.

Mirrors Apache Storm's core abstractions at miniature scale:

- a :class:`Spout` produces the source stream;
- a :class:`Bolt` consumes tuples and emits derived tuples;
- a :class:`TopologyBuilder` wires components with *groupings* that decide
  which parallel task of a downstream bolt receives each tuple (shuffle,
  fields — the one the paper needs to shard match bolts by category — and
  global).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.stream.tuples import StreamTuple


class Emitter:
    """Handed to components so they can emit downstream tuples."""

    def __init__(self) -> None:
        self._buffer: list[StreamTuple] = []

    def emit(self, tup: StreamTuple) -> None:
        self._buffer.append(tup)

    def emit_values(self, source: str, timestamp: float = 0.0, **values: Any) -> None:
        self._buffer.append(StreamTuple(values=values, source=source, timestamp=timestamp))

    def drain(self) -> list[StreamTuple]:
        out, self._buffer = self._buffer, []
        return out


class Spout(abc.ABC):
    """Stream source.  ``next_tuple`` returns None when exhausted."""

    def open(self) -> None:
        """Called once before the first ``next_tuple``."""

    @abc.abstractmethod
    def next_tuple(self) -> StreamTuple | None:
        """Produce the next tuple, or None when the stream has ended."""


class Bolt(abc.ABC):
    """Stream operator.  ``process`` may emit any number of tuples."""

    def prepare(self, task_index: int, n_tasks: int) -> None:
        """Called once per parallel task before any tuple arrives."""

    @abc.abstractmethod
    def process(self, tup: StreamTuple, emitter: Emitter) -> None:
        """Handle one tuple; emit derived tuples through ``emitter``."""

    def finish(self, emitter: Emitter) -> None:
        """Called once per task when the source streams are exhausted,
        before ``cleanup``.  Buffering bolts (e.g. micro-batchers) emit
        their partial windows here; emissions flow downstream normally."""

    def cleanup(self) -> None:
        """Called once after the stream is exhausted."""


@dataclass(frozen=True)
class Grouping:
    """How tuples from ``source`` are routed to a bolt's parallel tasks.

    ``kind`` is one of:
        - ``"shuffle"``: round-robin across tasks;
        - ``"fields"``: hash of the named fields picks the task (tuples with
          equal field values always hit the same task);
        - ``"global"``: every tuple goes to task 0;
        - ``"all"``: every tuple is broadcast to *every* task (Storm's all
          grouping — what fans a query out to every shard bolt).
    """

    source: str
    kind: str = "shuffle"
    fields: tuple[str, ...] = ()

    def route(self, tup: StreamTuple, n_tasks: int, round_robin: int) -> list[int]:
        """Task indices this tuple goes to (one for all kinds but ``all``)."""
        if self.kind == "all":
            return list(range(n_tasks))
        if n_tasks <= 1:
            return [0]
        if self.kind == "shuffle":
            return [round_robin % n_tasks]
        if self.kind == "fields":
            key = tuple(tup.get(f) for f in self.fields)
            return [hash(key) % n_tasks]
        if self.kind == "global":
            return [0]
        raise ValueError(f"unknown grouping kind {self.kind!r}")


@dataclass
class BoltSpec:
    """A bolt declaration: factory, parallelism, input groupings."""

    name: str
    factory: Callable[[], Bolt]
    parallelism: int = 1
    groupings: list[Grouping] = field(default_factory=list)

    def shuffle_grouping(self, source: str) -> "BoltSpec":
        self.groupings.append(Grouping(source=source, kind="shuffle"))
        return self

    def fields_grouping(self, source: str, *fields: str) -> "BoltSpec":
        if not fields:
            raise ValueError("fields grouping requires at least one field")
        self.groupings.append(Grouping(source=source, kind="fields", fields=tuple(fields)))
        return self

    def global_grouping(self, source: str) -> "BoltSpec":
        self.groupings.append(Grouping(source=source, kind="global"))
        return self

    def all_grouping(self, source: str) -> "BoltSpec":
        self.groupings.append(Grouping(source=source, kind="all"))
        return self


@dataclass
class Topology:
    """A validated dataflow graph ready for execution."""

    spouts: dict[str, Spout]
    bolts: dict[str, BoltSpec]

    def validate(self) -> None:
        """Check that every grouping references a declared component and the
        graph is acyclic (topological order exists)."""
        names = set(self.spouts) | set(self.bolts)
        for spec in self.bolts.values():
            if not spec.groupings:
                raise ValueError(f"bolt {spec.name!r} has no input grouping")
            for g in spec.groupings:
                if g.source not in names:
                    raise ValueError(
                        f"bolt {spec.name!r} subscribes to unknown component {g.source!r}"
                    )
        self.topological_order()  # raises on cycles

    def downstream_of(self, source: str) -> list[BoltSpec]:
        """Bolt specs subscribed to ``source``."""
        return [
            spec
            for spec in self.bolts.values()
            if any(g.source == source for g in spec.groupings)
        ]

    def topological_order(self) -> list[str]:
        """Bolt names in dependency order; raises ``ValueError`` on cycles."""
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set(self.spouts)

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                raise ValueError(f"topology contains a cycle through {name!r}")
            visiting.add(name)
            for g in self.bolts[name].groupings:
                if g.source in self.bolts:
                    visit(g.source)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in self.bolts:
            visit(name)
        return order


class TopologyBuilder:
    """Fluent builder mirroring Storm's ``TopologyBuilder``."""

    def __init__(self) -> None:
        self._spouts: dict[str, Spout] = {}
        self._bolts: dict[str, BoltSpec] = {}

    def set_spout(self, name: str, spout: Spout) -> "TopologyBuilder":
        self._check_name(name)
        self._spouts[name] = spout
        return self

    def set_bolt(
        self, name: str, factory: Callable[[], Bolt], parallelism: int = 1
    ) -> BoltSpec:
        """Declare a bolt; chain grouping calls on the returned spec."""
        self._check_name(name)
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        spec = BoltSpec(name=name, factory=factory, parallelism=parallelism)
        self._bolts[name] = spec
        return spec

    def _check_name(self, name: str) -> None:
        if name in self._spouts or name in self._bolts:
            raise ValueError(f"component name {name!r} already used")

    def build(self) -> Topology:
        topology = Topology(spouts=dict(self._spouts), bolts=dict(self._bolts))
        topology.validate()
        return topology
