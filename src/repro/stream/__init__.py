"""Storm-like stream-processing substrate.

The paper implements its recommendation process over Apache Storm [4] and
"configure[s] the number of bolts over Apache Storm same as the category
number of each dataset".  Offline we substitute a miniature Storm: the same
spout/bolt/topology programming model with shuffle and fields groupings,
executed by a deterministic single-process engine that records per-bolt
timing (what the efficiency experiments measure).

The substrate is generic — nothing in it knows about recommendation; the
paper's deployment lives in :mod:`repro.stream.recommend_topology`.
"""

from repro.stream.tuples import StreamTuple
from repro.stream.topology import Bolt, Spout, TopologyBuilder, Topology, Grouping
from repro.stream.engine import LocalEngine, EngineReport
from repro.stream.recommend_topology import (
    ItemSpout,
    EntityExtractBolt,
    MatchBolt,
    TopKSinkBolt,
    build_recommendation_topology,
)
from repro.stream.batch_topology import (
    BatchMatchBolt,
    MicroBatchBolt,
    build_batch_recommend_topology,
)

__all__ = [
    "StreamTuple",
    "Bolt",
    "Spout",
    "Topology",
    "TopologyBuilder",
    "Grouping",
    "LocalEngine",
    "EngineReport",
    "ItemSpout",
    "EntityExtractBolt",
    "MatchBolt",
    "TopKSinkBolt",
    "build_recommendation_topology",
    "MicroBatchBolt",
    "BatchMatchBolt",
    "build_batch_recommend_topology",
]
