"""repro — reproduction of "Online Social Media Recommendation over Streams"
(Zhou et al., ICDE 2019).

The package implements the paper's ssRec framework end to end:

- :mod:`repro.hmm` — discrete HMM substrate and the Bi-Layer HMM (BiHMM);
- :mod:`repro.entities` — entity extraction and proximity-based expansion;
- :mod:`repro.datasets` — synthetic YTube/MLens generators, synthpop,
  stream partitioning;
- :mod:`repro.stream` — a miniature Apache Storm (spouts/bolts/topologies);
- :mod:`repro.core` — user profiles, interest prediction, entity-based
  matching (Eq. 1-4) and the :class:`~repro.core.ssrec.SsRecRecommender`
  facade;
- :mod:`repro.index` — the CPPse-index (hashing, user blocks, extended
  signature trees, branch-and-bound KNN, dynamic maintenance);
- :mod:`repro.serve` — the sharded serving runtime (user sharding plans,
  per-shard matcher/index, fan-out/merge facade, snapshot persistence);
- :mod:`repro.baselines` — CTT, UCD, naive scan, single-layer HMM;
- :mod:`repro.eval` — metrics, the stream evaluation harness and one driver
  per table/figure of the paper.

Quickstart::

    from repro import SsRecRecommender, generate_ytube, partition_interactions

    dataset = generate_ytube()
    stream = partition_interactions(dataset)
    rec = SsRecRecommender().fit(dataset, stream.training_interactions())
    item = stream.items_in_partition(2)[0]
    print(rec.recommend(item, k=10))
"""

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.mlens import MLensConfig, generate_mlens
from repro.datasets.partitions import partition_interactions
from repro.datasets.synthpop import synthesize_dataset
from repro.datasets.ytube import YTubeConfig, generate_ytube
from repro.serve.service import ShardedRecommender

__version__ = "1.1.0"

__all__ = [
    "SsRecConfig",
    "SsRecRecommender",
    "ShardedRecommender",
    "YTubeConfig",
    "generate_ytube",
    "MLensConfig",
    "generate_mlens",
    "synthesize_dataset",
    "partition_interactions",
    "__version__",
]
