"""Numerical helpers shared by the HMM implementations."""

from __future__ import annotations

import numpy as np

#: Probability floor applied after every M-step so that no transition or
#: emission probability collapses to exactly zero.  A hard zero would make
#: later sequences containing that event have -inf log-likelihood, which
#: both breaks Baum-Welch monotonicity checks and mirrors the paper's
#: motivation for Dirichlet smoothing in the matching function.
PROB_FLOOR = 1e-12


def log_sum_exp(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Numerically stable ``log(sum(exp(values)))`` along ``axis``.

    Handles all ``-inf`` inputs gracefully (returns ``-inf`` instead of NaN).
    """
    values = np.asarray(values, dtype=float)
    max_val = np.max(values, axis=axis, keepdims=True)
    # Where every entry is -inf, keep -inf rather than producing NaN.
    safe_max = np.where(np.isfinite(max_val), max_val, 0.0)
    with np.errstate(divide="ignore"):
        out = safe_max + np.log(
            np.sum(np.exp(values - safe_max), axis=axis, keepdims=True)
        )
    out = np.where(np.isfinite(max_val), out, -np.inf)
    if axis is None:
        return out.reshape(())[()]
    return np.squeeze(out, axis=axis)


def normalize_rows(matrix: np.ndarray, floor: float = PROB_FLOOR) -> np.ndarray:
    """Return a row-stochastic copy of ``matrix``.

    Rows that sum to zero become uniform.  All entries are floored at
    ``floor`` before the final normalization so the result is strictly
    positive.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim == 1:
        return normalize_rows(matrix[None, :], floor=floor)[0]
    sums = matrix.sum(axis=1, keepdims=True)
    zero_rows = (sums <= 0.0).ravel()
    out = np.empty_like(matrix, dtype=float)
    if zero_rows.any():
        out[zero_rows] = 1.0 / matrix.shape[1]
    nonzero = ~zero_rows
    if nonzero.any():
        out[nonzero] = matrix[nonzero] / sums[nonzero]
    out = np.maximum(out, floor)
    out /= out.sum(axis=1, keepdims=True)
    return out


def random_stochastic_vector(size: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a strictly positive random probability vector of ``size``."""
    vec = rng.dirichlet(np.ones(size))
    return normalize_rows(vec)


def random_stochastic_matrix(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a strictly positive random row-stochastic ``rows x cols`` matrix."""
    mat = rng.dirichlet(np.ones(cols), size=rows)
    return normalize_rows(mat)


def validate_sequences(sequences, n_symbols: int) -> list[np.ndarray]:
    """Validate and convert observation sequences to int arrays.

    Raises ``ValueError`` on empty input, empty sequences, or out-of-range
    symbols — failing fast here keeps the training loops assertion-free.
    """
    if not sequences:
        raise ValueError("at least one observation sequence is required")
    converted: list[np.ndarray] = []
    for i, seq in enumerate(sequences):
        arr = np.asarray(seq, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"sequence {i} must be 1-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            raise ValueError(f"sequence {i} is empty")
        if arr.min() < 0 or arr.max() >= n_symbols:
            raise ValueError(
                f"sequence {i} contains symbols outside [0, {n_symbols}): "
                f"min={arr.min()}, max={arr.max()}"
            )
        converted.append(arr)
    return converted
