"""Input-conditioned HMM: the paper's composite-state b-HMM reformulation.

Section IV-A reformulates the b-HMM so that its state becomes the composite
``U' = (U_i, Z_k)`` where ``Z_k`` is the hidden state of the producer of the
consumed item, *decoded by the already-trained a-HMM* ("given an observed
category c, its associated hidden state is obtained using Viterbi").  Once
``Z`` is decoded it is observed from the b-HMM's point of view, so the
composite-state HMM is equivalent to an HMM over the consumer states ``U``
whose transition and emission matrices are *conditioned* on the producer
state ``Z``:

- transition ``A[z][i, j] = p(U_j | U_i, Z=z)``  (paper: ``a_ikj``),
- emission   ``B[z][j, m] = p(c_m | U_j, Z=z)``  (paper: ``b_jkm``).

That is exactly the structure this class implements.  Training is standard
Baum-Welch with sufficient statistics accumulated per input symbol — "we can
train the b-HMM by the same way used in the a-HMM" — and reduces to the
classic algorithm when ``n_inputs == 1``.
"""

from __future__ import annotations

import numpy as np

from repro.hmm.base import FitResult
from repro.hmm.utils import (
    PROB_FLOOR,
    normalize_rows,
    random_stochastic_matrix,
    random_stochastic_vector,
    validate_sequences,
)


class InputConditionedHMM:
    """HMM whose transitions/emissions are selected by an observed input.

    Args:
        n_states: number of consumer hidden states ``N^(b)``.
        n_symbols: size of the observation alphabet (item categories).
        n_inputs: number of input symbols (producer hidden states ``N^(a)``,
            plus typically one extra "unknown producer" symbol).
        seed: seed for random parameter initialization.
    """

    def __init__(
        self,
        n_states: int,
        n_symbols: int,
        n_inputs: int,
        seed: int | None = 0,
    ) -> None:
        if n_states < 1:
            raise ValueError(f"n_states must be >= 1, got {n_states}")
        if n_symbols < 1:
            raise ValueError(f"n_symbols must be >= 1, got {n_symbols}")
        if n_inputs < 1:
            raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
        self.n_states = int(n_states)
        self.n_symbols = int(n_symbols)
        self.n_inputs = int(n_inputs)
        rng = np.random.default_rng(seed)
        self.pi = random_stochastic_vector(self.n_states, rng)
        self.A = np.stack(
            [random_stochastic_matrix(self.n_states, self.n_states, rng) for _ in range(self.n_inputs)]
        )
        self.B = np.stack(
            [random_stochastic_matrix(self.n_states, self.n_symbols, rng) for _ in range(self.n_inputs)]
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate_pair(self, observations, inputs) -> tuple[np.ndarray, np.ndarray]:
        obs = validate_sequences([observations], self.n_symbols)[0]
        inp = np.asarray(inputs, dtype=np.int64)
        if inp.shape != obs.shape:
            raise ValueError(
                f"inputs shape {inp.shape} must match observations shape {obs.shape}"
            )
        if inp.size and (inp.min() < 0 or inp.max() >= self.n_inputs):
            raise ValueError(
                f"inputs contain symbols outside [0, {self.n_inputs}): "
                f"min={inp.min()}, max={inp.max()}"
            )
        return obs, inp

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _forward(self, obs: np.ndarray, inp: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        T = len(obs)
        alpha = np.zeros((T, self.n_states))
        scales = np.zeros(T)
        alpha[0] = self.pi * self.B[inp[0]][:, obs[0]]
        scales[0] = max(alpha[0].sum(), PROB_FLOOR)
        alpha[0] /= scales[0]
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.A[inp[t]]) * self.B[inp[t]][:, obs[t]]
            scales[t] = max(alpha[t].sum(), PROB_FLOOR)
            alpha[t] /= scales[t]
        return alpha, scales

    def _backward(self, obs: np.ndarray, inp: np.ndarray, scales: np.ndarray) -> np.ndarray:
        T = len(obs)
        beta = np.zeros((T, self.n_states))
        beta[T - 1] = 1.0
        for t in range(T - 2, -1, -1):
            z = inp[t + 1]
            beta[t] = (self.A[z] * self.B[z][:, obs[t + 1]]) @ beta[t + 1]
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(self, observations, inputs) -> float:
        """Log-probability of an (observation, input) sequence pair."""
        obs, inp = self._validate_pair(observations, inputs)
        _, scales = self._forward(obs, inp)
        return float(np.sum(np.log(scales)))

    def total_log_likelihood(self, pairs) -> float:
        """Sum of log-likelihoods over ``(observations, inputs)`` pairs."""
        return float(sum(self.log_likelihood(obs, inp) for obs, inp in pairs))

    def filter_state(self, observations, inputs) -> np.ndarray:
        """Filtered consumer-state distribution after the full history."""
        obs, inp = self._validate_pair(observations, inputs)
        alpha, _ = self._forward(obs, inp)
        return alpha[-1] / max(alpha[-1].sum(), PROB_FLOOR)

    def viterbi(self, observations, inputs) -> np.ndarray:
        """Most likely consumer hidden-state sequence (log-space)."""
        obs, inp = self._validate_pair(observations, inputs)
        T = len(obs)
        log_pi = np.log(np.maximum(self.pi, PROB_FLOOR))
        log_A = np.log(np.maximum(self.A, PROB_FLOOR))
        log_B = np.log(np.maximum(self.B, PROB_FLOOR))
        delta = np.zeros((T, self.n_states))
        psi = np.zeros((T, self.n_states), dtype=np.int64)
        delta[0] = log_pi + log_B[inp[0]][:, obs[0]]
        for t in range(1, T):
            trans = delta[t - 1][:, None] + log_A[inp[t]]
            psi[t] = np.argmax(trans, axis=0)
            delta[t] = trans[psi[t], np.arange(self.n_states)] + log_B[inp[t]][:, obs[t]]
        states = np.zeros(T, dtype=np.int64)
        states[T - 1] = int(np.argmax(delta[T - 1]))
        for t in range(T - 2, -1, -1):
            states[t] = psi[t + 1][states[t + 1]]
        return states

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_next_distribution(self, observations, inputs, next_input: int) -> np.ndarray:
        """Next-category distribution given the history and the producer
        state ``next_input`` of the incoming item.

        ``p(c | history, z) = sum_{i,j} alpha_T(i) A[z][i,j] B[z][j,c]``.
        """
        if not (0 <= next_input < self.n_inputs):
            raise ValueError(f"next_input {next_input} outside [0, {self.n_inputs})")
        state_now = self.filter_state(observations, inputs)
        next_state = state_now @ self.A[next_input]
        dist = next_state @ self.B[next_input]
        return dist / max(dist.sum(), PROB_FLOOR)

    def predict_next_marginal(
        self, observations, inputs, input_weights: np.ndarray | None = None
    ) -> np.ndarray:
        """Next-category distribution marginalized over the producer state.

        Used when the producer of the next item is unknown; ``input_weights``
        defaults to uniform over input symbols.
        """
        if input_weights is None:
            input_weights = np.full(self.n_inputs, 1.0 / self.n_inputs)
        input_weights = np.asarray(input_weights, dtype=float)
        if input_weights.shape != (self.n_inputs,):
            raise ValueError(
                f"input_weights must have shape ({self.n_inputs},), got {input_weights.shape}"
            )
        weights = input_weights / max(input_weights.sum(), PROB_FLOOR)
        state_now = self.filter_state(observations, inputs)
        dist = np.zeros(self.n_symbols)
        for z in range(self.n_inputs):
            if weights[z] <= 0:
                continue
            dist += weights[z] * ((state_now @ self.A[z]) @ self.B[z])
        return dist / max(dist.sum(), PROB_FLOOR)

    def predict_top_k(self, observations, inputs, next_input: int, k: int) -> list[int]:
        """Top-``k`` next categories for a known producer state."""
        dist = self.predict_next_distribution(observations, inputs, next_input)
        k = min(k, self.n_symbols)
        order = np.argsort(-dist, kind="stable")
        return [int(s) for s in order[:k]]

    def prior_distribution(self) -> np.ndarray:
        """Next-observation distribution with no history, marginal over inputs."""
        dist = np.zeros(self.n_symbols)
        for z in range(self.n_inputs):
            dist += (self.pi @ self.B[z]) / self.n_inputs
        return dist / max(dist.sum(), PROB_FLOOR)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self, pairs, n_iter: int = 50, tol: float = 1e-4, shrinkage: float = 0.3
    ) -> FitResult:
        """Baum-Welch over ``(observations, inputs)`` sequence pairs.

        Sufficient statistics for ``A[z]``/``B[z]`` are accumulated only from
        the steps where the input equals ``z``; an input symbol that never
        occurs keeps its (smoothed random) initialization.

        Args:
            shrinkage: hierarchical pooling strength in [0, 1].  Each
                input-conditioned statistic is blended with the pooled
                (input-marginal) statistic before normalization:
                ``stats[z] <- (1 - shrinkage) * stats[z] + shrinkage *
                pooled``.  Splitting short training sequences across the
                input alphabet leaves each ``A[z]``/``B[z]`` data-starved;
                pooling regularizes them toward the shared behaviour while
                keeping per-input structure where the data supports it.
        """
        if not (0.0 <= shrinkage <= 1.0):
            raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
        validated = [self._validate_pair(obs, inp) for obs, inp in pairs]
        if not validated:
            raise ValueError("at least one (observations, inputs) pair is required")
        result = FitResult()
        prev_ll = float("-inf")
        for iteration in range(n_iter):
            pi_acc = np.zeros(self.n_states)
            trans_acc = np.zeros((self.n_inputs, self.n_states, self.n_states))
            emit_acc = np.zeros((self.n_inputs, self.n_states, self.n_symbols))
            total_ll = 0.0
            for obs, inp in validated:
                alpha, scales = self._forward(obs, inp)
                beta = self._backward(obs, inp, scales)
                total_ll += float(np.sum(np.log(scales)))
                gamma = alpha * beta
                gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), PROB_FLOOR)
                pi_acc += gamma[0]
                T = len(obs)
                for t in range(T):
                    emit_acc[inp[t], :, obs[t]] += gamma[t]
                for t in range(T - 1):
                    z = inp[t + 1]
                    xi = (
                        alpha[t][:, None]
                        * self.A[z]
                        * self.B[z][:, obs[t + 1]][None, :]
                        * beta[t + 1][None, :]
                    )
                    denom = xi.sum()
                    if denom > 0:
                        trans_acc[z] += xi / denom
            self.pi = normalize_rows(pi_acc)
            pooled_trans = trans_acc.sum(axis=0)
            pooled_emit = emit_acc.sum(axis=0)
            pooled_trans_share = (
                pooled_trans / max(pooled_trans.sum(), PROB_FLOOR) * max(self.n_states, 1)
            )
            pooled_emit_share = (
                pooled_emit / max(pooled_emit.sum(), PROB_FLOOR) * max(self.n_states, 1)
            )
            for z in range(self.n_inputs):
                blended_trans = (1.0 - shrinkage) * trans_acc[z] + shrinkage * pooled_trans_share
                blended_emit = (1.0 - shrinkage) * emit_acc[z] + shrinkage * pooled_emit_share
                if blended_trans.sum() > 0 and self.n_states > 1:
                    self.A[z] = normalize_rows(blended_trans)
                if blended_emit.sum() > 0:
                    self.B[z] = normalize_rows(blended_emit)
            result.log_likelihoods.append(total_ll)
            result.n_iter = iteration + 1
            if np.isfinite(prev_ll):
                denom = max(abs(prev_ll), 1.0)
                if (total_ll - prev_ll) / denom < tol:
                    result.converged = True
                    break
            prev_ll = total_ll
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InputConditionedHMM(n_states={self.n_states}, "
            f"n_symbols={self.n_symbols}, n_inputs={self.n_inputs})"
        )
