"""The paper's Bi-Layer Hidden Markov Model (BiHMM, Section IV-A).

The model has two layers:

- **a-HMM layer** (:class:`ProducerLayer`): one classic HMM per producer,
  trained on the category sequence of the items that producer created.
  After training, the hidden state ``Z`` of every created item is decoded
  with Viterbi and memoized, so that a consumer trajectory can be annotated
  with the producer state of each item it touched.
- **b-HMM layer**: a consumer HMM whose next state depends both on the
  consumer's previous hidden state and on the producer hidden state of the
  consumed item.  Following the paper's reformulation (composite states
  ``U' = (U_i, Z_k)`` with ``Z`` observed after a-HMM decoding), this layer
  is an :class:`~repro.hmm.conditioned.InputConditionedHMM` whose input
  alphabet is the producer state space plus one reserved ``UNKNOWN`` symbol
  for items whose producer is unseen or untrained.

  The input driving the transition into step ``t`` is the producer state of
  the item browsed at ``t-1`` (the *lagged* z-trace).  This is the causal
  reading of Fig. 2/3 — "when a bursting event happens and is captured by a
  u^p that a user is following, the regular behavioral trajectory of the
  user is highly likely to be interrupted": the producer state the user just
  saw is what steers where they go next.  Crucially it also makes next-
  category prediction well-posed, because the conditioning input is fully
  known at prediction time (no marginalization over an unseen z).

The public prediction surface mirrors what the rest of ssRec needs:
``p(c | u^c)`` — the probability that the consumer's next browsed item falls
in category ``c`` — optionally conditioned on the producer of the candidate
item (Eq. 1 and Eq. 4 of the paper).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.hmm.base import DiscreteHMM, FitResult
from repro.hmm.conditioned import InputConditionedHMM
from repro.hmm.utils import PROB_FLOOR


class ProducerLayer:
    """a-HMM layer: one :class:`DiscreteHMM` per producer.

    Args:
        n_categories: size of the shared category alphabet.
        n_states: number of producer hidden states ``N^(a)`` per model.
        min_sequence_length: producers with fewer created items than this are
            left untrained; their items decode to the ``UNKNOWN`` state.
        seed: base seed; each producer model gets a derived seed.

    **Canonical state labelling.**  Hidden-state indices of independently
    trained per-producer HMMs are arbitrary: "state 2" of producer A and
    "state 2" of producer B are unrelated, so feeding raw indices into a
    shared b-HMM input alphabet would mix incomparable symbols and destroy
    the producer-dependency signal.  We therefore canonicalize each raw
    producer state by the *home category of its most likely successor
    state* — ``canon(s) = argmax_c (A_p[s] @ B_p)[c]`` — i.e. by where the
    producer is heading.  The exposed ``Z`` alphabet is then the category
    alphabet plus one ``UNKNOWN`` symbol, comparable across all producers,
    and carries exactly the trajectory-interruption information of the
    paper's Fig. 2 scenario.
    """

    def __init__(
        self,
        n_categories: int,
        n_states: int = 3,
        min_sequence_length: int = 3,
        seed: int = 0,
    ) -> None:
        if n_states < 1:
            raise ValueError(f"n_states must be >= 1, got {n_states}")
        self.n_categories = int(n_categories)
        self.n_states = int(n_states)
        self.min_sequence_length = int(min_sequence_length)
        self.seed = seed
        self.models: dict[object, DiscreteHMM] = {}
        self._item_states: dict[object, int] = {}
        self._producer_sequences: dict[object, list[int]] = {}
        # Filtered state per producer, maintained incrementally so that new
        # streamed items decode in O(N^2) instead of re-running Viterbi over
        # the producer's whole history.
        self._filtered: dict[object, np.ndarray] = {}
        # Canonical label per (producer, raw state): the home category of
        # the most likely successor state.
        self._canonical: dict[object, np.ndarray] = {}

    @property
    def unknown_state(self) -> int:
        """Reserved input symbol for items without a decodable producer state."""
        return self.n_categories

    @property
    def n_input_symbols(self) -> int:
        """Input alphabet size for the b-HMM (canonical labels + UNKNOWN)."""
        return self.n_categories + 1

    def _canonicalize(self, producer_id: object) -> np.ndarray:
        """canon[s] = argmax_c (A[s] @ B)[c] for one trained producer."""
        model = self.models[producer_id]
        canon = np.argmax(model.A @ model.B, axis=1).astype(np.int64)
        self._canonical[producer_id] = canon
        return canon

    def fit(
        self,
        producer_sequences: Mapping[object, Sequence[tuple[object, int]]],
        n_iter: int = 30,
        tol: float = 1e-4,
    ) -> dict[object, FitResult]:
        """Train one a-HMM per producer and decode every item's state.

        Args:
            producer_sequences: maps producer id to the temporally-ordered
                list of ``(item_id, category)`` pairs that producer created.
        Returns:
            per-producer :class:`FitResult` for the producers that trained.
        """
        results: dict[object, FitResult] = {}
        for index, (producer_id, created) in enumerate(producer_sequences.items()):
            categories = [int(cat) for _, cat in created]
            self._producer_sequences[producer_id] = categories
            if len(categories) < self.min_sequence_length:
                for item_id, _ in created:
                    self._item_states[item_id] = self.unknown_state
                continue
            model = DiscreteHMM(
                self.n_states, self.n_categories, seed=self.seed + 7919 * (index + 1)
            )
            results[producer_id] = model.fit([categories], n_iter=n_iter, tol=tol)
            self.models[producer_id] = model
            canon = self._canonicalize(producer_id)
            states = model.viterbi(categories)
            for (item_id, _), state in zip(created, states):
                self._item_states[item_id] = int(canon[state])
            self._filtered[producer_id] = model.filter_state(categories)
        return results

    def state_of_item(self, item_id: object) -> int:
        """Decoded producer hidden state of ``item_id`` (UNKNOWN if unseen)."""
        return self._item_states.get(item_id, self.unknown_state)

    def _advance_filter(self, producer_id: object, category: int) -> np.ndarray | None:
        """One incremental forward step of the producer's filtered state.

        Returns the new (unnormalized-safe) filtered vector, or None for
        untrained producers.
        """
        model = self.models.get(producer_id)
        if model is None:
            return None
        alpha = self._filtered.get(producer_id)
        if alpha is None:
            alpha = model.pi
        alpha_next = (alpha @ model.A) * model.B[:, int(category)]
        total = alpha_next.sum()
        if total <= 0:
            alpha_next = np.full(model.n_states, 1.0 / model.n_states)
        else:
            alpha_next = alpha_next / total
        return alpha_next

    def decode_new_item(self, producer_id: object, category: int) -> int:
        """Decode the canonical producer state of a *new* item.

        Uses one incremental forward-filtering step (the online analogue of
        extending the Viterbi decode by one observation), which keeps the
        streaming path O(N^2) per item.  Unknown producers map to UNKNOWN.
        """
        alpha_next = self._advance_filter(producer_id, category)
        if alpha_next is None:
            return self.unknown_state
        canon = self._canonical[producer_id]
        return int(canon[int(np.argmax(alpha_next))])

    def observe_created_item(self, producer_id: object, item_id: object, category: int) -> int:
        """Record a newly created item, decode and memoize its canonical state."""
        alpha_next = self._advance_filter(producer_id, category)
        if alpha_next is None:
            state = self.unknown_state
        else:
            self._filtered[producer_id] = alpha_next
            canon = self._canonical[producer_id]
            state = int(canon[int(np.argmax(alpha_next))])
        self._producer_sequences.setdefault(producer_id, []).append(int(category))
        self._item_states[item_id] = state
        return state

    def next_state_distribution(self, producer_id: object) -> np.ndarray:
        """Distribution over the producer's next *canonical* state.

        Returned over the full input alphabet (categories + UNKNOWN); for
        unknown producers all mass sits on the UNKNOWN symbol.
        """
        dist = np.zeros(self.n_input_symbols)
        model = self.models.get(producer_id)
        state_now = self._filtered.get(producer_id)
        if model is None or state_now is None:
            dist[self.unknown_state] = 1.0
            return dist
        canon = self._canonical[producer_id]
        raw_next = state_now @ model.A
        for raw_state, mass in enumerate(raw_next):
            dist[int(canon[raw_state])] += float(mass)
        total = dist.sum()
        if total <= 0:
            dist[:] = 0.0
            dist[self.unknown_state] = 1.0
            return dist
        return dist / total


class BiHMM:
    """Bi-Layer HMM: producer a-HMMs + input-conditioned consumer b-HMM.

    Args:
        n_categories: category alphabet size shared by both layers.
        n_consumer_states: ``N^(b)``, hidden states of the consumer layer.
        n_producer_states: ``N^(a)``, hidden states of each producer model.
        min_producer_sequence: minimum creation-history length to train a
            producer model.
        seed: base seed for both layers.
    """

    def __init__(
        self,
        n_categories: int,
        n_consumer_states: int = 3,
        n_producer_states: int = 3,
        min_producer_sequence: int = 3,
        seed: int = 0,
    ) -> None:
        self.n_categories = int(n_categories)
        self.producer_layer = ProducerLayer(
            n_categories,
            n_states=n_producer_states,
            min_sequence_length=min_producer_sequence,
            seed=seed,
        )
        self.consumer_model = InputConditionedHMM(
            n_states=n_consumer_states,
            n_symbols=n_categories,
            n_inputs=self.producer_layer.n_input_symbols,
            seed=seed + 104729,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def z_trace(self, consumer_sequence: Sequence[tuple[int, object]]) -> np.ndarray:
        """Producer-state trace for a consumer ``(category, item_id)`` sequence."""
        return np.asarray(
            [self.producer_layer.state_of_item(item_id) for _, item_id in consumer_sequence],
            dtype=np.int64,
        )

    def lagged_z_trace(self, consumer_sequence: Sequence[tuple[int, object]]) -> np.ndarray:
        """The b-HMM input trace: producer state of the *previous* item.

        Step 0 has no previous item and receives the UNKNOWN symbol.
        """
        z = self.z_trace(consumer_sequence)
        lagged = np.empty_like(z)
        if len(z):
            lagged[0] = self.producer_layer.unknown_state
            lagged[1:] = z[:-1]
        return lagged

    @staticmethod
    def _categories(consumer_sequence: Sequence[tuple[int, object]]) -> np.ndarray:
        return np.asarray([int(cat) for cat, _ in consumer_sequence], dtype=np.int64)

    def fit(
        self,
        producer_sequences: Mapping[object, Sequence[tuple[object, int]]],
        consumer_sequences: Sequence[Sequence[tuple[int, object]]],
        n_iter: int = 30,
        tol: float = 1e-4,
    ) -> FitResult:
        """Train the a-HMM layer, decode Z traces, then train the b-HMM.

        Args:
            producer_sequences: producer id -> ordered ``(item_id, category)``
                creations.
            consumer_sequences: one ``(category, item_id)`` browsing sequence
                per consumer (or several per consumer).
        """
        self.producer_layer.fit(producer_sequences, n_iter=n_iter, tol=tol)
        pairs = []
        for seq in consumer_sequences:
            if not seq:
                continue
            pairs.append((self._categories(seq), self.lagged_z_trace(seq)))
        if not pairs:
            raise ValueError("no non-empty consumer sequences supplied")
        return self.consumer_model.fit(pairs, n_iter=n_iter, tol=tol)

    def fit_consumers_only(
        self,
        consumer_sequences: Sequence[Sequence[tuple[int, object]]],
        n_iter: int = 30,
        tol: float = 1e-4,
        shrinkage: float = 0.3,
    ) -> FitResult:
        """Retrain only the b-HMM layer, reusing the trained producer layer.

        Used when one shared producer layer backs many per-user (or
        per-block) consumer models.  ``shrinkage`` is the coupling-strength
        regularizer of :meth:`InputConditionedHMM.fit` (1.0 pools all
        producer states — effectively a single-layer HMM).
        """
        pairs = []
        for seq in consumer_sequences:
            if not seq:
                continue
            pairs.append((self._categories(seq), self.lagged_z_trace(seq)))
        if not pairs:
            raise ValueError("no non-empty consumer sequences supplied")
        return self.consumer_model.fit(pairs, n_iter=n_iter, tol=tol, shrinkage=shrinkage)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_next_distribution(
        self,
        consumer_sequence: Sequence[tuple[int, object]],
    ) -> np.ndarray:
        """Distribution over the consumer's next browsed category.

        The transition into the next step is conditioned on the producer
        hidden state of the *last browsed item* (the lagged z-trace), which
        is fully known — this is the producer-dependency signal the single-
        layer HMM cannot see.
        """
        if not consumer_sequence:
            return self.consumer_model.prior_distribution()
        obs = self._categories(consumer_sequence)
        inp = self.lagged_z_trace(consumer_sequence)
        next_input = self.producer_layer.state_of_item(consumer_sequence[-1][1])
        return self.consumer_model.predict_next_distribution(obs, inp, next_input)

    def predict_category_probability(
        self,
        consumer_sequence: Sequence[tuple[int, object]],
        category: int,
    ) -> float:
        """``p(c | u^c)`` for a single category — the Eq. 1 / Eq. 4 term."""
        if not (0 <= category < self.n_categories):
            raise ValueError(f"category {category} outside [0, {self.n_categories})")
        dist = self.predict_next_distribution(consumer_sequence)
        return float(max(dist[category], PROB_FLOOR))

    def predict_top_k(
        self,
        consumer_sequence: Sequence[tuple[int, object]],
        k: int,
    ) -> list[int]:
        """Top-``k`` predicted next categories, most likely first."""
        dist = self.predict_next_distribution(consumer_sequence)
        k = min(k, self.n_categories)
        order = np.argsort(-dist, kind="stable")
        return [int(c) for c in order[:k]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BiHMM(n_categories={self.n_categories}, "
            f"consumer_states={self.consumer_model.n_states}, "
            f"producer_states={self.producer_layer.n_states}, "
            f"trained_producers={len(self.producer_layer.models)})"
        )
