"""Classic discrete-observation Hidden Markov Model.

This module implements the HMM machinery the paper builds on:

- scaled forward/backward passes (Rabiner-style scaling, numerically stable
  for long sequences);
- multi-sequence Baum-Welch parameter estimation ("We use Baum-Welch
  algorithm [32] to learn all three parameters", Sec. IV-A);
- Viterbi decoding ("its associated hidden state is obtained using Viterbi
  Algorithm [12]", Sec. IV-A);
- next-observation prediction used both for the single-layer-HMM comparison
  in Fig. 5 and as a building block of the BiHMM.

The parametrization follows the paper's notation: ``lambda = <pi, A, B>``
with ``A[i, j] = p(state_j | state_i)`` and ``B[j, m] = p(symbol_m | state_j)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hmm.utils import (
    PROB_FLOOR,
    normalize_rows,
    random_stochastic_matrix,
    random_stochastic_vector,
    validate_sequences,
)


@dataclass
class FitResult:
    """Outcome of a Baum-Welch fit.

    Attributes:
        log_likelihoods: total training log-likelihood after each iteration.
        converged: whether the relative improvement dropped below ``tol``
            before ``n_iter`` iterations were exhausted.
        n_iter: number of iterations actually performed.
    """

    log_likelihoods: list[float] = field(default_factory=list)
    converged: bool = False
    n_iter: int = 0

    @property
    def final_log_likelihood(self) -> float:
        if not self.log_likelihoods:
            return float("-inf")
        return self.log_likelihoods[-1]


class DiscreteHMM:
    """Discrete HMM with scaled forward/backward and Baum-Welch training.

    Args:
        n_states: number of hidden states ``N``.
        n_symbols: size of the observation alphabet ``M`` (item categories
            in the paper).
        seed: seed for the random initialization of ``pi``, ``A`` and ``B``.

    The model is usable immediately after construction (random parameters)
    but is normally trained with :meth:`fit`.
    """

    def __init__(self, n_states: int, n_symbols: int, seed: int | None = 0) -> None:
        if n_states < 1:
            raise ValueError(f"n_states must be >= 1, got {n_states}")
        if n_symbols < 1:
            raise ValueError(f"n_symbols must be >= 1, got {n_symbols}")
        self.n_states = int(n_states)
        self.n_symbols = int(n_symbols)
        rng = np.random.default_rng(seed)
        self.pi = random_stochastic_vector(self.n_states, rng)
        self.A = random_stochastic_matrix(self.n_states, self.n_states, rng)
        self.B = random_stochastic_matrix(self.n_states, self.n_symbols, rng)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _forward(self, seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Scaled forward pass.

        Returns ``(alpha_hat, scales)`` where ``alpha_hat[t]`` is the
        normalized forward vector and ``scales[t]`` the per-step scaling
        factor; ``sum(log(scales))`` equals the sequence log-likelihood.
        """
        T = len(seq)
        alpha = np.zeros((T, self.n_states))
        scales = np.zeros(T)
        alpha[0] = self.pi * self.B[:, seq[0]]
        scales[0] = max(alpha[0].sum(), PROB_FLOOR)
        alpha[0] /= scales[0]
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.A) * self.B[:, seq[t]]
            scales[t] = max(alpha[t].sum(), PROB_FLOOR)
            alpha[t] /= scales[t]
        return alpha, scales

    def _backward(self, seq: np.ndarray, scales: np.ndarray) -> np.ndarray:
        """Scaled backward pass sharing the forward scaling factors."""
        T = len(seq)
        beta = np.zeros((T, self.n_states))
        beta[T - 1] = 1.0
        for t in range(T - 2, -1, -1):
            beta[t] = (self.A * self.B[:, seq[t + 1]]) @ beta[t + 1]
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(self, sequence) -> float:
        """Log-probability of one observation sequence under the model."""
        seq = validate_sequences([sequence], self.n_symbols)[0]
        _, scales = self._forward(seq)
        return float(np.sum(np.log(scales)))

    def total_log_likelihood(self, sequences) -> float:
        """Sum of :meth:`log_likelihood` over several sequences."""
        return float(sum(self.log_likelihood(seq) for seq in sequences))

    def state_posteriors(self, sequence) -> np.ndarray:
        """Posterior ``p(state_t | sequence)`` for every step (gamma)."""
        seq = validate_sequences([sequence], self.n_symbols)[0]
        alpha, scales = self._forward(seq)
        beta = self._backward(seq, scales)
        gamma = alpha * beta
        gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), PROB_FLOOR)
        return gamma

    def filter_state(self, sequence) -> np.ndarray:
        """Filtered distribution ``p(state_T | observations up to T)``."""
        seq = validate_sequences([sequence], self.n_symbols)[0]
        alpha, _ = self._forward(seq)
        return alpha[-1] / max(alpha[-1].sum(), PROB_FLOOR)

    def viterbi(self, sequence) -> np.ndarray:
        """Most-likely hidden state sequence (log-space Viterbi)."""
        seq = validate_sequences([sequence], self.n_symbols)[0]
        T = len(seq)
        log_pi = np.log(np.maximum(self.pi, PROB_FLOOR))
        log_A = np.log(np.maximum(self.A, PROB_FLOOR))
        log_B = np.log(np.maximum(self.B, PROB_FLOOR))
        delta = np.zeros((T, self.n_states))
        psi = np.zeros((T, self.n_states), dtype=np.int64)
        delta[0] = log_pi + log_B[:, seq[0]]
        for t in range(1, T):
            trans = delta[t - 1][:, None] + log_A
            psi[t] = np.argmax(trans, axis=0)
            delta[t] = trans[psi[t], np.arange(self.n_states)] + log_B[:, seq[t]]
        states = np.zeros(T, dtype=np.int64)
        states[T - 1] = int(np.argmax(delta[T - 1]))
        for t in range(T - 2, -1, -1):
            states[t] = psi[t + 1][states[t + 1]]
        return states

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_next_distribution(self, sequence) -> np.ndarray:
        """Distribution over the next observation given a history.

        ``p(o_{T+1} | o_1..o_T) = sum_{i,j} alpha_T(i) A[i,j] B[j, o]``.
        This is the quantity the paper uses as ``p(c | u^c)`` (Eq. 1) when
        the model is the single-layer HMM.
        """
        seq = validate_sequences([sequence], self.n_symbols)[0]
        alpha, _ = self._forward(seq)
        state_now = alpha[-1] / max(alpha[-1].sum(), PROB_FLOOR)
        next_state = state_now @ self.A
        dist = next_state @ self.B
        return dist / max(dist.sum(), PROB_FLOOR)

    def predict_top_k(self, sequence, k: int) -> list[int]:
        """Top-``k`` most likely next observations, most likely first."""
        dist = self.predict_next_distribution(sequence)
        k = min(k, self.n_symbols)
        order = np.argsort(-dist, kind="stable")
        return [int(s) for s in order[:k]]

    def prior_distribution(self) -> np.ndarray:
        """Next-observation distribution with no history (from ``pi``)."""
        dist = self.pi @ self.B
        return dist / max(dist.sum(), PROB_FLOOR)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, sequences, n_iter: int = 50, tol: float = 1e-4) -> FitResult:
        """Multi-sequence Baum-Welch (EM) training.

        Expected sufficient statistics are accumulated across all sequences
        each iteration; iteration stops once the relative improvement in
        total log-likelihood drops below ``tol``.
        """
        seqs = validate_sequences(sequences, self.n_symbols)
        result = FitResult()
        prev_ll = float("-inf")
        for iteration in range(n_iter):
            pi_acc = np.zeros(self.n_states)
            trans_acc = np.zeros((self.n_states, self.n_states))
            emit_acc = np.zeros((self.n_states, self.n_symbols))
            total_ll = 0.0
            for seq in seqs:
                alpha, scales = self._forward(seq)
                beta = self._backward(seq, scales)
                total_ll += float(np.sum(np.log(scales)))
                gamma = alpha * beta
                gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), PROB_FLOOR)
                pi_acc += gamma[0]
                np.add.at(emit_acc.T, seq, gamma)
                T = len(seq)
                for t in range(T - 1):
                    xi = (
                        alpha[t][:, None]
                        * self.A
                        * self.B[:, seq[t + 1]][None, :]
                        * beta[t + 1][None, :]
                    )
                    denom = xi.sum()
                    if denom > 0:
                        trans_acc += xi / denom
            self.pi = normalize_rows(pi_acc)
            if self.n_states > 1:
                self.A = normalize_rows(trans_acc)
            self.B = normalize_rows(emit_acc)
            result.log_likelihoods.append(total_ll)
            result.n_iter = iteration + 1
            if np.isfinite(prev_ll):
                denom = max(abs(prev_ll), 1.0)
                if (total_ll - prev_ll) / denom < tol:
                    result.converged = True
                    break
            prev_ll = total_ll
        return result

    # ------------------------------------------------------------------
    # Serialization helpers (used by the index for persistence-style tests)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict snapshot of the parameters (JSON friendly)."""
        return {
            "n_states": self.n_states,
            "n_symbols": self.n_symbols,
            "pi": self.pi.tolist(),
            "A": self.A.tolist(),
            "B": self.B.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DiscreteHMM":
        model = cls(payload["n_states"], payload["n_symbols"], seed=None)
        model.pi = normalize_rows(np.asarray(payload["pi"], dtype=float))
        model.A = normalize_rows(np.asarray(payload["A"], dtype=float))
        model.B = normalize_rows(np.asarray(payload["B"], dtype=float))
        return model

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteHMM(n_states={self.n_states}, n_symbols={self.n_symbols})"
