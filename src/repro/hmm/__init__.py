"""Hidden Markov Model substrate for the ssRec reproduction.

This subpackage implements, from scratch and in pure NumPy:

- :class:`~repro.hmm.base.DiscreteHMM` — a classic discrete-observation HMM
  with scaled forward/backward, multi-sequence Baum-Welch training, Viterbi
  decoding, and next-observation prediction.  This is the "single-layer HMM"
  the paper compares against in Fig. 5, and also the a-HMM layer used to
  model producers.
- :class:`~repro.hmm.conditioned.InputConditionedHMM` — an HMM whose
  transition and emission matrices are conditioned on an observed input
  symbol per step.  This realizes the paper's composite-state reformulation
  of the b-HMM: the composite state ``U' = (U_i, Z_k)`` has an observed
  component ``Z_k`` (the producer hidden state decoded by the a-HMM), so the
  b-HMM is an HMM over ``U`` conditioned on the ``Z`` trace.
- :class:`~repro.hmm.bihmm.BiHMM` — the paper's Bi-Layer HMM: an a-HMM per
  producer plus the conditioned b-HMM per consumer group.
"""

from repro.hmm.base import DiscreteHMM, FitResult
from repro.hmm.conditioned import InputConditionedHMM
from repro.hmm.bihmm import BiHMM, ProducerLayer
from repro.hmm.utils import (
    log_sum_exp,
    normalize_rows,
    random_stochastic_matrix,
    random_stochastic_vector,
)

__all__ = [
    "DiscreteHMM",
    "FitResult",
    "InputConditionedHMM",
    "BiHMM",
    "ProducerLayer",
    "log_sum_exp",
    "normalize_rows",
    "random_stochastic_matrix",
    "random_stochastic_vector",
]
