"""Observability CLI: scrape a live server, summarize or diff dumps.

::

    python -m repro.obs scrape 127.0.0.1:7431                # JSON dump
    python -m repro.obs scrape 127.0.0.1:7431 --prometheus   # text format
    python -m repro.obs summarize obs.json                   # schema check + table
    python -m repro.obs diff before.json after.json          # what moved

``summarize`` and ``diff`` accept either a bare registry dump
(:meth:`~repro.obs.metrics.MetricsRegistry.to_dict`) or the server's
full ``metrics``-route payload (which nests the dump under
``"registry"``).  Both validate the dump against the registry schema
and exit non-zero on a malformed file — the CI server-smoke job uses
``summarize`` as its metrics-route schema gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.metrics import LatencyHistogram, MetricsRegistry, ObsSchemaError


def _load_registry(path: str) -> MetricsRegistry:
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ObsSchemaError(f"{path}: unreadable: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsSchemaError(f"{path}: malformed JSON: {exc}") from exc
    if isinstance(data, dict) and "registry" in data:
        data = data["registry"]  # metrics-route payload wrapping the dump
    return MetricsRegistry.from_dict(data)


def _metric_label(name: str, labels: dict) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{rendered}}}"


def _summarize(registry: MetricsRegistry) -> str:
    lines = []
    counters = registry.counters()
    if counters:
        lines.append("counters:")
        lines.extend(
            f"  {_metric_label(c.name, c.labels):<48} {c.value}" for c in counters
        )
    gauges = registry.gauges()
    if gauges:
        lines.append("gauges:")
        lines.extend(
            f"  {_metric_label(g.name, g.labels):<48} {g.value:g}" for g in gauges
        )
    histograms = registry.histograms()
    if histograms:
        lines.append("histograms:")
        for name, labels, hist in histograms:
            summary = hist.summary_ms()
            lines.append(
                f"  {_metric_label(name, labels):<48} count={hist.count:<8} "
                f"mean={summary['mean_ms']:8.3f}ms p50={summary['p50_ms']:8.3f}ms "
                f"p95={summary['p95_ms']:8.3f}ms p99={summary['p99_ms']:8.3f}ms"
            )
    if not lines:
        lines.append("(empty registry)")
    return "\n".join(lines)


def _diff(before: MetricsRegistry, after: MetricsRegistry) -> str:
    lines = []
    before_counters = {
        (c.name, tuple(sorted(c.labels.items()))): c.value for c in before.counters()
    }
    after_counters = {
        (c.name, tuple(sorted(c.labels.items()))): c.value for c in after.counters()
    }
    counter_keys = sorted(set(before_counters) | set(after_counters))
    if counter_keys:
        lines.append("counters (delta):")
        for key in counter_keys:
            name, labels = key
            delta = after_counters.get(key, 0) - before_counters.get(key, 0)
            lines.append(f"  {_metric_label(name, dict(labels)):<48} {delta:+d}")

    def hist_index(registry: MetricsRegistry) -> dict:
        return {
            (name, tuple(sorted(labels.items()))): hist
            for name, labels, hist in registry.histograms()
        }

    before_hists, after_hists = hist_index(before), hist_index(after)
    hist_keys = sorted(set(before_hists) | set(after_hists))
    if hist_keys:
        lines.append("histograms (before -> after):")
        empty = LatencyHistogram()
        for key in hist_keys:
            name, labels = key
            b = before_hists.get(key, empty)
            a = after_hists.get(key, empty)
            lines.append(
                f"  {_metric_label(name, dict(labels)):<48} "
                f"count={b.count}->{a.count} "
                f"p50={b.quantile(50) * 1e3:.3f}->{a.quantile(50) * 1e3:.3f}ms "
                f"p95={b.quantile(95) * 1e3:.3f}->{a.quantile(95) * 1e3:.3f}ms"
            )
    if not lines:
        lines.append("(both registries empty)")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Scrape, summarize or diff repro.obs metrics dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    scrape = sub.add_parser("scrape", help="fetch a live server's metrics route")
    scrape.add_argument("address", metavar="HOST:PORT")
    scrape.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus text format instead of the JSON dump",
    )
    summarize = sub.add_parser(
        "summarize", help="schema-check one dump and print a readable table"
    )
    summarize.add_argument("path")
    diff = sub.add_parser("diff", help="compare two dumps metric by metric")
    diff.add_argument("before")
    diff.add_argument("after")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "scrape":
            from repro.serve.client import RecommenderClient  # local: keeps obs light

            host, _, port = args.address.rpartition(":")
            with RecommenderClient(host or "127.0.0.1", int(port)) as client:
                payload = client.metrics()
            if args.prometheus:
                print(payload.get("prometheus", ""), end="")
            else:
                print(json.dumps(payload.get("registry", {}), indent=2, sort_keys=True))
            return 0
        if args.command == "summarize":
            print(_summarize(_load_registry(args.path)))
            return 0
        if args.command == "diff":
            print(_diff(_load_registry(args.before), _load_registry(args.after)))
            return 0
    except ObsSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(args.command)  # pragma: no cover - argparse restricts


if __name__ == "__main__":
    sys.exit(main())
