"""Mergeable metrics primitives: counters, gauges, latency histograms.

The registry is the one telemetry vocabulary every layer shares — the
exec operator pipeline, the shard runtime, the process worker pool and
the socket server all record into :class:`MetricsRegistry` instances,
and because every primitive **merges**, a registry can cross a process
or wire boundary as a plain JSON dump and be folded into an aggregate
view on the other side (shard workers ship theirs back over the
existing reply queue; the server's ``metrics`` route merges its own
with the owner's).

Design constraints, in order:

- **dependency-free** — stdlib only, so ``repro.obs`` can be imported
  by every layer (including spawn-started worker processes) without
  adding a dependency edge;
- **mergeable** — ``merge(a, b)`` is associative and commutative for
  counters and histograms (the property tests hold it to that), so
  aggregation order across shards/processes cannot change the answer;
- **bounded** — histograms are fixed-bucket (geometric bounds), so a
  registry's size is independent of traffic volume, unlike the exact
  sample lists :class:`~repro.eval.metrics.TimingStats` keeps.

Quantiles come in two flavors: :func:`exact_percentile` over raw sample
lists (bit-compatible with ``numpy.percentile``'s default linear
interpolation — the one percentile implementation ``TimingStats``, the
stream engine and the eval harness now share), and the histogram's
bucket-interpolated :meth:`LatencyHistogram.quantile` for merged
cross-process views where raw samples were never shipped.

Metric naming scheme (see docs/ARCHITECTURE.md §12): dotted lowercase
``<layer>.<quantity>[_<unit>]`` — e.g. ``server.requests``,
``shard.item_seconds`` — with dimensions as labels, never baked into
the name (``shard="3"``, ``op="recommend"``).  The Prometheus
exposition sanitizes dots to underscores.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from collections.abc import Sequence


class ObsSchemaError(ValueError):
    """A serialized registry dump is malformed or incompatible."""


def exact_percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values``, exactly.

    Linear interpolation between closest ranks — the same estimator as
    ``numpy.percentile``'s default method, so callers that migrated off
    NumPy (``TimingStats``, ``EngineReport``) report bit-identical
    summaries.  Empty input yields 0.0 (the harness convention).
    """
    if not values:
        return 0.0
    q = float(q)
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    position = (len(data) - 1) * (q / 100.0)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return data[lower]
    fraction = position - lower
    low, high = data[lower], data[upper]
    # NumPy's lerp switches anchors at t=0.5 for floating-point symmetry;
    # mirror it so migrated callers report bit-identical summaries.
    if fraction >= 0.5:
        return high - (high - low) * (1.0 - fraction)
    return low + (high - low) * fraction


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (merge = sum)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict | None = None, value: int = 0) -> None:
        self.name = str(name)
        self.labels = dict(labels or {})
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += int(n)


class Gauge:
    """A point-in-time value (merge = last writer wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict | None = None, value: float = 0.0) -> None:
        self.name = str(name)
        self.labels = dict(labels or {})
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)


def geometric_bounds(
    start: float = 1e-6, stop: float = 100.0, per_decade: int = 4
) -> tuple[float, ...]:
    """Geometric bucket upper bounds from ``start`` to ``stop`` seconds."""
    n = int(round(math.log10(stop / start) * per_decade))
    return tuple(start * 10 ** (i / per_decade) for i in range(n + 1))


#: Default latency bounds: 1µs .. 100s, 4 buckets per decade (33 bounds
#: plus the implicit overflow bucket).  Every histogram built without
#: explicit bounds shares this tuple, so they all merge.
DEFAULT_LATENCY_BOUNDS = geometric_bounds()


class LatencyHistogram:
    """Fixed-bucket latency accounting in seconds.

    Bucket ``i`` counts samples ``<= bounds[i]`` (and above the previous
    bound); one overflow bucket catches everything beyond the last
    bound.  Alongside the buckets the exact ``count``/``sum``/``min``/
    ``max`` are kept, so means are exact and quantile estimates are
    clamped to the observed range.  Two histograms with equal bounds
    merge by adding buckets — associative and commutative by
    construction.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        self.bounds = tuple(
            float(b) for b in (DEFAULT_LATENCY_BOUNDS if bounds is None else bounds)
        )
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, seconds: float, n: int = 1) -> None:
        """Record ``n`` samples of ``seconds`` each (``n`` amortizes a
        batch's wall clock over its items in one call)."""
        if n <= 0:
            return
        seconds = float(seconds)
        self.counts[bisect_left(self.bounds, seconds)] += n
        self.count += n
        self.sum += seconds * n
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated ``q``-th percentile (0..100), in seconds.

        Linear interpolation inside the covering bucket, clamped to the
        observed ``[min, max]`` so a wide bucket never reports a latency
        no sample reached.  Monotone in ``q``.
        """
        if self.count == 0:
            return 0.0
        q = float(q)
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = (q / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - target <= count always lands above

    def summary_ms(self) -> dict[str, float]:
        """Mean/p50/p95/p99 in milliseconds (the harness summary shape)."""
        return {
            "mean_ms": self.mean * 1000.0,
            "p50_ms": self.quantile(50) * 1000.0,
            "p95_ms": self.quantile(95) * 1000.0,
            "p99_ms": self.quantile(99) * 1000.0,
        }

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        for bound_name in ("min", "max"):
            theirs = getattr(other, bound_name)
            if theirs is None:
                continue
            ours = getattr(self, bound_name)
            picker = min if bound_name == "min" else max
            setattr(self, bound_name, theirs if ours is None else picker(ours, theirs))
        return self

    def copy(self) -> "LatencyHistogram":
        fresh = LatencyHistogram(self.bounds)
        fresh.merge(self)
        return fresh

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: object) -> "LatencyHistogram":
        if not isinstance(data, dict):
            raise ObsSchemaError(f"histogram must be an object, got {type(data).__name__}")
        bounds = data.get("bounds")
        counts = data.get("counts")
        if not isinstance(bounds, list) or not all(
            isinstance(b, (int, float)) and not isinstance(b, bool) for b in bounds
        ):
            raise ObsSchemaError("histogram.bounds must be an array of numbers")
        if not isinstance(counts, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0 for c in counts
        ):
            raise ObsSchemaError("histogram.counts must be an array of non-negative ints")
        if len(counts) != len(bounds) + 1:
            raise ObsSchemaError(
                f"histogram.counts must have len(bounds)+1 entries, got "
                f"{len(counts)} for {len(bounds)} bounds"
            )
        try:
            hist = cls(bounds)
        except ValueError as exc:
            raise ObsSchemaError(str(exc)) from exc
        hist.counts = list(counts)
        hist.count = _require_count(data.get("count"), "histogram.count")
        hist.sum = _require_number(data.get("sum"), "histogram.sum")
        if sum(counts) != hist.count:
            raise ObsSchemaError("histogram.count does not match the bucket total")
        for bound_name in ("min", "max"):
            value = data.get(bound_name)
            if value is not None:
                value = _require_number(value, f"histogram.{bound_name}")
            elif hist.count:
                raise ObsSchemaError(
                    f"histogram.{bound_name} must be set on a non-empty histogram"
                )
            setattr(hist, bound_name, value)
        return hist


def _require_count(value: object, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ObsSchemaError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def _require_number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ObsSchemaError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ObsSchemaError(f"{name} must be finite, got {value!r}")
    return value


def _require_labels(value: object, name: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in value.items()
    ):
        raise ObsSchemaError(f"{name} must map strings to strings, got {value!r}")
    return dict(value)


def _require_metric_name(value: object, name: str) -> str:
    if not isinstance(value, str) or not value:
        raise ObsSchemaError(f"{name} must be a non-empty string, got {value!r}")
    return value


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Primitives are keyed by ``(name, labels)``; :meth:`counter`,
    :meth:`gauge` and :meth:`histogram` get-or-create, so recording
    sites never race a registration step.  :meth:`merge` folds another
    registry (or its :meth:`to_dict` dump, via :meth:`from_dict`) into
    this one — the cross-process aggregation primitive.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, LatencyHistogram] = {}
        # Histograms carry no name/labels themselves; the registry keeps
        # the association for serialization.
        self._histogram_meta: dict[tuple, tuple[str, dict]] = {}

    # ------------------------------------------------------------------
    # Recording surface
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (str(name), _label_key(labels))
        entry = self._counters.get(key)
        if entry is None:
            entry = self._counters[key] = Counter(name, labels)
        return entry

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (str(name), _label_key(labels))
        entry = self._gauges.get(key)
        if entry is None:
            entry = self._gauges[key] = Gauge(name, labels)
        return entry

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None, **labels: str
    ) -> LatencyHistogram:
        key = (str(name), _label_key(labels))
        entry = self._histograms.get(key)
        if entry is None:
            entry = self._histograms[key] = LatencyHistogram(bounds)
            self._histogram_meta[key] = (str(name), dict(labels))
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> list[Counter]:
        return [self._counters[key] for key in sorted(self._counters)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[key] for key in sorted(self._gauges)]

    def histograms(self) -> list[tuple[str, dict, LatencyHistogram]]:
        out = []
        for key in sorted(self._histograms):
            name, labels = self._histogram_meta[key]
            out.append((name, dict(labels), self._histograms[key]))
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (associative, commutative
        for counters and histograms; gauges are last-writer-wins)."""
        for counter in other.counters():
            self.counter(counter.name, **counter.labels).inc(counter.value)
        for gauge in other.gauges():
            self.gauge(gauge.name, **gauge.labels).set(gauge.value)
        for name, labels, hist in other.histograms():
            self.histogram(name, bounds=hist.bounds, **labels).merge(hist)
        return self

    def to_dict(self) -> dict:
        return {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for c in self.counters()
            ],
            "gauges": [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for g in self.gauges()
            ],
            "histograms": [
                {"name": name, "labels": labels, **hist.to_dict()}
                for name, labels, hist in self.histograms()
            ],
        }

    @classmethod
    def from_dict(cls, data: object) -> "MetricsRegistry":
        """Parse one :meth:`to_dict` dump, validating every field — the
        schema check the CLI and the CI metrics-route gate rely on."""
        if not isinstance(data, dict):
            raise ObsSchemaError(f"registry dump must be an object, got {type(data).__name__}")
        registry = cls()
        for section in ("counters", "gauges", "histograms"):
            entries = data.get(section, [])
            if not isinstance(entries, list):
                raise ObsSchemaError(f"registry.{section} must be an array")
            for entry in entries:
                if not isinstance(entry, dict):
                    raise ObsSchemaError(f"registry.{section}[*] must be an object")
                name = _require_metric_name(entry.get("name"), f"{section}[*].name")
                labels = _require_labels(entry.get("labels"), f"{section}[*].labels")
                if section == "counters":
                    registry.counter(name, **labels).inc(
                        _require_count(entry.get("value"), f"{section}[{name!r}].value")
                    )
                elif section == "gauges":
                    registry.gauge(name, **labels).set(
                        _require_number(entry.get("value"), f"{section}[{name!r}].value")
                    )
                else:
                    hist = LatencyHistogram.from_dict(entry)
                    registry.histogram(name, bounds=hist.bounds, **labels).merge(hist)
        return registry

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4).

        Dotted metric names sanitize to underscores; histograms emit the
        standard cumulative ``_bucket{le=...}`` series plus ``_sum`` and
        ``_count``.
        """
        lines: list[str] = []
        by_name: dict[str, list[Counter]] = {}
        for counter in self.counters():
            by_name.setdefault(counter.name, []).append(counter)
        for name, entries in by_name.items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} counter")
            for entry in entries:
                lines.append(f"{metric}{_prometheus_labels(entry.labels)} {entry.value}")
        gauge_groups: dict[str, list[Gauge]] = {}
        for gauge in self.gauges():
            gauge_groups.setdefault(gauge.name, []).append(gauge)
        for name, entries in gauge_groups.items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            for entry in entries:
                lines.append(
                    f"{metric}{_prometheus_labels(entry.labels)} {_prometheus_float(entry.value)}"
                )
        hist_groups: dict[str, list[tuple[dict, LatencyHistogram]]] = {}
        for name, labels, hist in self.histograms():
            hist_groups.setdefault(name, []).append((labels, hist))
        for name, entries in hist_groups.items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            for labels, hist in entries:
                cumulative = 0
                for bound, bucket_count in zip(hist.bounds, hist.counts):
                    cumulative += bucket_count
                    le_labels = {**labels, "le": _prometheus_float(bound)}
                    lines.append(
                        f"{metric}_bucket{_prometheus_labels(le_labels)} {cumulative}"
                    )
                inf_labels = {**labels, "le": "+Inf"}
                lines.append(f"{metric}_bucket{_prometheus_labels(inf_labels)} {hist.count}")
                lines.append(
                    f"{metric}_sum{_prometheus_labels(labels)} {_prometheus_float(hist.sum)}"
                )
                lines.append(f"{metric}_count{_prometheus_labels(labels)} {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _prometheus_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _prometheus_labels(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        label = _PROM_LABEL_INVALID.sub("_", str(key))
        value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{label}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prometheus_float(value: float) -> str:
    return repr(float(value))
