"""The exec-pipeline hook seam: spans and profiles around operators.

:func:`active_hooks` is the single question the compiled plan asks per
request: *is anybody watching?*  With no active trace and the profiler
disabled it answers ``None`` in two reads, and
:meth:`~repro.exec.compile.CompiledPlan.run_item` takes its original
tight loop — the guarantee behind bit-identical disabled-path
conformance and negligible disabled overhead.  When a trace is active
(or ``REPRO_PROFILE=1``), each operator runs inside an
:class:`_OperatorScope` that records an ``exec.<OpName>`` span and/or a
``repro;<plan>;<op>`` profile sample.

This module deliberately does not import :mod:`repro.exec` — the seam
points one way (exec asks obs), keeping obs dependency-free.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.obs.profile import PROFILER, OperatorProfiler
from repro.obs.trace import Trace, current_trace, span


class _OperatorScope:
    """Context manager wrapping one operator invocation."""

    __slots__ = ("_span", "_profiler", "_stack", "_start", "_alloc_start")

    def __init__(
        self,
        traced: bool,
        profiler: OperatorProfiler | None,
        plan_name: str,
        op_name: str,
    ) -> None:
        self._span = span(f"exec.{op_name}", plan=plan_name) if traced else None
        self._profiler = profiler
        self._stack = ("repro", plan_name, op_name) if profiler is not None else ()

    def __enter__(self) -> "_OperatorScope":
        if self._span is not None:
            self._span.__enter__()
        if self._profiler is not None:
            self._alloc_start = (
                tracemalloc.get_traced_memory()[0] if tracemalloc.is_tracing() else 0
            )
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._profiler is not None:
            seconds = time.perf_counter() - self._start
            alloc = (
                tracemalloc.get_traced_memory()[0] - self._alloc_start
                if tracemalloc.is_tracing()
                else 0
            )
            self._profiler.sample(self._stack, seconds, alloc)
        if self._span is not None:
            self._span.__exit__(*exc_info)
        return False


class ExecHooks:
    """The per-request hook bundle handed to the compiled plan."""

    __slots__ = ("trace", "profiler")

    def __init__(self, trace: Trace | None, profiler: OperatorProfiler | None) -> None:
        self.trace = trace
        self.profiler = profiler

    def operator(self, plan_name: str, op_name: str) -> _OperatorScope:
        """The scope to run one pipeline stage inside."""
        return _OperatorScope(self.trace is not None, self.profiler, plan_name, op_name)


def active_hooks() -> ExecHooks | None:
    """The hooks for this request, or ``None`` when nobody is watching.

    Called once per ``run_item``/``run_batch``; the ``None`` answer is
    the disabled fast path (one thread-local read plus one flag read).
    """
    trace = current_trace()
    profiler = PROFILER if PROFILER.enabled else None
    if trace is None and profiler is None:
        return None
    return ExecHooks(trace, profiler)
