"""Request tracing: one trace id, spans across threads and processes.

A :class:`Trace` collects **span dicts** — plain JSON-ready dicts, not
objects, because spans cross the shard-worker reply queue and the wire
protocol verbatim.  The active trace is thread-local: the server's
model thread, the fan-out worker threads and the shard worker
*processes* each install it with :func:`use_trace` (carrying the trace
id and the parent span id across the boundary via
:func:`trace_context`), so one served request assembles a single span
tree spanning every layer that touched it.

The hot-path contract: :func:`span` with **no active trace** returns a
shared no-op context manager — one thread-local read, no allocation —
so instrumented code paths (exec operators, shard serving) cost nothing
measurable when nobody is tracing.  Disabled-path conformance depends
on this being purely observational: spans never change what executes.

Span taxonomy (see docs/ARCHITECTURE.md §12): ``server.request`` (root,
one per traced request) → ``server.coalesce`` (queue wait) →
``server.batch`` / ``server.execute`` (model-thread execution) →
``exec.<OperatorName>`` (one per pipeline stage) → ``shard.recommend``
/ ``worker.<op>`` (per-shard work, in-process or cross-process) →
``shard.knn`` / ``shard.scan`` / ``shard.maintenance`` (inside a
shard).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator


def new_id() -> str:
    """A fresh 64-bit hex id for traces and spans."""
    return os.urandom(8).hex()


class Trace:
    """One request's span collection, safe to append from any thread."""

    __slots__ = ("trace_id", "_spans", "_lock")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = str(trace_id) if trace_id else new_id()
        self._spans: list[dict] = []
        self._lock = threading.Lock()

    def add(self, span_dict: dict) -> None:
        with self._lock:
            self._spans.append(span_dict)

    def extend(self, span_dicts) -> None:
        """Graft spans shipped back from another thread or process."""
        with self._lock:
            self._spans.extend(span_dicts)

    def spans(self) -> list[dict]:
        """Every recorded span, ordered by start time."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s["start"], s["name"]))

    def span_names(self) -> list[str]:
        return [span_dict["name"] for span_dict in self.spans()]

    def to_dict(self) -> dict:
        """The wire/reply shape: ``{"trace_id", "spans"}``."""
        return {"trace_id": self.trace_id, "spans": self.spans()}

    def tree(self) -> list[dict]:
        """Spans nested by parent id (roots first, children by start)."""
        return build_tree(self.spans())

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def build_tree(span_dicts: list[dict]) -> list[dict]:
    """Nest flat span dicts into parent/children trees.

    Spans whose parent never arrived (e.g. a worker's root when only the
    worker slice is inspected) surface as roots rather than vanishing.
    """
    nodes = {
        s["span_id"]: {**s, "children": []}
        for s in sorted(span_dicts, key=lambda s: (s["start"], s["name"]))
    }
    roots = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


# ----------------------------------------------------------------------
# Thread-local active-trace state
# ----------------------------------------------------------------------
_state = threading.local()


def current_trace() -> Trace | None:
    """The trace installed on this thread, or None."""
    return getattr(_state, "trace", None)


def current_parent_id() -> str | None:
    """The span id new spans on this thread would parent under."""
    return getattr(_state, "parent_id", None)


def trace_context() -> dict | None:
    """The ``{"trace_id", "parent_id"}`` dict to ship across a process
    boundary (None when nothing is being traced — the fast path)."""
    trace = getattr(_state, "trace", None)
    if trace is None:
        return None
    return {"trace_id": trace.trace_id, "parent_id": getattr(_state, "parent_id", None)}


@contextmanager
def use_trace(trace: Trace, parent_id: str | None = None) -> Iterator[Trace]:
    """Install ``trace`` as this thread's active trace.

    Re-entrant: the previous trace/parent are restored on exit, so
    nested installs (the sequential fan-out path) behave like a stack.
    """
    previous_trace = getattr(_state, "trace", None)
    previous_parent = getattr(_state, "parent_id", None)
    _state.trace = trace
    _state.parent_id = parent_id
    try:
        yield trace
    finally:
        _state.trace = previous_trace
        _state.parent_id = previous_parent


class _NoopSpan:
    """Shared do-nothing context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    __slots__ = ("_trace", "_name", "_tags", "span_id", "_start_wall",
                 "_start_perf", "_previous_parent")

    def __init__(self, trace: Trace, name: str, tags: dict) -> None:
        self._trace = trace
        self._name = name
        self._tags = tags

    def __enter__(self) -> "_LiveSpan":
        self.span_id = new_id()
        self._previous_parent = getattr(_state, "parent_id", None)
        _state.parent_id = self.span_id
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        _state.parent_id = self._previous_parent
        self._trace.add({
            "name": self._name,
            "span_id": self.span_id,
            "parent_id": self._previous_parent,
            "start": self._start_wall,
            "duration": time.perf_counter() - self._start_perf,
            "tags": self._tags,
        })
        return False


def span(name: str, **tags):
    """A context manager recording one span on the active trace.

    With no active trace this returns a shared no-op — the disabled-path
    cost is one thread-local read.  Tags are stringified at record time
    so span dicts stay JSON-clean across queues and the wire.
    """
    trace = getattr(_state, "trace", None)
    if trace is None:
        return _NOOP
    return _LiveSpan(trace, str(name), {k: str(v) for k, v in tags.items()})


def make_span(
    name: str,
    *,
    parent_id: str | None,
    start: float,
    duration: float,
    span_id: str | None = None,
    **tags,
) -> dict:
    """Build one span dict explicitly (for event-loop code that measures
    its own timestamps instead of entering a context manager)."""
    return {
        "name": str(name),
        "span_id": span_id or new_id(),
        "parent_id": parent_id,
        "start": float(start),
        "duration": float(duration),
        "tags": {k: str(v) for k, v in tags.items()},
    }
