"""Opt-in per-operator profiling: wall time and allocations, collapsed.

Set ``REPRO_PROFILE=1`` before starting a process and every exec
operator invocation is sampled — wall seconds always, allocated bytes
when ``tracemalloc`` is tracing (the profiler starts it on enable).  At
interpreter exit (or on an explicit :meth:`OperatorProfiler.dump`) the
aggregate is written as **collapsed-stack** files, the
``folded``-format input flamegraph tooling consumes::

    repro;scan-item;VectorizedScoreOp 184223        # wall microseconds
    repro;scan-item;VectorizedScoreOp 5242880       # bytes (.alloc file)

``REPRO_PROFILE_DIR`` picks the output directory (default: the working
directory); files are named per-pid so shard worker processes — which
inherit the environment and therefore profile themselves — never
clobber the parent's dump.

Disabled (the default), the cost is one attribute read per request in
:func:`repro.obs.hooks.active_hooks`; nothing is sampled, started or
registered.
"""

from __future__ import annotations

import atexit
import os
import threading
import tracemalloc
from pathlib import Path

#: Environment switch; any value other than empty/"0" enables profiling.
ENV_FLAG = "REPRO_PROFILE"
#: Output directory of the exit-time dump (default: os.getcwd()).
ENV_DIR = "REPRO_PROFILE_DIR"


class OperatorProfiler:
    """Aggregating sampler keyed by collapsed stack tuples."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = False
        self._samples: dict[tuple[str, ...], list] = {}
        self._lock = threading.Lock()
        self._dump_registered = False
        if enabled:
            self.enable()

    def enable(self) -> None:
        """Turn sampling on; starts tracemalloc and registers the
        exit-time dump exactly once."""
        self.enabled = True
        if not tracemalloc.is_tracing():
            tracemalloc.start()
        if not self._dump_registered:
            self._dump_registered = True
            atexit.register(self._dump_at_exit)

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    def sample(self, stack: tuple[str, ...], seconds: float, alloc_bytes: int = 0) -> None:
        """Fold one measurement into the aggregate for ``stack``."""
        with self._lock:
            entry = self._samples.get(stack)
            if entry is None:
                entry = self._samples[stack] = [0.0, 0, 0]
            entry[0] += float(seconds)
            entry[1] += max(0, int(alloc_bytes))
            entry[2] += 1

    @property
    def n_stacks(self) -> int:
        with self._lock:
            return len(self._samples)

    def snapshot(self) -> dict[tuple[str, ...], tuple[float, int, int]]:
        """``{stack: (wall_seconds, alloc_bytes, calls)}`` at this instant."""
        with self._lock:
            return {stack: tuple(entry) for stack, entry in self._samples.items()}

    def collapsed(self) -> str:
        """Wall time as collapsed stacks (microseconds per line)."""
        lines = [
            f"{';'.join(stack)} {max(1, round(entry[0] * 1e6))}"
            for stack, entry in sorted(self.snapshot().items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def collapsed_alloc(self) -> str:
        """Allocated bytes as collapsed stacks (bytes per line)."""
        lines = [
            f"{';'.join(stack)} {entry[1]}"
            for stack, entry in sorted(self.snapshot().items())
            if entry[1]
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, directory: str | os.PathLike | None = None) -> list[Path]:
        """Write the collapsed-stack files; returns the paths written.

        ``repro-profile-<pid>.collapsed`` always (wall µs); the
        companion ``.alloc.collapsed`` only when allocation data exists.
        """
        directory = Path(directory or os.environ.get(ENV_DIR) or os.getcwd())
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        wall_path = directory / f"repro-profile-{os.getpid()}.collapsed"
        wall_path.write_text(self.collapsed())
        written.append(wall_path)
        alloc = self.collapsed_alloc()
        if alloc:
            alloc_path = directory / f"repro-profile-{os.getpid()}.alloc.collapsed"
            alloc_path.write_text(alloc)
            written.append(alloc_path)
        return written

    def _dump_at_exit(self) -> None:  # pragma: no cover - interpreter teardown
        if self._samples:
            try:
                self.dump()
            except OSError:
                pass


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


#: The process-wide profiler every hook site samples into.  Constructed
#: from the environment so worker processes (which inherit it) profile
#: themselves without any plumbing.
PROFILER = OperatorProfiler(enabled=_env_enabled())
