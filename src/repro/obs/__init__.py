"""repro.obs — dependency-free observability: metrics, traces, profiles.

One subsystem answers "where did the milliseconds go?" across the whole
stack:

- :mod:`repro.obs.metrics` — mergeable counters/gauges/histograms in a
  :class:`MetricsRegistry`; shard workers ship dumps over their reply
  queue, the server's ``metrics`` route merges and exposes them
  (Prometheus text + JSON).
- :mod:`repro.obs.trace` — per-request trace ids and spans propagated
  across threads, worker processes and the wire protocol into one span
  tree per served request.
- :mod:`repro.obs.hooks` — the ``compile_plan`` seam wrapping every
  exec operator; answers ``None`` when nobody is watching, so the
  disabled path stays bit-identical and effectively free.
- :mod:`repro.obs.profile` — ``REPRO_PROFILE=1`` per-operator wall and
  allocation profiling dumped as flamegraph-compatible collapsed
  stacks.

``python -m repro.obs`` scrapes a live server's metrics route,
summarizes a dump, or diffs two dumps.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    ObsSchemaError,
    exact_percentile,
)
from repro.obs.trace import (
    Trace,
    build_tree,
    current_trace,
    span,
    trace_context,
    use_trace,
)
from repro.obs.hooks import ExecHooks, active_hooks
from repro.obs.profile import PROFILER, OperatorProfiler

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "ObsSchemaError",
    "exact_percentile",
    "Trace",
    "build_tree",
    "current_trace",
    "span",
    "trace_context",
    "use_trace",
    "ExecHooks",
    "active_hooks",
    "PROFILER",
    "OperatorProfiler",
]
