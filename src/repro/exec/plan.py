"""Execution plans: the one vocabulary every recommend path is named in.

The ssRec system answers exactly one logical query — entity-based top-k
matching (Eq. 1-4), optionally accelerated by the CPPse-index
(Algorithm 1) — but the repo serves it through many physical shapes:
scanned or index-probed, per item or micro-batched, on one process or
fanned out across shards and backends.  An :class:`ExecPlan` names one
such shape as a point in a small axis space:

==================  =====================================================
candidate source    ``full-scan`` (every stored user) or ``cppse-probe``
                    (the index's probed trees, Algorithm 1 + the lazy
                    Algorithm-2 flush)
scoring             ``vectorized`` (NumPy matcher), ``native`` (the fused
                    numba kernels of :mod:`repro.core.kernels`, falling
                    back to vectorized when unavailable) or
                    ``oracle-reference`` (the naive per-pair scorer from
                    :mod:`repro.sim.oracle`)
batching            ``item`` (one query per call) or ``micro-batch``
                    (amortized windows)
placement           ``local`` (one process) or ``sharded(strategy,
                    backend)`` (fan-out + merge)
cached              plan-level :class:`~repro.exec.cache.ResultCache`
                    wrapped around scoring (the ``*-cached`` variants)
dedup               near-duplicate upload collapse ahead of scoring
                    (:mod:`repro.exec.dedup`): ``off``, ``exact``
                    (bit-identical, conformance-anchored) or ``approx``
                    (MinHash/LSH at a Jaccard threshold; the ``*-dedup``
                    variants)
==================  =====================================================

:class:`PlanRegistry` maps stable names ("scan-item",
"sharded-index-block", "index-batch-cached", ...) to plans, derives the
plan a given :class:`~repro.core.config.SsRecConfig` asks for, and is the
single source the conformance catalog enumerates — registering a plan is
what puts it under differential test, there is no second list to update.

Compiling a plan against live state (a fitted facade) happens in
:mod:`repro.exec.compile`; the operators are in :mod:`repro.exec.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import (
    DEDUP_MODES,
    SERVE_BACKENDS,
    SHARD_STRATEGIES,
    SsRecConfig,
)

CANDIDATE_SOURCES = ("full-scan", "cppse-probe")
SCORINGS = ("vectorized", "native", "oracle-reference")
BATCHINGS = ("item", "micro-batch")
PLACEMENT_KINDS = ("local", "sharded")
TRANSPORTS = ("inproc", "wire")


@dataclass(frozen=True)
class Placement:
    """Where a plan executes: one process, or a shard fan-out.

    Attributes:
        kind: ``"local"`` or ``"sharded"``.
        strategy: user-partition strategy of a sharded placement
            (``"hash"`` or ``"block"``); None for local plans.
        backend: fan-out backend of a sharded placement (``"sequential"``,
            ``"thread"`` or ``"process"``); None for local plans.
    """

    kind: str = "local"
    strategy: str | None = None
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in PLACEMENT_KINDS:
            raise ValueError(f"kind must be one of {PLACEMENT_KINDS}, got {self.kind!r}")
        if self.kind == "local":
            if self.strategy is not None or self.backend is not None:
                raise ValueError("local placements take no strategy/backend")
        else:
            if self.strategy not in SHARD_STRATEGIES:
                raise ValueError(
                    f"strategy must be one of {SHARD_STRATEGIES}, got {self.strategy!r}"
                )
            if self.backend not in SERVE_BACKENDS:
                raise ValueError(
                    f"backend must be one of {SERVE_BACKENDS}, got {self.backend!r}"
                )

    @classmethod
    def local(cls) -> "Placement":
        return cls(kind="local")

    @classmethod
    def sharded(cls, strategy: str, backend: str = "sequential") -> "Placement":
        return cls(kind="sharded", strategy=strategy, backend=backend)


@dataclass(frozen=True)
class ExecPlan:
    """One named point in the execution-plan axis space.

    Attributes:
        name: registry name ("scan-item", "sharded-index-block", ...).
        candidate_source: ``"full-scan"`` or ``"cppse-probe"``.
        scoring: ``"vectorized"``, ``"native"`` or ``"oracle-reference"``.
        batching: ``"item"`` or ``"micro-batch"`` — the entry point the
            conformance replay drives (compiled plans serve both).
        placement: local or sharded placement.
        cached: wrap scoring in a plan-level result cache.
        dedup: near-duplicate upload collapse ahead of scoring —
            ``"off"``, ``"exact"`` (provable-equality collapse; results
            stay bit-identical, so these plans anchor bit-for-bit) or
            ``"approx"`` (MinHash/LSH collapse at a Jaccard threshold;
            collapsed members receive the representative's list, so
            approximate plans are judged by the recall gate in
            ``bench_dedup``, not the conformance catalog).  Sits above
            the fan-out on sharded plans — one collapse saves the
            scoring pass on every shard.
        transport: ``"inproc"`` (a library call) or ``"wire"`` (served by
            :class:`repro.serve.server.RecommenderServer` over the framed
            JSON protocol; the conformance harness stands up a live
            server per replica and judges the results bit-for-bit
            *through the socket*).  ``"wire"`` plans with
            ``batching="micro-batch"`` serve through the server's dynamic
            coalescer; ``"item"`` wire plans dispatch per request.
        description: one-line summary (``--list-paths`` output).
        conformance: replay this plan in the differential conformance
            catalog (:mod:`repro.sim.conformance`).
        anchor: name of the plan this one must match **bit for bit**
            during conformance; None means the plan is judged against the
            naive oracle (within the 1e-9 tie discipline) instead.
        anchor_within_ties: relax the anchored comparison from bitwise to
            the 1e-9 tie discipline.  The ``*-native`` plans use this:
            the fused kernels take scalar ``log`` where NumPy applies its
            SIMD ``np.log``, a documented ULP-level divergence (the same
            one the oracle judge tolerates), so bitwise anchoring would
            test libm instead of the serving path.
    """

    name: str
    candidate_source: str
    scoring: str = "vectorized"
    batching: str = "item"
    placement: Placement = field(default_factory=Placement.local)
    cached: bool = False
    dedup: str = "off"
    transport: str = "inproc"
    description: str = ""
    conformance: bool = True
    anchor: str | None = None
    anchor_within_ties: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan name must be non-empty")
        if self.candidate_source not in CANDIDATE_SOURCES:
            raise ValueError(
                f"candidate_source must be one of {CANDIDATE_SOURCES}, "
                f"got {self.candidate_source!r}"
            )
        if self.scoring not in SCORINGS:
            raise ValueError(f"scoring must be one of {SCORINGS}, got {self.scoring!r}")
        if self.batching not in BATCHINGS:
            raise ValueError(f"batching must be one of {BATCHINGS}, got {self.batching!r}")
        if self.dedup not in DEDUP_MODES:
            raise ValueError(f"dedup must be one of {DEDUP_MODES}, got {self.dedup!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {self.transport!r}")
        if self.anchor_within_ties and self.anchor is None:
            raise ValueError("anchor_within_ties requires an anchor")

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    @property
    def uses_index(self) -> bool:
        """Whether this plan probes the CPPse-index (vs full scan)."""
        return self.candidate_source == "cppse-probe"

    @property
    def is_sharded(self) -> bool:
        return self.placement.kind == "sharded"

    @property
    def is_wire(self) -> bool:
        """Whether this plan is served over the network protocol."""
        return self.transport == "wire"

    @property
    def config_derivable(self) -> bool:
        """Whether :meth:`PlanRegistry.for_config` can ever derive this
        plan — oracle-reference scoring is a diagnostic axis with no
        config spelling, and wire transport is a deployment fact, so
        those plans are instantiated by name only."""
        return self.scoring in ("vectorized", "native") and self.transport == "inproc"

    def config_overrides(self) -> dict:
        """``SsRecConfig.with_options`` overrides that make a config ask
        for this plan's placement, scoring and caching.

        The candidate source (``use_index``) and batching are per-call
        facts, not config fields, so :meth:`PlanRegistry.for_config`
        takes them as arguments; everything else round-trips through
        ``SsRecConfig.to_dict``/``from_dict`` (property-tested).
        """
        overrides: dict = {"result_cache": self.cached, "dedup": self.dedup}
        if self.config_derivable:  # oracle-reference has no config spelling
            overrides["scoring"] = self.scoring
        if self.is_sharded:
            overrides.update(
                n_shards=2,
                shard_strategy=self.placement.strategy,
                serve_backend=self.placement.backend,
            )
        else:
            overrides.update(n_shards=1)
        return overrides

    def axes(self) -> tuple:
        """The identity tuple :meth:`PlanRegistry.for_config` matches on."""
        return (self.candidate_source, self.scoring, self.batching, self.placement,
                self.cached, self.transport, self.dedup)

    def describe(self) -> str:
        """One-line rendering for ``--list-paths`` and the docs."""
        placement = (
            "local"
            if not self.is_sharded
            else f"sharded({self.placement.strategy}, {self.placement.backend})"
        )
        if self.anchor is None:
            judge = "vs oracle"
        elif self.anchor_within_ties:
            judge = f"within ties of {self.anchor}"
        else:
            judge = f"bit-identical to {self.anchor}"
        flags = "cached " if self.cached else ""
        if self.dedup != "off":
            flags += f"dedup({self.dedup}) "
        if self.is_wire:
            flags += "wire "
            judge += " through the wire"
        tail = f" [{judge}]" if self.conformance else " [not in conformance catalog]"
        return (
            f"{self.candidate_source} / {self.scoring} / {self.batching} / "
            f"{placement} {flags}— {self.description}{tail}"
        )


class PlanRegistry:
    """Name -> :class:`ExecPlan` mapping, in registration order.

    The registry is the single catalog of recommendation execution: the
    facades derive their plan from it per config, the conformance runner
    replays every plan it marks ``conformance=True``, and the eval CLI
    lists it.  Registering a plan therefore *is* the integration step —
    a new plan is conformance-tested without touching the runner.
    """

    def __init__(self) -> None:
        self._plans: dict[str, ExecPlan] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._plans

    def __iter__(self):
        return iter(self._plans.values())

    def __len__(self) -> int:
        return len(self._plans)

    def register(self, plan: ExecPlan) -> ExecPlan:
        """Add one plan; names are unique, anchors must already exist.

        The anchor-ordering rule keeps the conformance replay sound: a
        bit-identical comparison needs the anchor's results from the same
        window, so anchors are always replayed before their dependents.
        """
        if plan.name in self._plans:
            raise ValueError(f"plan {plan.name!r} is already registered")
        if plan.anchor is not None:
            anchor = self._plans.get(plan.anchor)
            if anchor is None:
                raise ValueError(
                    f"plan {plan.name!r} anchors to unregistered {plan.anchor!r}"
                )
            if anchor.anchor is not None:
                raise ValueError(
                    f"plan {plan.name!r} must anchor to an anchor path, "
                    f"but {plan.anchor!r} itself anchors to {anchor.anchor!r}"
                )
        self._plans[plan.name] = plan
        return plan

    def get(self, name: str) -> ExecPlan:
        plan = self._plans.get(name)
        if plan is None:
            raise KeyError(
                f"unknown plan {name!r}; registered: {', '.join(self._plans)}"
            )
        return plan

    def names(self) -> tuple[str, ...]:
        return tuple(self._plans)

    def conformance_paths(self) -> tuple[str, ...]:
        """Names of every plan the conformance harness replays, in
        registration (= anchors-first) order."""
        return tuple(plan.name for plan in self if plan.conformance)

    # ------------------------------------------------------------------
    # Config derivation
    # ------------------------------------------------------------------
    def for_config(
        self,
        config: SsRecConfig,
        use_index: bool,
        batching: str = "item",
        cached: bool | None = None,
    ) -> ExecPlan:
        """The plan a config (plus the per-call axes) asks for.

        Placement comes from ``n_shards``/``shard_strategy``/``serve_backend``,
        scoring from ``scoring``, caching from ``result_cache``
        (overridable via ``cached``), the candidate source from
        ``use_index``.  A registered plan with matching axes is returned
        under its registered name; otherwise a plan is synthesized with a
        systematic name, so every config is servable even before anyone
        registers its shape.
        """
        placement = (
            Placement.sharded(config.shard_strategy, config.serve_backend)
            if config.n_shards > 1
            else Placement.local()
        )
        return self.for_axes(
            use_index=use_index,
            placement=placement,
            batching=batching,
            cached=config.result_cache if cached is None else bool(cached),
            scoring=config.scoring,
            dedup=config.dedup,
        )

    def for_axes(
        self,
        use_index: bool,
        placement: Placement,
        batching: str = "item",
        cached: bool = False,
        scoring: str = "vectorized",
        dedup: str = "off",
    ) -> ExecPlan:
        """The plan at an explicit axis point (registered name when one
        matches, synthesized otherwise).  The sharded facade uses this to
        pin plans to its *live* placement, which may be more specific
        than its config says."""
        axes = (
            "cppse-probe" if use_index else "full-scan",
            scoring,
            batching,
            placement,
            bool(cached),
            "inproc",
            dedup,
        )
        for plan in self._plans.values():
            if plan.axes() == axes:
                return plan
        return self._synthesize(*axes)

    @staticmethod
    def _synthesize(
        candidate_source: str,
        scoring: str,
        batching: str,
        placement: Placement,
        cached: bool,
        transport: str = "inproc",
        dedup: str = "off",
    ) -> ExecPlan:
        """An unregistered-but-valid plan, named systematically."""
        parts = ["index" if candidate_source == "cppse-probe" else "scan"]
        if placement.kind == "sharded":
            parts.insert(0, "sharded")
            parts.append(placement.strategy or "")
            if placement.backend != "sequential":
                parts.append(placement.backend or "")
        parts.append("batch" if batching == "micro-batch" else "item")
        if scoring == "native":
            parts.append("native")
        if cached:
            parts.append("cached")
        if dedup == "exact":
            parts.append("dedup")
        elif dedup == "approx":
            parts.append("dedup-approx")
        return ExecPlan(
            name="-".join(p for p in parts if p),
            candidate_source=candidate_source,
            scoring=scoring,
            batching=batching,
            placement=placement,
            cached=cached,
            dedup=dedup,
            transport=transport,
            description="synthesized from config (not a registered path)",
            conformance=False,
        )

    def describe(self) -> str:
        """The ``--list-paths`` table: one line per registered plan."""
        width = max(len(name) for name in self._plans) if self._plans else 0
        return "\n".join(
            f"{plan.name:<{width}}  {plan.describe()}" for plan in self
        )


def _build_default_registry() -> PlanRegistry:
    """Every serving path the repo ships, anchors before dependents.

    The first seven entries are the historical conformance catalog
    (PR 2-4); the ``*-cached`` variants wrap their base plan's pipeline
    in a :class:`~repro.exec.cache.ResultCache` and must reproduce the
    uncached anchor bit for bit.  The sharded cached variant stays on
    scan shards on purpose: scan mode has no shard-local Algorithm-2
    state, so a service-level cache hit cannot perturb maintenance
    cadence relative to its anchor.
    """
    registry = PlanRegistry()
    registry.register(ExecPlan(
        name="scan-item",
        candidate_source="full-scan",
        description="per-item exact scan over every stored user",
    ))
    registry.register(ExecPlan(
        name="scan-batch",
        candidate_source="full-scan",
        batching="micro-batch",
        anchor="scan-item",
        description="micro-batched exact scan (amortized sync/columns)",
    ))
    registry.register(ExecPlan(
        name="index-item",
        candidate_source="cppse-probe",
        description="per-item CPPse-index serving (Algorithms 1 + 2)",
    ))
    registry.register(ExecPlan(
        name="index-batch",
        candidate_source="cppse-probe",
        batching="micro-batch",
        anchor="index-item",
        description="micro-batched CPPse-index serving (knn_batch)",
    ))
    registry.register(ExecPlan(
        name="sharded-scan-hash",
        candidate_source="full-scan",
        placement=Placement.sharded("hash"),
        anchor="scan-item",
        description="hash-partitioned scan shards, sequential fan-out/merge",
    ))
    registry.register(ExecPlan(
        name="sharded-index-block",
        candidate_source="cppse-probe",
        placement=Placement.sharded("block"),
        description="block-aware CPPse shards (global blocking preserved)",
    ))
    registry.register(ExecPlan(
        name="sharded-scan-process",
        candidate_source="full-scan",
        placement=Placement.sharded("hash", backend="process"),
        anchor="scan-item",
        description="hash scan shards, one OS worker process per shard",
    ))
    registry.register(ExecPlan(
        name="sharded-scan-shmem",
        candidate_source="full-scan",
        placement=Placement.sharded("hash", backend="shmem"),
        anchor="scan-item",
        description="hash scan shards served from shared-memory segments "
        "(zero-copy worker views)",
    ))
    registry.register(ExecPlan(
        name="sharded-index-shmem",
        candidate_source="cppse-probe",
        placement=Placement.sharded("block", backend="shmem"),
        anchor="sharded-index-block",
        description="block CPPse shards over shared-memory fan-out "
        "(epoch copy-on-publish)",
    ))
    # The *-native family: the same four local serving shapes scored by
    # the fused numba kernels (repro.core.kernels).  Judged within the
    # 1e-9 tie discipline against the vectorized anchors: the kernels
    # take scalar log where NumPy applies SIMD np.log, a documented
    # ULP-level divergence (see the kernels module docstring), so
    # bitwise anchoring would test libm, not the serving path.  When the
    # compiled kernels are unavailable the plans compile to the
    # vectorized pipeline bit-identically (one-time warning + obs
    # counter), so the family stays green without numba.
    registry.register(ExecPlan(
        name="scan-item-native",
        candidate_source="full-scan",
        scoring="native",
        anchor="scan-item",
        anchor_within_ties=True,
        description="per-item scan through the fused gather+log+top-k "
        "kernel (vectorized fallback when numba is absent)",
    ))
    registry.register(ExecPlan(
        name="scan-batch-native",
        candidate_source="full-scan",
        scoring="native",
        batching="micro-batch",
        anchor="scan-item",
        anchor_within_ties=True,
        description="micro-batched scan through the fused kernel "
        "(amortized state snapshot, vectorized fallback)",
    ))
    registry.register(ExecPlan(
        name="index-item-native",
        candidate_source="cppse-probe",
        scoring="native",
        anchor="index-item",
        anchor_within_ties=True,
        description="per-item CPPse probe with fused bound+score+top-k "
        "over tree members (vectorized fallback)",
    ))
    registry.register(ExecPlan(
        name="index-batch-native",
        candidate_source="cppse-probe",
        scoring="native",
        batching="micro-batch",
        anchor="index-item",
        anchor_within_ties=True,
        description="micro-batched CPPse probe through the fused kernels "
        "(pseudo-query grouping, vectorized fallback)",
    ))
    registry.register(ExecPlan(
        name="oracle-item",
        candidate_source="full-scan",
        scoring="oracle-reference",
        conformance=False,
        description="naive per-pair reference scorer (the judge itself)",
    ))
    for base in ("scan-item", "scan-batch", "index-item", "index-batch",
                 "sharded-scan-hash"):
        plan = registry.get(base)
        registry.register(replace(
            plan,
            name=f"{base}-cached",
            cached=True,
            anchor=plan.anchor or plan.name,
            description=f"{plan.description} + plan-level result cache",
        ))
    # The served-* family: the same logical query answered through the
    # network front door (repro.serve.server), judged bit-for-bit through
    # the socket against the in-process anchors.  micro-batch transport
    # plans serve through the server's dynamic coalescer (concurrent
    # requests forming micro-batches under a latency budget); item plans
    # dispatch per request.
    registry.register(ExecPlan(
        name="served-scan-batch",
        candidate_source="full-scan",
        batching="micro-batch",
        transport="wire",
        anchor="scan-item",
        description="network-served scan, dynamic micro-batch coalescing",
    ))
    registry.register(ExecPlan(
        name="served-index-item",
        candidate_source="cppse-probe",
        transport="wire",
        anchor="index-item",
        description="network-served CPPse-index, per-request dispatch",
    ))
    # The *-dedup family: near-duplicate collapse ahead of scoring
    # (repro.exec.dedup).  Exact mode keys on the resolved scorer inputs,
    # so a collapse is provably the same query — these plans anchor
    # bit-for-bit, like the cached family.  The sharded variant stays on
    # scan shards for the same reason the cached one does: no shard-local
    # Algorithm-2 state, so a pre-fan-out collapse cannot perturb
    # maintenance cadence relative to the anchor.
    for base in ("scan-item", "scan-batch", "index-item", "index-batch",
                 "sharded-scan-hash"):
        plan = registry.get(base)
        registry.register(replace(
            plan,
            name=f"{base}-dedup",
            dedup="exact",
            anchor=plan.anchor or plan.name,
            description=f"{plan.description} + exact near-duplicate collapse",
        ))
    # Approximate mode trades exactness for collapse coverage (mutated
    # retries, cross-producer reposts), so it is judged by bench_dedup's
    # recall gate rather than the bitwise conformance catalog.
    registry.register(ExecPlan(
        name="scan-item-dedup-approx",
        candidate_source="full-scan",
        dedup="approx",
        conformance=False,
        description="per-item scan behind MinHash/LSH near-duplicate "
        "collapse (collapsed members get the representative's list)",
    ))
    return registry


#: The process-wide default registry every facade and the conformance
#: harness read.  Mutating it (registering project-specific plans) is
#: supported; replacing it is not.
PLAN_REGISTRY = _build_default_registry()
