"""The unified execution-plan core: one planner/operator pipeline behind
every recommend path.

- :mod:`repro.exec.plan` — :class:`ExecPlan`, :class:`Placement` and the
  :class:`PlanRegistry` (``PLAN_REGISTRY`` is the process-wide default);
- :mod:`repro.exec.ops` — the composable operators plans compile into;
- :mod:`repro.exec.compile` — ``compile_plan`` / ``as_executor`` and the
  shared ``coerce_k`` request prologue;
- :mod:`repro.exec.cache` — the plan-level exact result cache backing the
  ``*-cached`` plan variants;
- :mod:`repro.exec.dedup` — the near-duplicate collapse memo backing the
  ``*-dedup`` plan variants (exact and MinHash/LSH-approximate modes).

See docs/ARCHITECTURE.md §10 for the operator diagram and the
how-to-add-a-plan recipe.
"""

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.compile import CompiledPlan, as_executor, coerce_k, compile_plan
from repro.exec.dedup import DedupGroup, DedupState, DedupStats
from repro.exec.ops import (
    CandidateOp,
    CppseKnnOp,
    CppseProbeCandidateOp,
    DedupOp,
    ExecContext,
    FanoutOp,
    FullScanCandidateOp,
    MergeOp,
    OracleScoreOp,
    OracleSelectOp,
    PreRankedSelectOp,
    ResultCacheOp,
    ScoreOp,
    SelectOp,
    ServeOp,
    TopKSelectOp,
    VectorizedScoreOp,
    flush_pending_maintenance,
)
from repro.exec.plan import (
    BATCHINGS,
    CANDIDATE_SOURCES,
    PLACEMENT_KINDS,
    PLAN_REGISTRY,
    SCORINGS,
    ExecPlan,
    Placement,
    PlanRegistry,
)

__all__ = [
    "BATCHINGS",
    "CANDIDATE_SOURCES",
    "CacheStats",
    "CandidateOp",
    "CompiledPlan",
    "CppseKnnOp",
    "CppseProbeCandidateOp",
    "DedupGroup",
    "DedupOp",
    "DedupState",
    "DedupStats",
    "ExecContext",
    "ExecPlan",
    "FanoutOp",
    "FullScanCandidateOp",
    "MergeOp",
    "OracleScoreOp",
    "OracleSelectOp",
    "PLACEMENT_KINDS",
    "PLAN_REGISTRY",
    "Placement",
    "PlanRegistry",
    "PreRankedSelectOp",
    "ResultCache",
    "ResultCacheOp",
    "SCORINGS",
    "ScoreOp",
    "SelectOp",
    "ServeOp",
    "TopKSelectOp",
    "VectorizedScoreOp",
    "as_executor",
    "coerce_k",
    "compile_plan",
    "flush_pending_maintenance",
]
