"""Composable serving operators: the stages every compiled plan runs.

A compiled plan is a short list of operators applied to an
:class:`ExecContext` in order.  Each operator wraps existing, tested
machinery — the :class:`~repro.core.matching.VectorizedMatcher`, the
:class:`~repro.index.cppse.CPPseIndex`, the sharded fan-out — rather than
reimplementing it, so a plan instantiation produces bit-identical results
to the hand-wired path it replaced (the conformance harness holds every
plan to that).

The stage vocabulary:

=====================  ==================================================
:class:`CandidateOp`   admit the candidate population and run the
                       freshness prologue (the lazy Algorithm-2 flush for
                       index plans; the full scan needs none — the
                       matcher syncs rows lazily while scoring)
:class:`ScoreOp`       score the admitted candidates
:class:`SelectOp`      rank and cut to the top-``k`` by ``(-score, user_id)``
:class:`FanoutOp`      broadcast the query to every shard (backend-aware)
:class:`MergeOp`       merge per-shard partial lists into the global top-k
:class:`ResultCacheOp` memoize final ranked lists around an inner stage
                       list (the ``*-cached`` plans)
:class:`DedupOp`       collapse near-duplicate uploads onto one scoring
                       pass ahead of ScoreOp (the ``*-dedup`` plans)
=====================  ==================================================

One deliberate fusion: :class:`CppseKnnOp` is a ScoreOp *and* performs the
selection, because Algorithm 1 interleaves candidate pruning, scoring and
top-k maintenance during the signature-tree descent — splitting them
would mean reimplementing the algorithm instead of wrapping it.  Index
pipelines therefore pair it with the pass-through
:class:`PreRankedSelectOp`.

Every operator implements both entry points (``run_item`` /
``run_batch``), mirroring the per-item and micro-batched code paths of
the machinery it wraps — the two are bit-identical on the same state but
have very different cost profiles.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datasets.schema import SocialItem
from repro.exec.cache import CacheKey, ResultCache
from repro.exec.dedup import DedupGroup, DedupKey, DedupState

RankedList = list[tuple[int, float]]


class ExecContext:
    """Mutable per-request state flowing through one operator pipeline.

    Attributes:
        items: the queried items (length 1 under ``run_item``).
        k: the already-coerced recommendation depth.
        scores: ScoreOp output awaiting selection (shape depends on the
            scoring implementation; None for fused or fan-out pipelines).
        per_shard: FanoutOp output awaiting the merge.
        ranked: final per-item ranked lists (the pipeline's result).
    """

    __slots__ = ("items", "k", "scores", "per_shard", "ranked")

    def __init__(self, items: Sequence[SocialItem], k: int) -> None:
        self.items = list(items)
        self.k = int(k)
        self.scores = None
        self.per_shard = None
        self.ranked: list[RankedList] | None = None


class ServeOp:
    """Base operator: one pipeline stage with both serving entry points."""

    def run_item(self, ctx: ExecContext) -> None:
        raise NotImplementedError

    def run_batch(self, ctx: ExecContext) -> None:
        raise NotImplementedError


def flush_pending_maintenance(owner) -> int:
    """The serve-time Algorithm-2 prologue, stated exactly once.

    Queries between maintenance cycles must not see stale signatures, so
    any pending profile updates are flushed into the owner's index before
    candidates are admitted.  Returns the number of profiles refreshed
    (0 when nothing was pending).
    """
    if owner._maintenance_pending:
        return owner.run_maintenance()
    return 0


# ----------------------------------------------------------------------
# Candidate admission
# ----------------------------------------------------------------------
class CandidateOp(ServeOp):
    """Stage 1: admit candidates and establish serving freshness."""


class FullScanCandidateOp(CandidateOp):
    """Admit every stored user (the exact sequential-scan population).

    No prologue work: the vectorized matcher syncs profile rows lazily
    at scoring time, which is the scan path's freshness discipline.
    """

    def __init__(self, owner) -> None:
        self.owner = owner

    def run_item(self, ctx: ExecContext) -> None:
        pass

    def run_batch(self, ctx: ExecContext) -> None:
        pass


class CppseProbeCandidateOp(CandidateOp):
    """Admit the CPPse-index's probed trees, after the lazy flush.

    The probe itself happens inside Algorithm 1's descent
    (:class:`CppseKnnOp`); this stage owns the freshness prologue so a
    cached pipeline still flushes on every request — keeping the cached
    plan's maintenance cadence bit-identical to its uncached anchor.
    """

    def __init__(self, owner) -> None:
        self.owner = owner

    def run_item(self, ctx: ExecContext) -> None:
        flush_pending_maintenance(self.owner)

    def run_batch(self, ctx: ExecContext) -> None:
        flush_pending_maintenance(self.owner)


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------
class ScoreOp(ServeOp):
    """Stage 2: score the admitted candidates."""


class VectorizedScoreOp(ScoreOp):
    """Eq. 3 over all users via the NumPy matcher (scan plans).

    ``run_item`` scores one vector (``score_all``); ``run_batch`` scores
    one ``[n_items, n_users]`` matrix with shared smoothed columns
    (``score_all_batch``) — row ``i`` is bit-identical to the per-item
    call on the same state.
    """

    def __init__(self, owner) -> None:
        self.owner = owner

    def run_item(self, ctx: ExecContext) -> None:
        ctx.scores = self.owner.matcher.score_all(ctx.items[0])

    def run_batch(self, ctx: ExecContext) -> None:
        ctx.scores = self.owner.matcher.score_all_batch(ctx.items)


class OracleScoreOp(ScoreOp):
    """Naive per-(item, user) reference scoring (diagnostic plans).

    Wraps :class:`repro.sim.oracle.OracleMatcher` — the slowest,
    most obviously-correct scorer the repo can state.  Useful as an
    executable specification; never the serving default.
    """

    def __init__(self, owner) -> None:
        from repro.sim.oracle import OracleMatcher  # local: avoids core<->sim cycle

        self.owner = owner
        self.oracle = OracleMatcher(owner.scorer, owner.profiles)

    def run_item(self, ctx: ExecContext) -> None:
        ctx.scores = [self.oracle.score_all(ctx.items[0])]

    def run_batch(self, ctx: ExecContext) -> None:
        ctx.scores = [self.oracle.score_all(item) for item in ctx.items]


class CppseKnnOp(ScoreOp):
    """Algorithm 1: probe, score and select inside the sigtree descent.

    Candidate pruning, leaf scoring and top-k maintenance are interleaved
    by the algorithm itself, so this operator produces *ranked* results
    directly (see the module docstring on fusion); it pairs with
    :class:`PreRankedSelectOp`.
    """

    def __init__(self, owner) -> None:
        self.owner = owner

    def run_item(self, ctx: ExecContext) -> None:
        ctx.ranked = [self.owner.index.knn(ctx.items[0], ctx.k)]

    def run_batch(self, ctx: ExecContext) -> None:
        ctx.ranked = self.owner.index.knn_batch(ctx.items, ctx.k)


class NativeTopKOp(ScoreOp):
    """Fused gather+log+top-k over the matcher arrays (``scan-*-native``).

    Wraps :class:`repro.core.kernels.NativeEngine`: one compiled pass
    replaces the score-matrix materialization *and* the partial sort, so
    like :class:`CppseKnnOp` this stage produces ranked results directly
    and pairs with :class:`PreRankedSelectOp`.  Only compiled into a
    pipeline when :func:`repro.core.kernels.native_ready` holds — the
    fallback is the (bit-identical) vectorized stage pair, decided at
    plan-compile time in :mod:`repro.exec.compile`.
    """

    def __init__(self, owner) -> None:
        from repro.core.kernels import NativeEngine  # local: optional backend

        self.owner = owner
        self.engine = NativeEngine(owner.matcher)

    def run_item(self, ctx: ExecContext) -> None:
        ctx.ranked = [self.engine.top_k(ctx.items[0], ctx.k)]

    def run_batch(self, ctx: ExecContext) -> None:
        ctx.ranked = self.engine.top_k_batch(ctx.items, ctx.k)


class NativeCppseKnnOp(ScoreOp):
    """Fused Algorithm-1 probe+bound+score (``index-*-native``).

    Same probe, pruning bound and merge order as :class:`CppseKnnOp`'s
    ``CPPseIndex.knn``, with the per-tree leaf scoring and top-k
    maintenance fused into one compiled kernel over the matcher rows of
    each probed tree.  Produces ranked results directly; pairs with
    :class:`PreRankedSelectOp`.  The candidate stage upstream
    (:class:`CppseProbeCandidateOp`) still owns the Algorithm-2 flush.
    """

    def __init__(self, owner) -> None:
        from repro.core.kernels import NativeEngine  # local: optional backend

        self.owner = owner
        self.engine = NativeEngine(owner.matcher, owner.index)

    def run_item(self, ctx: ExecContext) -> None:
        ctx.ranked = [self.engine.knn(ctx.items[0], ctx.k)]

    def run_batch(self, ctx: ExecContext) -> None:
        ctx.ranked = self.engine.knn_batch(ctx.items, ctx.k)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
class SelectOp(ServeOp):
    """Stage 3: rank and cut to ``k`` by the ``(-score, user_id)`` order."""


class TopKSelectOp(SelectOp):
    """Exact top-k over the matcher's score vector/matrix (scan plans)."""

    def __init__(self, owner) -> None:
        self.owner = owner

    def run_item(self, ctx: ExecContext) -> None:
        ctx.ranked = [self.owner.matcher.select_top_k(ctx.scores, ctx.k)]

    def run_batch(self, ctx: ExecContext) -> None:
        matcher = self.owner.matcher
        ctx.ranked = [
            matcher.select_top_k(ctx.scores[i], ctx.k) for i in range(len(ctx.items))
        ]


class OracleSelectOp(SelectOp):
    """Global ``(-score, user_id)`` sort of the oracle's score dicts."""

    def run_item(self, ctx: ExecContext) -> None:
        from repro.sim.oracle import OracleMatcher  # local: avoids core<->sim cycle

        ctx.ranked = [OracleMatcher.rank(ctx.scores[0], ctx.k)]

    def run_batch(self, ctx: ExecContext) -> None:
        from repro.sim.oracle import OracleMatcher  # local: avoids core<->sim cycle

        ctx.ranked = [OracleMatcher.rank(scores, ctx.k) for scores in ctx.scores]


class PreRankedSelectOp(SelectOp):
    """Pass-through selection for fused pipelines (index plans): asserts
    the upstream stage already produced final ranked lists."""

    def run_item(self, ctx: ExecContext) -> None:
        self._check(ctx)

    def run_batch(self, ctx: ExecContext) -> None:
        self._check(ctx)

    @staticmethod
    def _check(ctx: ExecContext) -> None:
        if ctx.ranked is None or len(ctx.ranked) != len(ctx.items):
            raise RuntimeError("fused score stage did not produce ranked results")


# ----------------------------------------------------------------------
# Sharded placement
# ----------------------------------------------------------------------
class FanoutOp(ServeOp):
    """Broadcast one query (or window) to every shard of a service.

    The backend dispatch lives here — ``"process"`` routes through the
    worker pool (shards live in their own OS processes), ``"shmem"``
    sends each worker one batched message naming the published segment
    epoch (:meth:`~repro.serve.shmem.ShmemWorkerPool.serve_item` /
    ``serve_batch``), the in-process backends warm the shared
    expanded-query cache once and fan out via the service's
    sequential-or-threaded runner.  Per-shard results come back in shard
    order under every backend, so the merge downstream is deterministic.
    """

    def __init__(self, service) -> None:
        self.service = service

    def run_item(self, ctx: ExecContext) -> None:
        service = self.service
        item, k = ctx.items[0], ctx.k
        if service.backend == "process":
            from repro.obs.trace import trace_context

            ctx.per_shard = service._ensure_pool().map(
                "recommend", item, k, trace_ctx=trace_context()
            )
            return
        if service.backend == "shmem":
            from repro.obs.trace import trace_context

            # Warm the parent's expansion memo at this stream position,
            # exactly as the in-process backends do: the memo is part of
            # the published state, and expansions are memoized at their
            # *first* computation — skipping the warm here would let a
            # republished segment recompute an old item's expansion at a
            # later expander state, silently breaking bit-parity.
            service.scorer.expanded_query(item)
            ctx.per_shard = service._ensure_pool().serve_item(
                item, k, trace_ctx=trace_context()
            )
            return
        service.scorer.expanded_query(item)
        ctx.per_shard = service._fan_out(
            self._traced(lambda shard: shard.recommend(item, k))
        )

    def run_batch(self, ctx: ExecContext) -> None:
        service = self.service
        items, k = ctx.items, ctx.k
        if service.backend == "process":
            from repro.obs.trace import trace_context

            ctx.per_shard = service._ensure_pool().map(
                "recommend_batch", items, k, trace_ctx=trace_context()
            )
            return
        if service.backend == "shmem":
            from repro.obs.trace import trace_context

            for item in items:  # warm the published memo (see run_item)
                service.scorer.expanded_query(item)
            ctx.per_shard = service._ensure_pool().serve_batch(
                items, k, trace_ctx=trace_context()
            )
            return
        for item in items:
            service.scorer.expanded_query(item)
        ctx.per_shard = service._fan_out(
            self._traced(lambda shard: shard.recommend_batch(items, k))
        )

    @staticmethod
    def _traced(call):
        """Carry the caller's active trace onto the fan-out threads.

        The threaded backend runs shards on pool threads whose
        thread-local trace state is empty; re-installing the caller's
        trace there lets per-shard spans attach to the request's tree.
        With no active trace this returns ``call`` untouched.
        """
        from repro.obs.trace import current_parent_id, current_trace, use_trace

        trace = current_trace()
        if trace is None:
            return call
        parent_id = current_parent_id()

        def traced_call(shard):
            with use_trace(trace, parent_id):
                return call(shard)

        return traced_call


class MergeOp(ServeOp):
    """Merge per-shard partial top-k lists into the global top-k.

    Wraps :func:`repro.serve.sharding.merge_top_k` (the global
    ``(-score, user_id)`` order); also used directly by the stream
    layer's merge bolt via :meth:`merge`.
    """

    @staticmethod
    def merge(partials: Sequence[RankedList], k: int) -> RankedList:
        from repro.serve.sharding import merge_top_k  # local: keeps exec import-light

        return merge_top_k(partials, k)

    def run_item(self, ctx: ExecContext) -> None:
        ctx.ranked = [self.merge(ctx.per_shard, ctx.k)]

    def run_batch(self, ctx: ExecContext) -> None:
        per_shard = ctx.per_shard
        ctx.ranked = [
            self.merge([ranked_lists[i] for ranked_lists in per_shard], ctx.k)
            for i in range(len(ctx.items))
        ]


# ----------------------------------------------------------------------
# Plan-level result caching
# ----------------------------------------------------------------------
class ResultCacheOp(ServeOp):
    """Memoize an inner stage list's final ranked lists (``*-cached``).

    Keys combine the item signature, ``k`` and the owner's mutation
    epoch (see :mod:`repro.exec.cache` for the invalidation contract).
    Sits *after* the candidate/prologue stage, so index plans flush
    pending Algorithm-2 maintenance on every request — hit or miss —
    exactly like their uncached anchors.

    ``run_batch`` additionally deduplicates within the window: each
    distinct missing signature is computed once through the inner stages
    (as a sub-batch, preserving first-occurrence order) and repeated
    occurrences are served from the freshly stored entries — the win the
    duplicate-heavy delivery scenario measures.
    """

    def __init__(self, cache: ResultCache, owner, inner: Sequence[ServeOp]) -> None:
        self.cache = cache
        self.owner = owner
        self.inner = list(inner)

    def run_item(self, ctx: ExecContext) -> None:
        key = self.cache.key(ctx.items[0], ctx.k, self.owner.exec_epoch)
        hit = self.cache.lookup(key)
        if hit is not None:
            ctx.ranked = [hit]
            return
        for op in self.inner:
            op.run_item(ctx)
        self.cache.store(key, ctx.ranked[0])

    def run_batch(self, ctx: ExecContext) -> None:
        epoch = self.owner.exec_epoch
        keys = [self.cache.key(item, ctx.k, epoch) for item in ctx.items]
        results: list[RankedList | None] = [None] * len(ctx.items)
        miss_positions: list[int] = []
        missing_keys: set[CacheKey] = set()
        for position, key in enumerate(keys):
            if key in missing_keys:
                continue  # in-batch duplicate: resolved after the compute pass
            hit = self.cache.lookup(key)
            if hit is not None:
                results[position] = hit
            else:
                miss_positions.append(position)
                missing_keys.add(key)
        computed: dict[CacheKey, RankedList] = {}
        if miss_positions:
            sub = ExecContext([ctx.items[i] for i in miss_positions], ctx.k)
            for op in self.inner:
                op.run_batch(sub)
            assert sub.ranked is not None
            for position, ranked in zip(miss_positions, sub.ranked):
                self.cache.store(keys[position], ranked)
                computed[keys[position]] = ranked
                results[position] = ranked
        for position, key in enumerate(keys):
            if results[position] is None:
                entry = self.cache.lookup(key)
                if entry is None:  # evicted within the window (tiny cache)
                    entry = list(computed[key])
                results[position] = entry
        ctx.ranked = results


# ----------------------------------------------------------------------
# Near-duplicate collapse
# ----------------------------------------------------------------------
class DedupOp(ServeOp):
    """Collapse near-duplicate uploads onto one scoring pass (``*-dedup``).

    Wraps an inner stage list ahead of its ScoreOp, exactly like
    :class:`ResultCacheOp` — but keyed on *content similarity* instead of
    the full item signature, so redeliveries under fresh item ids (and,
    in approximate mode, mutated retries and cross-producer reposts)
    skip the Eq. 2-4 pass too.  The two strictness modes and their
    soundness arguments live in :mod:`repro.exec.dedup`.

    Exact mode resolves every item's expanded query through the owner's
    scorer to build its key.  On sharded owners that doubles as the
    pre-fan-out expansion warm :class:`FanoutOp` performs (the memo is
    populated at the same stream position either way), and it is the
    reason dedup sits *above* the fan-out: one collapse saves the scoring
    pass on every shard at once.

    ``run_batch`` collapses within the window as well: members of a group
    founded earlier in the same window are resolved from the founder's
    freshly computed list, preserving first-occurrence compute order.
    """

    def __init__(self, state: DedupState, owner, inner: Sequence[ServeOp]) -> None:
        self.state = state
        self.owner = owner
        self.inner = list(inner)

    def _exact_key(self, item: SocialItem, k: int) -> DedupKey:
        return self.state.exact_key(
            item, self.owner.scorer.expanded_query(item), k, self.owner.exec_epoch
        )

    def run_item(self, ctx: ExecContext) -> None:
        if self.state.mode == "exact":
            key = self._exact_key(ctx.items[0], ctx.k)
            hit = self.state.lookup_exact(key)
            if hit is not None:
                ctx.ranked = [hit]
                return
            for op in self.inner:
                op.run_item(ctx)
            self.state.store_exact(key, ctx.ranked[0])
            return
        self.state.sync_epoch(self.owner.exec_epoch)
        group, collapsed = self.state.group_for(ctx.items[0], ctx.k)
        if collapsed and group.ranked is not None:
            ctx.ranked = [list(group.ranked)]
            return
        for op in self.inner:
            op.run_item(ctx)
        group.ranked = list(ctx.ranked[0])

    def run_batch(self, ctx: ExecContext) -> None:
        if self.state.mode == "exact":
            self._run_batch_exact(ctx)
        else:
            self._run_batch_approx(ctx)

    def _run_batch_exact(self, ctx: ExecContext) -> None:
        keys = [self._exact_key(item, ctx.k) for item in ctx.items]
        results: list[RankedList | None] = [None] * len(ctx.items)
        miss_positions: list[int] = []
        missing_keys: set[DedupKey] = set()
        for position, key in enumerate(keys):
            if key in missing_keys:
                continue  # in-window duplicate content: resolved below
            hit = self.state.lookup_exact(key)
            if hit is not None:
                results[position] = hit
            else:
                miss_positions.append(position)
                missing_keys.add(key)
        computed: dict[DedupKey, RankedList] = {}
        if miss_positions:
            sub = ExecContext([ctx.items[i] for i in miss_positions], ctx.k)
            for op in self.inner:
                op.run_batch(sub)
            assert sub.ranked is not None
            for position, ranked in zip(miss_positions, sub.ranked):
                self.state.store_exact(keys[position], ranked)
                computed[keys[position]] = ranked
                results[position] = ranked
        for position, key in enumerate(keys):
            if results[position] is None:
                entry = self.state.lookup_exact(key)
                if entry is None:  # evicted within the window (tiny memo)
                    entry = list(computed[key])
                results[position] = entry
        ctx.ranked = results

    def _run_batch_approx(self, ctx: ExecContext) -> None:
        self.state.sync_epoch(self.owner.exec_epoch)
        results: list[RankedList | None] = [None] * len(ctx.items)
        miss_positions: list[int] = []
        founders: list[DedupGroup] = []
        pending: list[tuple[int, DedupGroup]] = []
        for position, item in enumerate(ctx.items):
            group, collapsed = self.state.group_for(item, ctx.k)
            if collapsed:
                if group.ranked is not None:
                    results[position] = list(group.ranked)
                else:  # collapsed onto an in-window founder, still pending
                    pending.append((position, group))
            else:
                miss_positions.append(position)
                founders.append(group)
        if miss_positions:
            sub = ExecContext([ctx.items[i] for i in miss_positions], ctx.k)
            for op in self.inner:
                op.run_batch(sub)
            assert sub.ranked is not None
            for group, ranked in zip(founders, sub.ranked):
                group.ranked = list(ranked)
            for position, ranked in zip(miss_positions, sub.ranked):
                results[position] = ranked
        for position, group in pending:
            assert group.ranked is not None
            results[position] = list(group.ranked)
        ctx.ranked = results
