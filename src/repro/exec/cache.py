"""Plan-level result caching: exact top-k memoization with epoch invalidation.

:class:`ResultCache` memoizes final ranked lists keyed on the *item
signature* (id, category, producer, declared entities), the requested
``k``, and the owning facade's **mutation epoch** — a counter the facades
bump on every profile update and on every Algorithm-2 maintenance flush.
Because the epoch is part of the key, any mutation that could move a
score instantly orphans every earlier entry: a hit can only be served
for state that is bit-identical to the state the entry was computed
under, so cached plans are exact, not approximate (the conformance
harness replays the ``*-cached`` plans bit-for-bit against their
uncached anchors).

What deliberately does **not** bump the epoch: ``observe_item``.  A new
upload advances the producer layer and the entity expander, but neither
changes the score of an *already-queried* item against the *current*
profile state — expanded queries are frozen per item id in the scorer's
query cache, and the interest predictor's per-user distributions are
keyed on the profile version counters, which only move on interaction
updates.  Re-serving a redelivered item therefore legally hits even when
fresh uploads arrived in between (the duplicate/out-of-order scenario's
bread and butter).

Orphaned entries are not swept eagerly; the LRU discipline retires them
as fresh results land (``max_entries`` bounds the footprint either way).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.datasets.schema import SocialItem

#: Cache key: (item id, category, producer, declared entities, k, epoch).
CacheKey = tuple[int, int, int, tuple[int, ...], int, int]

RankedList = list[tuple[int, float]]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU memo of exact ranked lists, invalidated by the mutation epoch.

    Args:
        max_entries: LRU capacity; the oldest entry is evicted when a new
            result lands in a full cache.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, RankedList]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(item: SocialItem, k: int, epoch: int) -> CacheKey:
        """The full cache key of one query against one state epoch."""
        return (
            int(item.item_id),
            int(item.category),
            int(item.producer),
            tuple(int(e) for e in item.entities),
            int(k),
            int(epoch),
        )

    def lookup(self, key: CacheKey) -> RankedList | None:
        """The memoized ranked list, or None on a miss.

        Hits return a *copy* so callers can mutate their result list
        without corrupting the memo (the uncached paths also return a
        fresh list per call).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return list(entry)

    def store(self, key: CacheKey, ranked: RankedList) -> None:
        """Memoize one computed ranked list (evicting LRU on overflow)."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = list(ranked)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the run)."""
        self._entries.clear()
