"""Plan compilation: bind an :class:`~repro.exec.plan.ExecPlan` to live state.

``compile_plan(plan, owner)`` turns a declarative plan into a
:class:`CompiledPlan` — the operator pipeline the facades actually serve
through.  The ``owner`` is the state holder the operators wrap:

- local plans bind to a fitted :class:`~repro.core.ssrec.SsRecRecommender`
  (its ``matcher``, ``index``, pending-maintenance set and mutation
  epoch);
- sharded plans bind to a :class:`~repro.serve.service.ShardedRecommender`
  (its shards, fan-out backend and mutation epoch).

The shared request prologue — ``k`` coercion (None means the config's
``default_k``; an explicit ``k=0`` stays an empty window) and the
empty-batch short-circuit — lives here, once, instead of once per facade
method.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import SsRecConfig
from repro.datasets.schema import SocialItem
from repro.exec.cache import ResultCache
from repro.exec.dedup import DedupState
from repro.obs.hooks import active_hooks
from repro.exec.ops import (
    CppseKnnOp,
    CppseProbeCandidateOp,
    DedupOp,
    ExecContext,
    FanoutOp,
    FullScanCandidateOp,
    MergeOp,
    NativeCppseKnnOp,
    NativeTopKOp,
    OracleScoreOp,
    OracleSelectOp,
    PreRankedSelectOp,
    ResultCacheOp,
    ServeOp,
    TopKSelectOp,
    VectorizedScoreOp,
)
from repro.exec.plan import ExecPlan

RankedList = list[tuple[int, float]]


def coerce_k(k: int | None, config: SsRecConfig) -> int:
    """The one ``k`` rule every recommend entry point shares:
    ``None`` means the configured ``default_k``; an explicit ``k=0`` is
    an empty recommendation window (and stays 0)."""
    return config.default_k if k is None else int(k)


class CompiledPlan:
    """An operator pipeline bound to live state, ready to serve.

    Exposes both entry points regardless of the plan's primary
    ``batching`` axis — per-item and micro-batched serving are
    bit-identical on the same state, only the cost profile differs.

    Attributes:
        plan: the declarative plan this pipeline implements.
        owner: the bound facade (state holder).
        ops: the stage list, applied in order.
        result_cache: the plan-level cache (None for uncached plans).
        dedup_state: the near-duplicate collapse memo (None when the
            plan's ``dedup`` axis is ``"off"``).
    """

    def __init__(
        self,
        plan: ExecPlan,
        owner,
        ops: Sequence[ServeOp],
        result_cache: ResultCache | None = None,
        dedup_state: DedupState | None = None,
    ) -> None:
        self.plan = plan
        self.owner = owner
        self.ops = list(ops)
        self.result_cache = result_cache
        self.dedup_state = dedup_state

    def run_item(self, item: SocialItem, k: int | None = None) -> RankedList:
        """Top-``k`` ``(user_id, score)`` for one item."""
        ctx = ExecContext([item], coerce_k(k, self.owner.config))
        hooks = active_hooks()
        if hooks is None:  # nobody watching: keep the original tight loop
            for op in self.ops:
                op.run_item(ctx)
        else:
            plan_name = self.plan.name
            for op in self.ops:
                with hooks.operator(plan_name, type(op).__name__):
                    op.run_item(ctx)
        assert ctx.ranked is not None
        return ctx.ranked[0]

    def run_batch(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[RankedList]:
        """Per-item top-``k`` lists for a micro-batch (empty in, empty out)."""
        items = list(items)
        if not items:
            return []
        ctx = ExecContext(items, coerce_k(k, self.owner.config))
        hooks = active_hooks()
        if hooks is None:  # nobody watching: keep the original tight loop
            for op in self.ops:
                op.run_batch(ctx)
        else:
            plan_name = self.plan.name
            for op in self.ops:
                with hooks.operator(plan_name, type(op).__name__):
                    op.run_batch(ctx)
        assert ctx.ranked is not None
        return ctx.ranked

    def run_requests(
        self, requests: Sequence[tuple[SocialItem, int | None]]
    ) -> list[RankedList]:
        """Serve one *coalesced* micro-batch of independent requests.

        This is the seam the network coalescer
        (:class:`repro.serve.server.RecommenderServer`) executes through:
        concurrently arriving ``(item, k)`` requests — possibly with
        different ``k`` — are grouped by ``k`` and each group runs
        through :meth:`run_batch`, so the amortized window costs apply to
        traffic that never asked to be a batch.  Results come back in
        request order and are bit-identical to serving each request
        through :meth:`run_item` (the batch entry's exactness guarantee).
        """
        requests = list(requests)
        if not requests:
            return []
        groups: dict[int | None, list[int]] = {}
        for position, (_, k) in enumerate(requests):
            groups.setdefault(k, []).append(position)
        out: list[RankedList | None] = [None] * len(requests)
        for k, positions in groups.items():
            ranked = self.run_batch([requests[p][0] for p in positions], k)
            for position, result in zip(positions, ranked):
                out[position] = result
        return out  # type: ignore[return-value]

    def obs_registry(self):
        """This pipeline's stage telemetry as a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        Exposes the result cache's hit/miss/eviction counters (plus a
        ``cache.hit_rate`` gauge) and the dedup stage's collapse counters
        under the plan's name, so the facades' merged registries — and
        through them the server's ``metrics`` route and ``python -m
        repro.obs summarize`` — report cache and dedup behavior without a
        side channel.  Counters snapshot the live stats objects; the
        registry is rebuilt per call, so merging it repeatedly into an
        aggregate view cannot double-count.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        plan_name = self.plan.name
        if self.result_cache is not None:
            stats = self.result_cache.stats
            registry.counter("cache.hits", plan=plan_name).inc(stats.hits)
            registry.counter("cache.misses", plan=plan_name).inc(stats.misses)
            registry.counter("cache.evictions", plan=plan_name).inc(stats.evictions)
            registry.gauge("cache.hit_rate", plan=plan_name).set(stats.hit_rate)
        if self.dedup_state is not None:
            stats = self.dedup_state.stats
            mode = self.plan.dedup
            registry.counter("dedup.collapsed", plan=plan_name, mode=mode).inc(
                stats.collapsed
            )
            registry.counter("dedup.groups", plan=plan_name, mode=mode).inc(
                stats.groups
            )
            registry.counter(
                "dedup.false_merge_checks", plan=plan_name, mode=mode
            ).inc(stats.false_merge_checks)
            registry.gauge("dedup.collapse_rate", plan=plan_name, mode=mode).set(
                stats.collapse_rate
            )
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = " -> ".join(type(op).__name__ for op in self.ops)
        return f"CompiledPlan({self.plan.name!r}: {stages})"


def _use_native(plan: ExecPlan) -> bool:
    """Whether a ``scoring="native"`` plan gets the compiled kernels.

    Decided once per plan compilation: when the kernels are unavailable
    (numba missing, ``REPRO_NATIVE=0``, or a failed JIT self-test) the
    fallback is recorded — one-time warning plus the ``native.fallbacks``
    obs counter — and the caller compiles the bit-identical vectorized
    pipeline instead, so a native plan always serves.
    """
    if plan.scoring != "native":
        return False
    from repro.core.kernels import native_ready, record_fallback

    if native_ready():
        return True
    record_fallback(plan.name)
    return False


def compile_plan(
    plan: ExecPlan,
    owner,
    result_cache: ResultCache | None = None,
    dedup_state: DedupState | None = None,
) -> CompiledPlan:
    """Build the operator pipeline for ``plan`` over ``owner``'s state.

    Args:
        plan: the declarative plan to compile.
        owner: a fitted local recommender (local plans) or a sharded
            service (sharded plans); validated by duck-typing the
            attributes the operators need.
        result_cache: reuse an existing cache for cached plans; a fresh
            one sized by ``config.result_cache_size`` is created when
            omitted.
        dedup_state: reuse an existing collapse memo for ``*-dedup``
            plans; a fresh one parameterized by the owner's config
            (``dedup_threshold``/``dedup_bands``/``dedup_rows``, sized by
            ``result_cache_size``) is created when omitted.
    """
    if plan.is_sharded:
        if not hasattr(owner, "shards"):
            raise TypeError(
                f"plan {plan.name!r} is sharded but owner {type(owner).__name__} "
                f"has no shards"
            )
        serve: list[ServeOp] = [FanoutOp(owner), MergeOp()]
        prologue: list[ServeOp] = []
    elif plan.scoring == "oracle-reference":
        prologue = [FullScanCandidateOp(owner)]
        serve = [OracleScoreOp(owner), OracleSelectOp()]
    elif plan.uses_index:
        if getattr(owner, "index", None) is None:
            raise TypeError(
                f"plan {plan.name!r} probes the CPPse-index but owner has none "
                f"(fit with use_index=True or call attach_index())"
            )
        prologue = [CppseProbeCandidateOp(owner)]
        if _use_native(plan):
            serve = [NativeCppseKnnOp(owner), PreRankedSelectOp()]
        else:
            serve = [CppseKnnOp(owner), PreRankedSelectOp()]
    else:
        if getattr(owner, "matcher", None) is None:
            raise TypeError(f"owner of plan {plan.name!r} has no matcher (not fitted?)")
        prologue = [FullScanCandidateOp(owner)]
        if _use_native(plan):
            serve = [NativeTopKOp(owner), PreRankedSelectOp()]
        else:
            serve = [VectorizedScoreOp(owner), TopKSelectOp(owner)]

    # Dedup wraps the serve stages first — ahead of scoring, and ahead of
    # the fan-out on sharded plans, so one collapse saves every shard's
    # pass.  The result cache (id-keyed, the cheapest lookup) wraps
    # outermost: a redelivered id short-circuits before dedup even has to
    # resolve the item's expanded query.
    dedup: DedupState | None = None
    if plan.dedup != "off":
        config = owner.config
        dedup = dedup_state or DedupState(
            plan.dedup,
            threshold=config.dedup_threshold,
            n_bands=config.dedup_bands,
            n_rows=config.dedup_rows,
            max_groups=config.result_cache_size,
        )
        serve = [DedupOp(dedup, owner, serve)]
    cache: ResultCache | None = None
    if plan.cached:
        cache = result_cache or ResultCache(owner.config.result_cache_size)
        serve = [ResultCacheOp(cache, owner, serve)]
    return CompiledPlan(
        plan, owner, [*prologue, *serve], result_cache=cache, dedup_state=dedup
    )


class _RecommenderExecutor:
    """Adapter giving arbitrary recommenders (baselines, shards, test
    doubles) the compiled-plan serving interface."""

    def __init__(self, recommender) -> None:
        self.recommender = recommender

    def run_item(self, item: SocialItem, k: int) -> RankedList:
        return self.recommender.recommend(item, k)

    def run_batch(self, items: Sequence[SocialItem], k: int) -> list[RankedList]:
        batch = getattr(self.recommender, "recommend_batch", None)
        if callable(batch):
            return batch(items, k)
        return [self.recommender.recommend(item, k) for item in items]

    def run_requests(
        self, requests: Sequence[tuple[SocialItem, int | None]]
    ) -> list[RankedList]:
        """Mixed-``k`` coalesced serving for adapted recommenders (same
        contract as :meth:`CompiledPlan.run_requests`)."""
        requests = list(requests)
        if not requests:
            return []
        groups: dict[int | None, list[int]] = {}
        for position, (_, k) in enumerate(requests):
            groups.setdefault(k, []).append(position)
        out: list[RankedList | None] = [None] * len(requests)
        for k, positions in groups.items():
            ranked = self.run_batch([requests[p][0] for p in positions], k)
            for position, result in zip(positions, ranked):
                out[position] = result
        return out  # type: ignore[return-value]


def as_executor(recommender):
    """The plan executor for any recommender-shaped object.

    Plan-aware facades (``SsRecRecommender``, ``ShardedRecommender``)
    hand back their compiled plan; anything else merely exposing
    ``recommend``/``recommend_batch`` is adapted, so the stream bolts can
    execute plans without caring what serves them.
    """
    executor = getattr(recommender, "executor", None)
    if callable(executor):
        return executor()
    return _RecommenderExecutor(recommender)
