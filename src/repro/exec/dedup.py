"""Near-duplicate upload collapse: the memo behind :class:`DedupOp`.

At-least-once delivery makes the serving surface redundant: retry chains
redeliver the same upload, sometimes with one mutated entity mention,
and reposts carry the same content under another producer id.  The
:class:`~repro.exec.cache.ResultCache` (keyed on the full item
signature, id included) only collapses *bit-identical* redeliveries —
every near-duplicate still pays the full Eq. 2-4 scoring pass.
:class:`DedupState` is the content-similarity memo that collapses those
too, in one of two strictness modes:

**exact** — two uploads collapse iff they are *provably* the same query
to the scorer.  Scoring (Eq. 2-4) reads exactly three things off an
item: its category (the smoothed long/short interest columns), its
producer (the producer-affinity column) and its **resolved expanded
query** — the ``(entity, weight)`` pairs the
:class:`~repro.core.matching.MatchingScorer` expands the declared
entities into.  The raw entity list is *not* a sound key across item
ids: expanded queries are frozen per item id at first computation while
the expander's statistics keep drifting with every observed upload, so
two ids declaring identical entities can legitimately score differently.
Keying on ``(category, producer, resolved expansion, k, epoch)`` makes
an exact-mode hit bit-identical to recomputation by construction — the
``*-dedup`` plans are conformance-anchored bit-for-bit against their
uncached anchors on every scenario.

**approx** — two uploads collapse when their declared entity *sets* are
near-duplicates: same category, exact Jaccard similarity >= ``threshold``
(the producer may differ — that is what lets a cross-producer repost
collapse onto the original).  Candidate pairs come from MinHash/banded
LSH (:mod:`repro.index.minhash`), and every candidate is verified with
the exact Jaccard before merging — banding only prunes, it never decides
(rejected verifications are counted as ``false_merge_checks``).
Collapsed members receive the representative's served list verbatim,
which is the accuracy-for-throughput trade the recall gate in
``benchmarks/bench_dedup.py`` measures.

Both modes share the :class:`ResultCache` mutation-epoch discipline:
the facade epoch is part of the exact key, and the approximate group
store is dropped whenever the epoch moves, so no collapse can ever serve
a ranked list computed under different profile state.  ``observe_item``
deliberately does not bump the epoch (see :mod:`repro.exec.cache` for
why that is sound), which is exactly what makes redelivery collapse
possible in a live stream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.datasets.schema import SocialItem
from repro.index.minhash import LSHIndex, MinHasher, jaccard

RankedList = list[tuple[int, float]]

#: Exact dedup key: (category, producer, resolved expanded query, k, epoch).
DedupKey = tuple[int, int, tuple[tuple[int, float], ...], int, int]


@dataclass
class DedupStats:
    """Collapse counters of one :class:`DedupState`.

    Attributes:
        collapsed: queries served from a representative's result instead
            of a scoring pass (the work the stage saved).
        groups: representatives actually scored (distinct contents in
            exact mode, LSH groups founded in approximate mode).
        false_merge_checks: LSH candidate pairs rejected by the exact
            Jaccard/category verification — each one is a would-be false
            merge the banding suggested and the verifier caught.
    """

    collapsed: int = 0
    groups: int = 0
    false_merge_checks: int = 0

    @property
    def lookups(self) -> int:
        return self.collapsed + self.groups

    @property
    def collapse_rate(self) -> float:
        return self.collapsed / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "collapsed": self.collapsed,
            "groups": self.groups,
            "false_merge_checks": self.false_merge_checks,
            "collapse_rate": self.collapse_rate,
        }


class DedupGroup:
    """One representative upload's group in approximate mode.

    ``ranked`` is None between admission and the representative's scoring
    pass — within a micro-batch window, later members can collapse onto a
    founder whose result is still pending; :class:`DedupOp` resolves them
    after the sub-batch compute.
    """

    __slots__ = ("category", "entities", "k", "ranked")

    def __init__(self, category: int, entities: frozenset[int], k: int) -> None:
        self.category = int(category)
        self.entities = entities
        self.k = int(k)
        self.ranked: RankedList | None = None


class DedupState:
    """The collapse memo of one compiled ``*-dedup`` pipeline.

    Args:
        mode: ``"exact"`` or ``"approx"`` (``"off"`` never builds one).
        threshold: minimum exact Jaccard for an approximate merge (τ).
        n_bands: LSH bands (approximate mode).
        n_rows: signature rows per band; the MinHash signature has
            ``n_bands * n_rows`` slots.
        seed: MinHash coefficient seed (fixed default: signatures agree
            across replicas and processes).
        max_groups: footprint bound — LRU capacity of the exact memo and
            generation size of the approximate group store.
    """

    def __init__(
        self,
        mode: str,
        threshold: float = 0.6,
        n_bands: int = 8,
        n_rows: int = 4,
        seed: int = 0,
        max_groups: int = 256,
    ) -> None:
        if mode not in ("exact", "approx"):
            raise ValueError(f"mode must be 'exact' or 'approx', got {mode!r}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if max_groups < 1:
            raise ValueError(f"max_groups must be >= 1, got {max_groups}")
        self.mode = mode
        self.threshold = float(threshold)
        self.max_groups = int(max_groups)
        self.stats = DedupStats()
        # Exact mode: LRU memo, epoch in the key (the ResultCache shape).
        self._exact: "OrderedDict[DedupKey, RankedList]" = OrderedDict()
        # Approx mode: group store, dropped wholesale on an epoch move.
        self._hasher = MinHasher(n_bands * n_rows, seed=seed) if mode == "approx" else None
        self._lsh = LSHIndex(n_bands, n_rows) if mode == "approx" else None
        self._groups: list[DedupGroup] = []
        self._epoch: int | None = None

    def __len__(self) -> int:
        """Stored representatives (exact entries + live approx groups)."""
        return len(self._exact) + len(self._groups)

    # ------------------------------------------------------------------
    # Exact mode: provable-equality memo
    # ------------------------------------------------------------------
    @staticmethod
    def exact_key(
        item: SocialItem,
        expanded_query: list[tuple[int, float]],
        k: int,
        epoch: int,
    ) -> DedupKey:
        """The full scorer-input identity of one query at one epoch.

        ``expanded_query`` must be the *resolved* expansion from the
        owner's scorer (``scorer.expanded_query(item)``) — see the module
        docstring for why the raw entity list is not sound across ids.
        """
        return (
            int(item.category),
            int(item.producer),
            tuple((int(e), float(w)) for e, w in expanded_query),
            int(k),
            int(epoch),
        )

    def lookup_exact(self, key: DedupKey) -> RankedList | None:
        """The representative's ranked list, or None when this content is
        new.  Hits return a copy (callers may mutate their result)."""
        entry = self._exact.get(key)
        if entry is None:
            return None
        self._exact.move_to_end(key)
        self.stats.collapsed += 1
        return list(entry)

    def store_exact(self, key: DedupKey, ranked: RankedList) -> None:
        """Record one freshly scored representative (LRU on overflow)."""
        if key in self._exact:
            self._exact.move_to_end(key)
        else:
            self.stats.groups += 1
        self._exact[key] = list(ranked)
        while len(self._exact) > self.max_groups:
            self._exact.popitem(last=False)

    # ------------------------------------------------------------------
    # Approx mode: MinHash/LSH group store
    # ------------------------------------------------------------------
    def sync_epoch(self, epoch: int) -> None:
        """Drop the approximate group store when the mutation epoch moved.

        Same invalidation discipline as the result cache, enforced by
        clearing instead of keying: a group's ranked list was computed
        under one profile state and must never be served under another.
        Counters survive — they describe the run, not the store.
        """
        if self._epoch != epoch:
            self._epoch = epoch
            if self._lsh is not None:
                self._lsh.clear()
            self._groups.clear()

    def group_for(self, item: SocialItem, k: int) -> tuple[DedupGroup, bool]:
        """The group this upload collapses into, or founds.

        Returns ``(group, collapsed)``: ``collapsed`` is True when an
        existing representative absorbed the upload (same category, same
        ``k``, exact Jaccard >= τ — the producer is deliberately free to
        differ, so reposts collapse).  Otherwise the upload founds a new
        group, registered in the LSH immediately so in-window duplicates
        collapse onto it before its result exists.
        """
        assert self._hasher is not None and self._lsh is not None
        entities = frozenset(int(e) for e in item.entities)
        signature = self._hasher.signature(entities)
        for candidate in self._lsh.candidates(signature):
            if candidate.k != k:
                continue  # different cut depth: not a usable result
            if candidate.category == item.category and jaccard(
                candidate.entities, entities
            ) >= self.threshold:
                self.stats.collapsed += 1
                return candidate, True
            self.stats.false_merge_checks += 1
        if len(self._groups) >= self.max_groups:
            # Generation reset: a coarse LRU. Admitted group objects stay
            # valid for holders (in-window members resolve fine); only
            # future collapses onto pre-reset groups are forfeited.
            self._lsh.clear()
            self._groups.clear()
        group = DedupGroup(item.category, entities, k)
        self._lsh.add(signature, group)
        self._groups.append(group)
        self.stats.groups += 1
        return group, False

    def clear(self) -> None:
        """Drop every representative (counters are kept)."""
        self._exact.clear()
        if self._lsh is not None:
            self._lsh.clear()
        self._groups.clear()
