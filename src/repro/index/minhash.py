"""MinHash signatures and banded LSH over entity sets (dedup machinery).

The near-duplicate collapse stage (:mod:`repro.exec.dedup`) needs a
cheap, deterministic similarity sketch of an item's *declared entity
set*: two uploads whose sets overlap above a Jaccard threshold should
land in the same candidate bucket without comparing every pair.  The
classic answer is MinHash + banded LSH:

- :class:`MinHasher` draws ``n_hashes`` universal hash functions
  ``h_i(x) = (a_i * x + b_i) mod p`` over a Mersenne prime and keeps, per
  function, the minimum over the set.  ``P[min-hash collision] =
  Jaccard(A, B)``, so the sketch is an unbiased similarity estimator.
- :class:`LSHIndex` slices the signature into ``n_bands`` bands of
  ``n_rows`` values; a set is a *candidate* match of another when any
  whole band collides.  The S-curve ``1 - (1 - J^rows)^bands`` makes
  near-duplicates almost certain candidates and unrelated sets almost
  certain non-candidates — callers still verify candidates with the
  exact :func:`jaccard` (banding only prunes the comparison space, it
  never decides a merge by itself).

Both pieces follow the encoding conventions of
:mod:`repro.index.signature`: ids are plain ints, construction is
deterministic in the seed, and signatures are value objects (tuples)
safe to use as dict keys.  Determinism and permutation-invariance over
mention order are property-tested (``tests/test_index_minhash.py``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

#: Mersenne prime 2^31 - 1: coefficients and reduced ids stay < 2^31, so
#: ``a * x + b`` fits comfortably in uint64 without overflow.
_PRIME = np.uint64(2_147_483_647)

#: Min-hash value of the empty set (no element can reach the prime).
EMPTY_SLOT = int(_PRIME)


def jaccard(a: Iterable[int], b: Iterable[int]) -> float:
    """Exact Jaccard similarity of two entity-id collections (as sets).

    Two empty sets are identical by convention (1.0) — an upload with no
    declared entities is a duplicate of another empty upload, not of
    every upload.
    """
    sa, sb = set(int(x) for x in a), set(int(x) for x in b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


class MinHasher:
    """``n_hashes`` seeded universal hash functions over entity ids.

    Args:
        n_hashes: signature length (``bands * rows`` for banded LSH).
        seed: coefficient seed; equal seeds draw equal hash families, so
            signatures are comparable across processes and runs.
    """

    def __init__(self, n_hashes: int, seed: int = 0) -> None:
        if n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        self.n_hashes = int(n_hashes)
        self.seed = int(seed)
        rng = np.random.default_rng(self.seed)
        prime = int(_PRIME)
        self._a = rng.integers(1, prime, size=self.n_hashes, dtype=np.uint64)
        self._b = rng.integers(0, prime, size=self.n_hashes, dtype=np.uint64)

    def signature(self, entity_ids: Iterable[int]) -> tuple[int, ...]:
        """The MinHash signature of a *set* of entity ids.

        Duplicated mentions and mention order cannot move the signature:
        the ids are deduplicated first and each slot takes a minimum,
        which is permutation-invariant by construction.  The empty set
        maps to the all-:data:`EMPTY_SLOT` signature.
        """
        unique = np.unique(np.asarray(list(entity_ids), dtype=np.int64))
        if unique.size == 0:
            return (EMPTY_SLOT,) * self.n_hashes
        xs = unique.astype(np.uint64) % _PRIME
        hashed = (self._a[:, None] * xs[None, :] + self._b[:, None]) % _PRIME
        return tuple(int(v) for v in hashed.min(axis=1))


class LSHIndex:
    """Banded locality-sensitive index over MinHash signatures.

    Args:
        n_bands: bands the signature is sliced into.
        n_rows: rows (signature slots) per band; signatures must have
            exactly ``n_bands * n_rows`` slots.

    Stored references are opaque to the index — callers add whatever
    group handle they resolve candidates back through.
    """

    def __init__(self, n_bands: int, n_rows: int) -> None:
        if n_bands < 1:
            raise ValueError(f"n_bands must be >= 1, got {n_bands}")
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows}")
        self.n_bands = int(n_bands)
        self.n_rows = int(n_rows)
        self._buckets: dict[tuple[int, tuple[int, ...]], list] = {}

    @property
    def n_hashes(self) -> int:
        return self.n_bands * self.n_rows

    def _bands(self, signature: Sequence[int]) -> list[tuple[int, tuple[int, ...]]]:
        if len(signature) != self.n_hashes:
            raise ValueError(
                f"signature must have {self.n_hashes} slots "
                f"({self.n_bands} bands x {self.n_rows} rows), got {len(signature)}"
            )
        rows = self.n_rows
        return [
            (band, tuple(signature[band * rows : (band + 1) * rows]))
            for band in range(self.n_bands)
        ]

    def add(self, signature: Sequence[int], ref) -> None:
        """File ``ref`` under every band bucket of ``signature``."""
        for key in self._bands(signature):
            self._buckets.setdefault(key, []).append(ref)

    def candidates(self, signature: Sequence[int]) -> list:
        """Every stored ref sharing at least one whole band, deduplicated
        in first-stored order (so the oldest matching group wins ties)."""
        seen: dict[int, None] = {}
        out: list = []
        for key in self._bands(signature):
            for ref in self._buckets.get(key, ()):
                if id(ref) not in seen:
                    seen[id(ref)] = None
                    out.append(ref)
        return out

    def clear(self) -> None:
        self._buckets.clear()

    def __len__(self) -> int:
        """Number of non-empty band buckets (a size gauge, not a count
        of stored refs)."""
        return len(self._buckets)
