"""The CPPse-index: build, Algorithm 1 KNN, Algorithm 2 maintenance.

Structure (Fig. 4): a chained hash table maps each category-entity pair to
the extended signature trees (one per user block holding that pair); each
tree stores the block's user profiles under one category.  KNN queries run
best-first over the located trees, pruning subtrees whose upper-bound
relevance (Def. 2) cannot beat the current k-th best — Lemmas 1-2 guarantee
no false dismissals among the probed trees.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.config import SsRecConfig
from repro.core.matching import MatchingScorer
from repro.core.profiles import ProfileStore, UserProfile
from repro.datasets.schema import SocialItem
from repro.index.blocks import UserBlock, assign_to_block, block_statistics, one_pass_clustering
from repro.index.hashing import ChainedHashTable
from repro.index.signature import (
    BlockUniverse,
    QuerySignature,
    UniverseOverflow,
    UserVector,
)
from repro.index.sigtree import LeafEntry, SignatureTree

#: Tie tolerance when comparing against the pruning bound; entries whose
#: upper bound equals the current k-th best (within float noise) are still
#: explored so tied users resolve deterministically by id.
_TIE_EPS = 1e-12


class CPPseIndex:
    """Hash-routed extended signature trees over blocked user profiles.

    Build with :meth:`build`; query with :meth:`knn`; keep fresh with
    :meth:`maintain`.
    """

    def __init__(
        self,
        profiles: ProfileStore,
        scorer: MatchingScorer,
        n_categories: int,
        config: SsRecConfig | None = None,
    ) -> None:
        self.profiles = profiles
        self.scorer = scorer
        self.interest = scorer.interest
        self.n_categories = int(n_categories)
        self.config = config or SsRecConfig()
        self.blocks: list[UserBlock] = []
        self.universes: dict[int, BlockUniverse] = {}
        self.trees: dict[tuple[int, int], SignatureTree] = {}
        self.hash_table = ChainedHashTable(n_buckets=self.config.hash_buckets)
        self.block_of_user: dict[int, int] = {}
        self.vector_of_user: dict[int, UserVector] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        profiles: ProfileStore,
        scorer: MatchingScorer,
        n_categories: int,
        config: SsRecConfig | None = None,
    ) -> "CPPseIndex":
        """Cluster users into blocks and build every (block, category) tree."""
        index = cls(profiles, scorer, n_categories, config)
        ordered = [profiles.get(uid) for uid in profiles.user_ids()]
        index.blocks = one_pass_clustering(
            ordered,
            n_categories,
            similarity_threshold=index.config.block_similarity_threshold,
            max_blocks=index.config.max_blocks,
        )
        for block in index.blocks:
            index._build_block(block)
        return index

    @classmethod
    def build_from_blocks(
        cls,
        profiles: ProfileStore,
        scorer: MatchingScorer,
        n_categories: int,
        blocks: Sequence[UserBlock],
        config: SsRecConfig | None = None,
    ) -> "CPPseIndex":
        """Build over a caller-supplied block partition.

        The sharded serving runtime (:mod:`repro.serve`) reuses one global
        blocking across all shards: each shard passes the blocks it owns
        (re-numbered densely from 0) instead of re-clustering its slice.
        Because a query probes exactly the trees whose block universe holds
        a query entity, sharing the blocking makes the union of per-shard
        probed users equal the single index's probed set — which is what
        makes sharded results bit-identical to the unsharded index.

        ``blocks`` must have dense ids ``0..len-1`` and every member user
        must exist in ``profiles``.
        """
        index = cls(profiles, scorer, n_categories, config)
        index.blocks = list(blocks)
        for position, block in enumerate(index.blocks):
            if block.block_id != position:
                raise ValueError(
                    f"blocks must be densely numbered: position {position} "
                    f"has block_id {block.block_id}"
                )
            index._build_block(block)
        return index

    def _build_block(self, block: UserBlock) -> None:
        """(Re)build one block: universe, user vectors, trees, hash entries."""
        members = [self.profiles.get(uid) for uid in block.user_ids]
        universe = BlockUniverse(
            producer_ids=block.producer_ids,
            entity_ids=block.entity_ids,
            slack=self.config.signature_slack,
        )
        self.universes[block.block_id] = universe
        long_dists: dict[int, np.ndarray] = {}
        short_dists: dict[int, np.ndarray] = {}
        for profile in members:
            self.block_of_user[profile.user_id] = block.block_id
            self.vector_of_user[profile.user_id] = UserVector.build(
                profile, universe, self.scorer
            )
            long_dists[profile.user_id] = self.interest.long_term_distribution(profile)
            short_dists[profile.user_id] = self.interest.short_term_distribution(profile)
        categories = sorted(block.categories) or [0]
        for category in categories:
            entries = [
                LeafEntry(
                    user_id=p.user_id,
                    vector=self.vector_of_user[p.user_id],
                    p_long=float(long_dists[p.user_id][category]),
                    p_short=float(short_dists[p.user_id][category]),
                    profile=p,
                )
                for p in members
            ]
            tree = SignatureTree(
                block.block_id, category, universe, fanout=self.config.tree_fanout
            )
            tree.bulk_build(entries)
            self.trees[(block.block_id, category)] = tree
            for entity_id in universe.entity_ids():
                self.hash_table.insert(category, entity_id, block.block_id, tree)

    def _create_tree(self, block: UserBlock, category: int) -> SignatureTree:
        """Lazily create a (block, category) tree covering current members."""
        universe = self.universes[block.block_id]
        entries = []
        for uid in block.user_ids:
            profile = self.profiles.get(uid)
            if profile is None:
                continue
            entries.append(
                LeafEntry(
                    user_id=uid,
                    vector=self.vector_of_user[uid],
                    p_long=float(self.interest.long_term_distribution(profile)[category]),
                    p_short=float(self.interest.short_term_distribution(profile)[category]),
                    profile=profile,
                )
            )
        tree = SignatureTree(block.block_id, category, universe, fanout=self.config.tree_fanout)
        tree.bulk_build(entries)
        self.trees[(block.block_id, category)] = tree
        block.categories.add(int(category))
        for entity_id in universe.entity_ids():
            self.hash_table.insert(category, entity_id, block.block_id, tree)
        return tree

    # ------------------------------------------------------------------
    # KNN query (Algorithm 1)
    # ------------------------------------------------------------------
    def locate_trees(self, item: SocialItem) -> dict[int, SignatureTree]:
        """Step 1 of Algorithm 1: hash the item's category-entity pairs to
        the extended signature trees containing them.

        Probes with the expanded entity set ``E u E'`` so expansion recall
        carries through to tree location.
        """
        found: dict[int, SignatureTree] = {}
        for entity_id, _ in self.scorer.expanded_query(item):
            for block_id, tree in self.hash_table.lookup(item.category, entity_id).items():
                found[block_id] = tree
        return found

    def _locate_trees_cached(
        self,
        item: SocialItem,
        lookup_cache: dict[tuple[int, int], dict[int, SignatureTree]] | None,
    ) -> dict[int, SignatureTree]:
        """:meth:`locate_trees` with an optional per-batch lookup cache.

        Items of one micro-batch overwhelmingly share categories and query
        entities, so their ``(category, entity)`` hash probes repeat; the
        cache turns the repeats into one dictionary hit each.
        """
        if lookup_cache is None:
            return self.locate_trees(item)
        found: dict[int, SignatureTree] = {}
        for entity_id, _ in self.scorer.expanded_query(item):
            probe = (item.category, entity_id)
            hit = lookup_cache.get(probe)
            if hit is None:
                hit = self.hash_table.lookup(item.category, entity_id)
                lookup_cache[probe] = hit
            found.update(hit)
        return found

    def knn(self, item: SocialItem, k: int) -> list[tuple[int, float]]:
        """Algorithm 1: top-``k`` users for ``item`` via best-first search.

        Returns ``(user_id, score)`` sorted by descending score then user
        id — the same order the sequential scan produces.  ``k == 0`` is
        an empty recommendation window and yields an empty list.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        return self._knn_search(item, k, None, None, None)

    def knn_batch(
        self, items: Sequence[SocialItem], k: int
    ) -> list[list[tuple[int, float]]]:
        """Batched Algorithm 1 over a micro-batch of items.

        Entry ``i`` equals ``knn(items[i], k)`` on the same index state.
        The batch amortizes three costs the per-item path pays per call:

        - items are grouped by pseudo-query ``(category, producer, E u E')``
          and duplicates answered by a single best-first search;
        - ``(category, entity)`` hash-table probes are cached across the
          batch (tree location, step 1 of Algorithm 1);
        - per-block :class:`QuerySignature` encodings are cached, so items
          sharing a query signature descend the same trees without
          re-encoding.

        Callers flush pending maintenance once before the batch (the ssRec
        facade does) rather than once per item.  An empty window, and
        ``k == 0``, both yield empty results rather than an error.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        results: list[list[tuple[int, float]]] = [[] for _ in items]
        if k == 0 or not items:
            return results
        groups: dict[tuple, list[int]] = {}
        for position, item in enumerate(items):
            weighted = self.scorer.expanded_query(item)
            query_key = (item.category, item.producer, tuple(weighted))
            groups.setdefault(query_key, []).append(position)
        lookup_cache: dict[tuple[int, int], dict[int, SignatureTree]] = {}
        encode_cache: dict[tuple, QuerySignature] = {}
        # Category-sorted group order keeps consecutive searches on the same
        # trees (and their cached encodings).
        for query_key in sorted(groups, key=lambda key: key[:2]):
            positions = groups[query_key]
            ranked = self._knn_search(
                items[positions[0]], k, lookup_cache, encode_cache, query_key
            )
            for position in positions:
                results[position] = list(ranked)
        return results

    def _knn_search(
        self,
        item: SocialItem,
        k: int,
        lookup_cache: dict[tuple[int, int], dict[int, SignatureTree]] | None,
        encode_cache: dict[tuple, QuerySignature] | None,
        query_key: tuple | None,
    ) -> list[tuple[int, float]]:
        """One best-first search, optionally sharing per-batch caches."""
        lambda_s = self.scorer.config.lambda_s
        weighted = self.scorer.expanded_query(item)
        trees = self._locate_trees_cached(item, lookup_cache)
        if not trees:
            return []
        counter = itertools.count()
        # Best-first frontier: (-upper_bound, seq, node, query).
        frontier: list = []
        for block_id, tree in sorted(trees.items()):
            if encode_cache is not None and query_key is not None:
                cache_key = (block_id, query_key)
                query = encode_cache.get(cache_key)
                if query is None:
                    query = QuerySignature.encode(item, weighted, tree.universe, block_id)
                    encode_cache[cache_key] = query
            else:
                query = QuerySignature.encode(item, weighted, tree.universe, block_id)
            bound = tree.root.relevance(query, lambda_s)
            heapq.heappush(frontier, (-bound, next(counter), tree.root, query))
        # Result heap U_k: min-heap on (score, -user_id); its root is the
        # pruning bound LB once full.
        result: list[tuple[float, int]] = []

        def lb() -> float:
            if len(result) < k:
                return float("-inf")
            return result[0][0]

        while frontier:
            neg_bound, _, node, query = heapq.heappop(frontier)
            if -neg_bound < lb() - _TIE_EPS:
                break  # all remaining bounds are no better
            if node.is_leaf:
                for entry in node.entries:
                    score = entry.relevance(query, lambda_s)
                    key = (score, -entry.user_id)
                    if len(result) < k:
                        heapq.heappush(result, key)
                    elif key > result[0]:
                        heapq.heapreplace(result, key)
            else:
                for child in node.children:
                    bound = child.relevance(query, lambda_s)
                    if bound >= lb() - _TIE_EPS:
                        heapq.heappush(frontier, (-bound, next(counter), child, query))
        ranked = sorted(result, key=lambda su: (-su[0], -su[1]))
        return [(-neg_uid, score) for score, neg_uid in ranked]

    # ------------------------------------------------------------------
    # Dynamic maintenance (Algorithm 2)
    # ------------------------------------------------------------------
    def maintain(self, user_ids: Sequence[int]) -> int:
        """Algorithm 2: absorb profile updates for ``user_ids``.

        Handles, per the paper: changed entity frequencies (signature
        refresh + ancestor re-aggregation), new entities (reserved-zone
        claim + hash-table insertion, or block rebuild on overflow), new
        categories (lazy tree creation), and new users (block assignment +
        leaf insertion).

        Returns the number of profiles processed.
        """
        processed = 0
        for user_id in user_ids:
            profile = self.profiles.get(user_id)
            if profile is None:
                continue
            block_id = self.block_of_user.get(int(user_id))
            if block_id is None:
                self._insert_new_user(profile)
            else:
                self._update_existing_user(profile, block_id)
            processed += 1
        return processed

    def _block_by_id(self, block_id: int) -> UserBlock:
        return self.blocks[block_id]

    def _update_existing_user(self, profile: UserProfile, block_id: int) -> None:
        block = self._block_by_id(block_id)
        universe = self.universes[block_id]
        # New symbols browsed by this user claim reserved-zone slots; an
        # exhausted zone triggers a full block rebuild with fresh capacity.
        try:
            new_entities = [
                e for e in profile.entity_counts if universe.entity_slot(e) is None
            ]
            for entity_id in new_entities:
                universe.add_entity(entity_id)
                block.entity_ids.add(int(entity_id))
                for category in sorted(block.categories):
                    tree = self.trees.get((block_id, category))
                    if tree is not None:
                        self.hash_table.insert(category, entity_id, block_id, tree)
            for producer_id in list(profile.producer_counts):
                if universe.producer_slot(producer_id) is None:
                    universe.add_producer(producer_id)
                    block.producer_ids.add(int(producer_id))
        except UniverseOverflow:
            block.entity_ids.update(profile.entity_counts)
            block.producer_ids.update(profile.producer_counts)
            block.categories.update(profile.category_counts)
            self._rebuild_block(block)
            return
        # New categories browsed -> lazy tree creation for the block.
        for category in profile.category_counts:
            if (block_id, category) not in self.trees:
                self._create_tree(block, category)
        vector = UserVector.build(profile, universe, self.scorer)
        self.vector_of_user[profile.user_id] = vector
        long_dist = self.interest.long_term_distribution(profile)
        short_dist = self.interest.short_term_distribution(profile)
        for category in sorted(block.categories):
            tree = self.trees.get((block_id, category))
            if tree is None:
                continue
            updated = tree.update_entry(
                profile.user_id, vector, float(long_dist[category]), float(short_dist[category])
            )
            if not updated:
                tree.insert(
                    LeafEntry(
                        user_id=profile.user_id,
                        vector=vector,
                        p_long=float(long_dist[category]),
                        p_short=float(short_dist[category]),
                        profile=profile,
                    )
                )

    def _insert_new_user(self, profile: UserProfile) -> None:
        block = assign_to_block(
            self.blocks,
            profile,
            self.n_categories,
            similarity_threshold=self.config.block_similarity_threshold,
            max_blocks=self.config.max_blocks,
        )
        if block.block_id not in self.universes:
            # assign_to_block opened a brand-new block; build it whole.
            self._build_block(block)
            return
        self.block_of_user[profile.user_id] = block.block_id
        self._update_existing_user(profile, block.block_id)

    def _rebuild_block(self, block: UserBlock) -> None:
        """Drop and rebuild one block's universe, vectors and trees."""
        for category in sorted(block.categories):
            self.trees.pop((block.block_id, category), None)
        self._build_block(block)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def signature_statistics(self) -> dict[str, int]:
        """Table II's per-blocking signature-size factors."""
        stats = block_statistics(self.blocks)
        stats["n_blocks"] = len(self.blocks)
        stats["n_trees"] = len(self.trees)
        return stats

    def users_in_probed_trees(self, item: SocialItem) -> set[int]:
        """Users retrievable for ``item`` (tests compare scan over these)."""
        users: set[int] = set()
        for tree in self.locate_trees(item).values():
            users.update(e.user_id for e in tree.all_entries())
        return users

    def check_invariants(self) -> None:
        """Validate every tree's structure and aggregation (tests)."""
        for tree in self.trees.values():
            tree.check_invariants()
