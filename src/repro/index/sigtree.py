"""Extended signature tree: LEntry / IEntry nodes with max-aggregation.

Section V-A: each tree stores the user profiles of one block under one
category.  Leaf entries (LEntry) carry a user's impact-encoded statistics
and a pointer to the profile record; internal entries (IEntry) are "virtual
users whose interests cover all of their children", built by "applying
max() to all children over their corresponding signature components".

Because every component of the relevance function (Def. 2) is monotone
non-decreasing in the aggregated statistics, an IEntry's relevance upper
bounds every descendant's (Lemmas 1-2) — the property the Algorithm 1
branch-and-bound relies on for no-false-dismissal pruning.  Property-based
tests assert both the aggregation invariant and the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.profiles import UserProfile
from repro.index.signature import (
    BlockUniverse,
    QuerySignature,
    UserVector,
    relevance_from_parts,
)


@dataclass
class LeafEntry:
    """LEntry: one user's signature under this tree's category.

    Attributes:
        user_id: the consumer.
        vector: block-level impact lists (shared across the block's trees).
        p_long: BiHMM long-term ``p_l(c)`` for this tree's category.
        p_short: BiHMM short-term ``p_s(c)`` for this tree's category.
        profile: pointer to the user profile record (the paper attaches one
            to every LEntry).
    """

    user_id: int
    vector: UserVector
    p_long: float
    p_short: float
    profile: UserProfile | None = None

    def relevance(self, query: QuerySignature, lambda_s: float) -> float:
        """Exact Eq. 3 score of this user for ``query``."""
        return relevance_from_parts(
            self.p_long,
            query.producer_prob(self.vector.p_producer, self.vector.floor_producer),
            query.entity_sum(self.vector.p_entity, self.vector.floor_entity),
            self.p_short,
            lambda_s,
        )


@dataclass
class InternalNode:
    """A tree node; its aggregate signature is the IEntry of Def. 2.

    Leaf nodes hold :class:`LeafEntry` objects in ``entries``; internal
    nodes hold child :class:`InternalNode` objects in ``children``.
    """

    is_leaf: bool
    entries: list[LeafEntry] = field(default_factory=list)
    children: list["InternalNode"] = field(default_factory=list)
    parent: "InternalNode | None" = None
    agg_p_long: float = 0.0
    agg_p_short: float = 0.0
    agg_p_producer: np.ndarray | None = None
    agg_p_entity: np.ndarray | None = None
    agg_floor_producer: float = 0.0
    agg_floor_entity: float = 0.0

    def recompute_aggregate(self) -> None:
        """Rebuild this IEntry by max() over children components."""
        if self.is_leaf:
            members = self.entries
            if not members:
                self._zero_aggregate()
                return
            self.agg_p_long = max(e.p_long for e in members)
            self.agg_p_short = max(e.p_short for e in members)
            self.agg_p_producer = np.maximum.reduce([e.vector.p_producer for e in members])
            self.agg_p_entity = np.maximum.reduce([e.vector.p_entity for e in members])
            self.agg_floor_producer = max(e.vector.floor_producer for e in members)
            self.agg_floor_entity = max(e.vector.floor_entity for e in members)
        else:
            kids = self.children
            if not kids:
                self._zero_aggregate()
                return
            self.agg_p_long = max(k.agg_p_long for k in kids)
            self.agg_p_short = max(k.agg_p_short for k in kids)
            self.agg_p_producer = np.maximum.reduce([k.agg_p_producer for k in kids])
            self.agg_p_entity = np.maximum.reduce([k.agg_p_entity for k in kids])
            self.agg_floor_producer = max(k.agg_floor_producer for k in kids)
            self.agg_floor_entity = max(k.agg_floor_entity for k in kids)

    def _zero_aggregate(self) -> None:
        self.agg_p_long = 0.0
        self.agg_p_short = 0.0
        self.agg_p_producer = np.zeros(1)
        self.agg_p_entity = np.zeros(1)
        self.agg_floor_producer = 0.0
        self.agg_floor_entity = 0.0

    def relevance(self, query: QuerySignature, lambda_s: float) -> float:
        """Upper-bound relevance of this subtree for ``query`` (Def. 2)."""
        return relevance_from_parts(
            self.agg_p_long,
            query.producer_prob(self.agg_p_producer, self.agg_floor_producer),
            query.entity_sum(self.agg_p_entity, self.agg_floor_entity),
            self.agg_p_short,
            lambda_s,
        )


class SignatureTree:
    """One extended signature tree: (block, category) -> user signatures.

    Args:
        block_id: owning block.
        category: the tree's category ``c``.
        universe: the block's shared symbol universe.
        fanout: max entries per leaf node / children per internal node.
    """

    def __init__(
        self, block_id: int, category: int, universe: BlockUniverse, fanout: int = 8
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.block_id = int(block_id)
        self.category = int(category)
        self.universe = universe
        self.fanout = int(fanout)
        self.root = InternalNode(is_leaf=True)
        self.root.recompute_aggregate()
        self._leaf_node_of: dict[int, InternalNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def bulk_build(self, entries: list[LeafEntry]) -> None:
        """Bottom-up bulk load: pack entries into leaf nodes, then stack
        internal levels of ``fanout`` children until a single root remains."""
        self._leaf_node_of.clear()
        if not entries:
            self.root = InternalNode(is_leaf=True)
            self.root.recompute_aggregate()
            return
        ordered = sorted(entries, key=lambda e: e.user_id)
        leaves: list[InternalNode] = []
        for start in range(0, len(ordered), self.fanout):
            node = InternalNode(is_leaf=True, entries=ordered[start : start + self.fanout])
            node.recompute_aggregate()
            for entry in node.entries:
                self._leaf_node_of[entry.user_id] = node
            leaves.append(node)
        level = leaves
        while len(level) > 1:
            next_level: list[InternalNode] = []
            for start in range(0, len(level), self.fanout):
                children = level[start : start + self.fanout]
                node = InternalNode(is_leaf=False, children=children)
                for child in children:
                    child.parent = node
                node.recompute_aggregate()
                next_level.append(node)
            level = next_level
        self.root = level[0]
        self.root.parent = None

    # ------------------------------------------------------------------
    # Lookup / mutation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaf_node_of)

    def __contains__(self, user_id: int) -> bool:
        return int(user_id) in self._leaf_node_of

    def find_leaf_entry(self, user_id: int) -> LeafEntry | None:
        """Algorithm 2's ``find_leaf_entry``."""
        node = self._leaf_node_of.get(int(user_id))
        if node is None:
            return None
        for entry in node.entries:
            if entry.user_id == int(user_id):
                return entry
        return None

    def _propagate_up(self, node: InternalNode | None) -> None:
        while node is not None:
            node.recompute_aggregate()
            node = node.parent

    def update_entry(
        self, user_id: int, vector: UserVector, p_long: float, p_short: float
    ) -> bool:
        """Refresh a user's LEntry and re-aggregate its ancestors
        (Algorithm 2: "update LE and its ancestors").  False if absent."""
        node = self._leaf_node_of.get(int(user_id))
        if node is None:
            return False
        for entry in node.entries:
            if entry.user_id == int(user_id):
                entry.vector = vector
                entry.p_long = float(p_long)
                entry.p_short = float(p_short)
                self._propagate_up(node)
                return True
        return False

    def insert(self, entry: LeafEntry) -> None:
        """Insert a new user's LEntry (Algorithm 2's ``insert_to_index``).

        Descends toward the least-populated leaf; a full leaf splits and the
        split may cascade to the root (growing the tree by one level).
        """
        if entry.user_id in self._leaf_node_of:
            raise ValueError(f"user {entry.user_id} already indexed")
        node = self.root
        while not node.is_leaf:
            node = min(node.children, key=lambda ch: _subtree_size(ch))
        node.entries.append(entry)
        self._leaf_node_of[entry.user_id] = node
        if len(node.entries) > self.fanout:
            self._split_leaf(node)
        else:
            self._propagate_up(node)

    def _split_leaf(self, node: InternalNode) -> None:
        node.entries.sort(key=lambda e: e.user_id)
        half = len(node.entries) // 2
        sibling = InternalNode(is_leaf=True, entries=node.entries[half:])
        node.entries = node.entries[:half]
        for entry in sibling.entries:
            self._leaf_node_of[entry.user_id] = sibling
        node.recompute_aggregate()
        sibling.recompute_aggregate()
        self._attach_sibling(node, sibling)

    def _attach_sibling(self, node: InternalNode, sibling: InternalNode) -> None:
        parent = node.parent
        if parent is None:
            new_root = InternalNode(is_leaf=False, children=[node, sibling])
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_aggregate()
            self.root = new_root
            return
        sibling.parent = parent
        parent.children.append(sibling)
        if len(parent.children) > self.fanout:
            self._split_internal(parent)
        else:
            self._propagate_up(parent)

    def _split_internal(self, node: InternalNode) -> None:
        half = len(node.children) // 2
        sibling = InternalNode(is_leaf=False, children=node.children[half:])
        node.children = node.children[:half]
        for child in sibling.children:
            child.parent = sibling
        node.recompute_aggregate()
        sibling.recompute_aggregate()
        self._attach_sibling(node, sibling)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_entries(self) -> list[LeafEntry]:
        """Every LEntry in the tree (user-id order)."""
        out: list[LeafEntry] = []

        def walk(node: InternalNode) -> None:
            if node.is_leaf:
                out.extend(node.entries)
            else:
                for child in node.children:
                    walk(child)

        walk(self.root)
        return sorted(out, key=lambda e: e.user_id)

    def height(self) -> int:
        """Levels from root to leaves (1 for a single leaf root)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h

    def check_invariants(self) -> None:
        """Assert structural + aggregation invariants (tests call this)."""

        def walk(node: InternalNode) -> None:
            before = (
                node.agg_p_long,
                node.agg_p_short,
                None if node.agg_p_producer is None else node.agg_p_producer.copy(),
                None if node.agg_p_entity is None else node.agg_p_entity.copy(),
            )
            node.recompute_aggregate()
            if abs(before[0] - node.agg_p_long) > 1e-12 or abs(before[1] - node.agg_p_short) > 1e-12:
                raise AssertionError("stale scalar aggregate")
            if before[2] is not None and not np.allclose(before[2], node.agg_p_producer):
                raise AssertionError("stale producer aggregate")
            if before[3] is not None and not np.allclose(before[3], node.agg_p_entity):
                raise AssertionError("stale entity aggregate")
            if not node.is_leaf:
                for child in node.children:
                    if child.parent is not node:
                        raise AssertionError("broken parent pointer")
                    walk(child)

        walk(self.root)


def _subtree_size(node: InternalNode) -> int:
    if node.is_leaf:
        return len(node.entries)
    return sum(_subtree_size(child) for child in node.children)
