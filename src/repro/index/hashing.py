"""Shift-add-xor string hashing and the chained hash table (Sec. V-A).

Equation 5 defines the hash class:

    init(s)        = s                                  (seed)
    step(i, h, c)  = h XOR (L(h) + R(h) + c)            (per character)
    final(h, s)    = h mod T                            (table size)

where ``L``/``R`` are left/right shifts by a fixed bit count.  The paper
selects this class after Ramakrishna & Zobel [24] for uniformity,
universality, applicability and efficiency.

The chained hash table stores one ``<key, sptr, nextptr>`` triad per
category-entity pair: ``key`` the full (pre-modulo) hash, ``sptr`` the set
of per-block pointers to extended signature trees containing the pair, and
``nextptr`` chaining pairs that share a bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

_MASK32 = 0xFFFFFFFF


def shift_add_xor_hash(text: str, seed: int = 1315423911, left: int = 5, right: int = 2) -> int:
    """The Eq. 5 shift-add-xor hash of ``text`` (32-bit, pre-modulo).

    Args:
        text: the string to hash (a category-entity pair name).
        seed: ``init(s)`` — the initial hash value.
        left: bit count of the left shift ``L``.
        right: bit count of the right shift ``R``.
    """
    h = seed & _MASK32
    for ch in text:
        h = (h ^ (((h << left) & _MASK32) + (h >> right) + ord(ch))) & _MASK32
    return h


def pair_key(category: int, entity_id: int) -> str:
    """Canonical string name of a category-entity pair.

    The paper hashes the phrase formed by the pair of item category and
    entity; we use the stable ``"<category>#<entity-id>"`` rendering.
    """
    return f"{int(category)}#{int(entity_id)}"


@dataclass
class HashTriad:
    """One chained-hash-table element: ``<key, sptr, nextptr>``.

    Attributes:
        key: full 32-bit hash of the pair name (collision discriminator
            together with ``name``).
        name: the pair name (exact-match discriminator within a chain).
        sptr: block id -> signature-tree pointer for trees containing the
            pair ("Each category-entity pair can be at most covered by |B|
            user blocks, so at most |B| sptr are needed").
        nextptr: next triad in the same bucket, or None.
    """

    key: int
    name: str
    sptr: dict[int, Any] = field(default_factory=dict)
    nextptr: "HashTriad | None" = None


class ChainedHashTable:
    """Chained hash table over category-entity pair names.

    Args:
        n_buckets: bucket count ``T`` (Eq. 5's modulo).
        seed/left/right: hash parameters passed to
            :func:`shift_add_xor_hash`.
    """

    def __init__(
        self,
        n_buckets: int = 1024,
        seed: int = 1315423911,
        left: int = 5,
        right: int = 2,
    ) -> None:
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self.seed = seed
        self.left = left
        self.right = right
        self._buckets: list[HashTriad | None] = [None] * self.n_buckets
        self._size = 0

    def __len__(self) -> int:
        """Number of distinct pair names stored."""
        return self._size

    def _hash(self, name: str) -> int:
        return shift_add_xor_hash(name, seed=self.seed, left=self.left, right=self.right)

    def _find(self, name: str) -> HashTriad | None:
        key = self._hash(name)
        node = self._buckets[key % self.n_buckets]
        while node is not None:
            if node.key == key and node.name == name:
                return node
            node = node.nextptr
        return None

    def insert(self, category: int, entity_id: int, block_id: int, tree: Any) -> None:
        """Point the pair's triad at ``tree`` for ``block_id`` (upsert)."""
        name = pair_key(category, entity_id)
        triad = self._find(name)
        if triad is None:
            key = self._hash(name)
            bucket = key % self.n_buckets
            triad = HashTriad(key=key, name=name, nextptr=self._buckets[bucket])
            self._buckets[bucket] = triad
            self._size += 1
        triad.sptr[int(block_id)] = tree

    def lookup(self, category: int, entity_id: int) -> dict[int, Any]:
        """Block id -> tree pointers for the pair; empty dict when absent."""
        triad = self._find(pair_key(category, entity_id))
        return dict(triad.sptr) if triad is not None else {}

    def remove_block(self, category: int, entity_id: int, block_id: int) -> bool:
        """Drop one block's pointer from a pair's triad; True if removed."""
        triad = self._find(pair_key(category, entity_id))
        if triad is None:
            return False
        return triad.sptr.pop(int(block_id), None) is not None

    def chain_lengths(self) -> list[int]:
        """Chain length per bucket (uniformity diagnostics / tests)."""
        lengths = []
        for head in self._buckets:
            n = 0
            node = head
            while node is not None:
                n += 1
                node = node.nextptr
            lengths.append(n)
        return lengths
