"""Signature encodings for the extended signature trees (Sec. V-A/B).

Two encodings, as the paper specifies: "an impact encoding for maintaining
user profiles and a frequency-based encoding for queries".

- :class:`BlockUniverse` — the block's producer/entity id spaces with the
  20% reserved growth zones ("following the classic technique for memory
  management in database systems, we reserve 20% space of each entry, and
  fill it with zones").
- :class:`UserVector` — the impact lists ``P_Up`` / ``P_E`` of one user
  (Dirichlet-smoothed ``p^(u^p|u)`` / ``p^(e|u)``) over the block universe,
  plus the smoothing floors for out-of-universe symbols.  Shared by all of
  the block's per-category trees (the per-category parts, ``p_l(c)`` and
  ``p_s(c)``, live in the leaf entries).
- :class:`QuerySignature` — the pseudo-query of an item against one block:
  per-universe-slot accumulated weight (frequency x expansion weight, as in
  Example 1) plus the total weight of out-of-universe query entities, which
  scores against the floor.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.matching import MatchingScorer
from repro.core.profiles import UserProfile
from repro.datasets.schema import SocialItem
from repro.hmm.utils import PROB_FLOOR


class UniverseOverflow(Exception):
    """Raised when a block universe's reserved zone is exhausted; the owner
    rebuilds the affected trees with an enlarged universe."""


class BlockUniverse:
    """Producer/entity id spaces of one block, with growth slack.

    Args:
        producer_ids: initial producer universe (sorted for determinism).
        entity_ids: initial entity universe.
        slack: reserved share of extra capacity (paper: 0.2).
    """

    def __init__(
        self,
        producer_ids: Iterable[int],
        entity_ids: Iterable[int],
        slack: float = 0.2,
    ) -> None:
        if not (0.0 <= slack < 1.0):
            raise ValueError(f"slack must be in [0, 1), got {slack}")
        self.slack = float(slack)
        self._producers: list[int] = sorted(set(int(p) for p in producer_ids))
        self._entities: list[int] = sorted(set(int(e) for e in entity_ids))
        self._producer_slot: dict[int, int] = {p: i for i, p in enumerate(self._producers)}
        self._entity_slot: dict[int, int] = {e: i for i, e in enumerate(self._entities)}
        self.producer_capacity = self._with_slack(len(self._producers))
        self.entity_capacity = self._with_slack(len(self._entities))

    def _with_slack(self, n: int) -> int:
        return max(1, n + int(np.ceil(n * self.slack)) + 1)

    @property
    def n_producers(self) -> int:
        return len(self._producers)

    @property
    def n_entities(self) -> int:
        return len(self._entities)

    def producer_slot(self, producer_id: int) -> int | None:
        return self._producer_slot.get(int(producer_id))

    def entity_slot(self, entity_id: int) -> int | None:
        return self._entity_slot.get(int(entity_id))

    def entity_ids(self) -> list[int]:
        return list(self._entities)

    def producer_ids(self) -> list[int]:
        return list(self._producers)

    def add_entity(self, entity_id: int) -> int:
        """Claim a reserved-zone slot for a new entity.

        Raises :class:`UniverseOverflow` when the zone is exhausted.
        """
        entity_id = int(entity_id)
        existing = self._entity_slot.get(entity_id)
        if existing is not None:
            return existing
        if len(self._entities) >= self.entity_capacity:
            raise UniverseOverflow(
                f"entity universe full ({self.entity_capacity} slots)"
            )
        slot = len(self._entities)
        self._entities.append(entity_id)
        self._entity_slot[entity_id] = slot
        return slot

    def add_producer(self, producer_id: int) -> int:
        """Claim a reserved-zone slot for a new producer."""
        producer_id = int(producer_id)
        existing = self._producer_slot.get(producer_id)
        if existing is not None:
            return existing
        if len(self._producers) >= self.producer_capacity:
            raise UniverseOverflow(
                f"producer universe full ({self.producer_capacity} slots)"
            )
        slot = len(self._producers)
        self._producers.append(producer_id)
        self._producer_slot[producer_id] = slot
        return slot


@dataclass
class UserVector:
    """Impact-encoded user statistics over a block universe.

    Attributes:
        user_id: the profiled consumer.
        p_producer: smoothed ``p^(u^p|u)`` per producer slot (capacity-sized;
            reserved-zone slots hold the unseen floor).
        p_entity: smoothed ``p^(e|u)`` per entity slot.
        floor_producer: smoothed probability of an unseen producer.
        floor_entity: smoothed probability of an unseen entity.
        version: profile version the vector was built from.
    """

    user_id: int
    p_producer: np.ndarray
    p_entity: np.ndarray
    floor_producer: float
    floor_entity: float
    version: int

    @classmethod
    def build(
        cls, profile: UserProfile, universe: BlockUniverse, scorer: MatchingScorer
    ) -> "UserVector":
        """Encode ``profile`` over ``universe`` with the scorer's smoothing.

        Values are exactly :meth:`MatchingScorer.producer_probability` /
        ``entity_probability`` — the index must score identically to the
        sequential scan.
        """
        mu = scorer.config.dirichlet_mu
        floor_p = (mu / scorer.n_producers) / (profile.n_long_events + mu)
        floor_e = (mu / scorer.n_entities) / (profile.n_entity_tokens + mu)
        p_producer = np.full(universe.producer_capacity, floor_p)
        for producer_id, slot in universe._producer_slot.items():
            count = profile.producer_counts.get(producer_id, 0)
            p_producer[slot] = (count + mu / scorer.n_producers) / (
                profile.n_long_events + mu
            )
        p_entity = np.full(universe.entity_capacity, floor_e)
        for entity_id, slot in universe._entity_slot.items():
            count = profile.entity_counts.get(entity_id, 0)
            p_entity[slot] = (count + mu / scorer.n_entities) / (
                profile.n_entity_tokens + mu
            )
        return cls(
            user_id=profile.user_id,
            p_producer=p_producer,
            p_entity=p_entity,
            floor_producer=floor_p,
            floor_entity=floor_e,
            version=profile.version,
        )


@dataclass
class QuerySignature:
    """Pseudo-query of one item against one block (Example 1).

    Attributes:
        block_id: the target block.
        category: the item category ``c``.
        producer_slot: universe slot of the item's producer, or None when
            out of universe (scores against ``floor_producer``).
        entity_weights: ``(slot, accumulated weight)`` pairs — frequency
            times expansion weight folded together, so the dot product with
            an impact list equals ``F . (W x P)`` of Definition 2.
        oov_weight: total weight of query entities outside the universe
            (scores against ``floor_entity``).
    """

    block_id: int
    category: int
    producer_slot: int | None
    entity_weights: list[tuple[int, float]]
    oov_weight: float

    @classmethod
    def encode(
        cls,
        item: SocialItem,
        weighted_entities: Sequence[tuple[int, float]],
        universe: BlockUniverse,
        block_id: int,
    ) -> "QuerySignature":
        """Encode ``item`` (with its expanded weighted entity list) over a
        block universe."""
        slot_weight: dict[int, float] = {}
        oov = 0.0
        for entity_id, weight in weighted_entities:
            slot = universe.entity_slot(entity_id)
            if slot is None:
                oov += weight
            else:
                slot_weight[slot] = slot_weight.get(slot, 0.0) + weight
        return cls(
            block_id=int(block_id),
            category=int(item.category),
            producer_slot=universe.producer_slot(item.producer),
            entity_weights=sorted(slot_weight.items()),
            oov_weight=oov,
        )

    def entity_sum(self, p_entity: np.ndarray, floor_entity: float) -> float:
        """``sum_e w_e * p^(e|u)`` against one impact list."""
        total = self.oov_weight * floor_entity
        for slot, weight in self.entity_weights:
            total += weight * float(p_entity[slot])
        return total

    def producer_prob(self, p_producer: np.ndarray, floor_producer: float) -> float:
        """``p^(u^p|u)`` against one impact list."""
        if self.producer_slot is None:
            return floor_producer
        return float(p_producer[self.producer_slot])


def relevance_from_parts(
    p_long: float,
    p_producer: float,
    entity_sum: float,
    p_short: float,
    lambda_s: float,
) -> float:
    """Definition 2 / Eq. 3 combination used by both leaves and IEntries."""
    long_score = (
        np.log(max(p_long, PROB_FLOOR))
        + np.log(max(p_producer, PROB_FLOOR))
        + np.log(max(entity_sum, PROB_FLOOR))
    )
    short_score = np.log(max(p_short, PROB_FLOOR))
    return float((1.0 - lambda_s) * long_score + lambda_s * short_score)
