"""The CPPse-index (Section V): hash-routed extended signature trees.

Components:

- :mod:`repro.index.hashing` — the shift-add-xor string hash of Eq. 5 and
  the chained hash table of ``<key, sptr, nextptr>`` triads that maps each
  category-entity pair to the signature trees containing it.
- :mod:`repro.index.blocks` — one-pass clustering of users into blocks by
  cosine similarity of long-term categorical interests.
- :mod:`repro.index.signature` — impact encoding of user profiles,
  frequency encoding of queries (Example 1), block universes with the
  paper's 20% reserved growth zones.
- :mod:`repro.index.sigtree` — the extended signature tree with LEntry /
  IEntry nodes; internal entries aggregate children by component-wise max,
  which makes their relevance an upper bound (Def. 2, Lemmas 1-2).
- :mod:`repro.index.cppse` — :class:`CPPseIndex`: build, the Algorithm 1
  branch-and-bound KNN, and the Algorithm 2 dynamic maintenance.
- :mod:`repro.index.minhash` — MinHash signatures and banded LSH over
  entity sets: the similarity machinery of the near-duplicate collapse
  stage (:mod:`repro.exec.dedup`).
"""

from repro.index.hashing import ChainedHashTable, pair_key, shift_add_xor_hash
from repro.index.blocks import UserBlock, one_pass_clustering, block_statistics
from repro.index.signature import BlockUniverse, QuerySignature, UserVector
from repro.index.sigtree import SignatureTree, LeafEntry, InternalNode
from repro.index.cppse import CPPseIndex
from repro.index.minhash import LSHIndex, MinHasher, jaccard

__all__ = [
    "ChainedHashTable",
    "pair_key",
    "shift_add_xor_hash",
    "UserBlock",
    "one_pass_clustering",
    "block_statistics",
    "BlockUniverse",
    "QuerySignature",
    "UserVector",
    "SignatureTree",
    "LeafEntry",
    "InternalNode",
    "CPPseIndex",
    "LSHIndex",
    "MinHasher",
    "jaccard",
]
