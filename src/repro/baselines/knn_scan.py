"""Naive sequential-scan recommender (the paper's baseline method).

Section V: "a naive method is to compute the similarity between v and each
of social users.  Given a set of n users, this naive method requires n
relevance calculations, which is inappropriate to high speed streams."

This class performs exactly those n per-user relevance calculations with
the reference :class:`~repro.core.matching.MatchingScorer` in a plain
Python loop.  It returns the same ranking as the CPPse-index (tests assert
this over the retrievable user set) and serves as the sequential-cost
yardstick in the efficiency experiments.
"""

from __future__ import annotations

from repro.core.matching import MatchingScorer
from repro.core.profiles import ProfileStore
from repro.datasets.schema import SocialItem


class NaiveScanRecommender:
    """One relevance computation per user per item, no pruning.

    Args:
        scorer: the reference Eq. 1-4 scorer.
        profiles: the user profiles to scan.
    """

    def __init__(self, scorer: MatchingScorer, profiles: ProfileStore) -> None:
        self.scorer = scorer
        self.profiles = profiles

    def score_all(self, item: SocialItem) -> list[tuple[int, float]]:
        """Every user's Eq. 3 score for ``item`` (n relevance calculations)."""
        scored: list[tuple[int, float]] = []
        for user_id in self.profiles.user_ids():
            profile = self.profiles.get(user_id)
            scored.append((user_id, self.scorer.score(item, profile)))
        return scored

    def recommend(self, item: SocialItem, k: int) -> list[tuple[int, float]]:
        """Top-``k`` users, descending score then ascending user id."""
        scored = self.score_all(item)
        scored.sort(key=lambda us: (-us[1], us[0]))
        return scored[: int(k)]
