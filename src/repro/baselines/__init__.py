"""Baselines the paper compares against.

- :class:`~repro.baselines.ctt.CTTRecommender` — CTT [17]: streaming
  collaborative filtering fused with a type (category) factor and a
  temporal decay.  No short-term interest model, no diversity — the
  properties the paper attributes its losses to (Sec. VI-C.4).
- :class:`~repro.baselines.ucd.UCDRecommender` — UCD [36]: a
  diversity-by-design recommender whose user profiles are expanded with
  their neighbours; static preferences, extra per-candidate neighbour cost
  (why it trails CTT in Fig. 10).
- :class:`~repro.baselines.knn_scan.NaiveScanRecommender` — the paper's
  "naive method" reference: one relevance computation per user per item,
  in a plain Python loop (the sequential cost CPPse-index beats).
- :class:`~repro.baselines.hmm_rec.SingleLayerInterestModel` — per-user
  single-layer HMM next-category prediction (the HMM side of Fig. 5).
"""

from repro.baselines.ctt import CTTConfig, CTTRecommender
from repro.baselines.ucd import UCDConfig, UCDRecommender
from repro.baselines.knn_scan import NaiveScanRecommender
from repro.baselines.hmm_rec import SingleLayerInterestModel

__all__ = [
    "CTTConfig",
    "CTTRecommender",
    "UCDConfig",
    "UCDRecommender",
    "NaiveScanRecommender",
    "SingleLayerInterestModel",
]
