"""Per-user single-layer HMM interest prediction (the HMM side of Fig. 5).

Fig. 5 compares next-category prediction accuracy between the classic HMM
(consumer trajectory only) and the BiHMM (consumer trajectory + producer
hidden states).  This module provides the single-layer side: one
:class:`~repro.hmm.base.DiscreteHMM` per user over the user's category
sequence, with the paper's per-user hidden-state-count tuning loop
("we decide the optimal number of hidden states over HMM by testing the
Accuracy of the model at different state number values").
"""

from __future__ import annotations

import numpy as np

from repro.hmm.base import DiscreteHMM


class SingleLayerInterestModel:
    """One single-layer HMM per user over category sequences.

    Args:
        n_categories: category alphabet size.
        n_states: hidden state count for newly trained models.
        seed: base seed, derived per user.
        n_iter: Baum-Welch iteration cap.
    """

    def __init__(
        self, n_categories: int, n_states: int = 3, seed: int = 0, n_iter: int = 20
    ) -> None:
        self.n_categories = int(n_categories)
        self.n_states = int(n_states)
        self.seed = int(seed)
        self.n_iter = int(n_iter)
        self.models: dict[int, DiscreteHMM] = {}

    def fit_user(self, user_id: int, categories: list[int]) -> DiscreteHMM:
        """Train one user's HMM on their category browsing sequence."""
        model = DiscreteHMM(
            self.n_states, self.n_categories, seed=self.seed + 31 * (int(user_id) + 1)
        )
        model.fit([categories], n_iter=self.n_iter)
        self.models[int(user_id)] = model
        return model

    def predict_next(self, user_id: int, history: list[int]) -> int:
        """Most likely next category for the user given ``history``."""
        model = self.models.get(int(user_id))
        if model is None:
            raise KeyError(f"user {user_id} has no trained model")
        if not history:
            return int(np.argmax(model.prior_distribution()))
        dist = model.predict_next_distribution(history)
        return int(np.argmax(dist))

    @staticmethod
    def sequential_accuracy(model: DiscreteHMM, test_categories: list[int], history: list[int]) -> float:
        """Teacher-forced next-step accuracy over ``test_categories``.

        For each test step the model predicts the next category given all
        *true* previous observations, then the true category is appended —
        the paper's "correct prediction percentage of a user's next interest
        category among all".
        """
        if not test_categories:
            return 0.0
        context = list(history)
        hits = 0
        for actual in test_categories:
            if context:
                dist = model.predict_next_distribution(context)
            else:
                dist = model.prior_distribution()
            if int(np.argmax(dist)) == int(actual):
                hits += 1
            context.append(int(actual))
        return hits / len(test_categories)

    @classmethod
    def tune_states(
        cls,
        categories_train: list[int],
        categories_valid: list[int],
        n_categories: int,
        max_states: int = 8,
        seed: int = 0,
        n_iter: int = 20,
    ) -> tuple[int, float, DiscreteHMM]:
        """The paper's per-user state-count search.

        Trains HMMs with 1..``max_states`` hidden states and returns
        ``(optimal_state_count, best_accuracy, best_model)`` measured by
        sequential accuracy on the validation slice.
        """
        best: tuple[int, float, DiscreteHMM] | None = None
        for n_states in range(1, max_states + 1):
            model = DiscreteHMM(n_states, n_categories, seed=seed + n_states)
            model.fit([categories_train], n_iter=n_iter)
            acc = cls.sequential_accuracy(model, categories_valid, categories_train)
            if best is None or acc > best[1]:
                best = (n_states, acc, model)
        assert best is not None
        return best
