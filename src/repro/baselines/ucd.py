"""UCD baseline: user-centric diversity by design (Zanitti et al. [36]).

The paper describes UCD as "a diversity-based method, where user profiles
are expanded with their neighbours" and attributes its losses to neglecting
short-term interest, and its extra runtime to "the diversity-based matching
in it" (Fig. 10).  This implementation follows that description:

- each user's profile is the MLE category + entity preference over their
  whole history (static horizon, no window);
- at fit time every user gets its top-``n_neighbours`` most similar users
  (cosine over category-preference vectors);
- an item is scored against the *expanded* profile: the user's own
  preference blended with the neighbours' — which surfaces items outside
  the user's own past (the diversity-by-design mechanism), at the cost of
  touching every neighbour per candidate pair.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.datasets.schema import Dataset, Interaction, SocialItem


@dataclass(frozen=True)
class UCDConfig:
    """UCD tunables.

    Attributes:
        n_neighbours: neighbours blended into each expanded profile.
        neighbour_weight: blend weight ``eta`` of the neighbour preference.
        smoothing: additive smoothing for preference estimates.
        max_profile_entities: entity counts kept per user (memory bound).
    """

    n_neighbours: int = 5
    neighbour_weight: float = 0.4
    smoothing: float = 0.5
    max_profile_entities: int = 500


class UCDRecommender:
    """Neighbour-expanded diversity recommender (sequential scan)."""

    def __init__(self, config: UCDConfig | None = None) -> None:
        self.config = config or UCDConfig()
        self._category_counts: dict[int, Counter[int]] = defaultdict(Counter)
        self._entity_counts: dict[int, Counter[int]] = defaultdict(Counter)
        self._n_events: Counter[int] = Counter()
        self._n_entity_tokens: Counter[int] = Counter()
        self._neighbours: dict[int, list[int]] = {}
        self._n_categories = 1
        self._n_entities = 1

    # ------------------------------------------------------------------
    # Training / updates
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, train_interactions: Sequence[Interaction] | None = None) -> "UCDRecommender":
        """Build profiles from training interactions, then neighbours."""
        self._n_categories = max(dataset.n_categories, 1)
        self._n_entities = max(len(dataset.entity_names), 1)
        item_by_id = {it.item_id: it for it in dataset.items}
        interactions = (
            list(train_interactions)
            if train_interactions is not None
            else list(dataset.interactions)
        )
        for inter in sorted(interactions, key=lambda i: (i.timestamp, i.item_id)):
            self.update(inter, item_by_id.get(inter.item_id))
        for user_id in dataset.consumer_ids:
            self._n_events.setdefault(user_id, 0)
        self._compute_neighbours()
        return self

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        """Absorb one interaction into the (static-horizon) profile."""
        user = interaction.user_id
        self._category_counts[user][interaction.category] += 1
        self._n_events[user] += 1
        if item is not None:
            entity_counts = self._entity_counts[user]
            for entity in item.entities:
                entity_counts[entity] += 1
                self._n_entity_tokens[user] += 1
            if len(entity_counts) > self.config.max_profile_entities:
                # Keep the heaviest entities; diversity comes from
                # neighbours, not from an unbounded own profile.
                keep = entity_counts.most_common(self.config.max_profile_entities)
                dropped = sum(entity_counts.values()) - sum(c for _, c in keep)
                self._entity_counts[user] = Counter(dict(keep))
                self._n_entity_tokens[user] -= dropped

    def observe_item(self, item: SocialItem) -> None:
        """New upload: UCD profiles are interaction-driven, nothing to do."""

    def _category_vector(self, user: int) -> list[float]:
        counts = self._category_counts.get(user, Counter())
        vec = [0.0] * self._n_categories
        for cat, count in counts.items():
            if 0 <= cat < self._n_categories:
                vec[cat] = float(count)
        return vec

    def _compute_neighbours(self) -> None:
        """Top-N cosine neighbours per user over category preferences."""
        users = sorted(self._n_events)
        vectors = {u: self._category_vector(u) for u in users}
        norms = {u: math.sqrt(sum(x * x for x in v)) for u, v in vectors.items()}
        self._neighbours = {}
        for u in users:
            vu, nu = vectors[u], norms[u]
            if nu <= 0:
                self._neighbours[u] = []
                continue
            sims: list[tuple[float, int]] = []
            for v in users:
                if v == u or norms[v] <= 0:
                    continue
                dot = sum(a * b for a, b in zip(vu, vectors[v]))
                if dot > 0:
                    sims.append((dot / (nu * norms[v]), v))
            sims.sort(key=lambda sv: (-sv[0], sv[1]))
            self._neighbours[u] = [v for _, v in sims[: self.config.n_neighbours]]

    def refresh_neighbours(self) -> None:
        """Re-derive the neighbourhood graph from current profiles."""
        self._compute_neighbours()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _own_score(self, user: int, item: SocialItem) -> float:
        smoothing = self.config.smoothing
        n = self._n_events.get(user, 0)
        cat_count = self._category_counts.get(user, Counter()).get(item.category, 0)
        p_cat = (cat_count + smoothing) / (n + smoothing * self._n_categories)
        tokens = self._n_entity_tokens.get(user, 0)
        entity_counts = self._entity_counts.get(user, Counter())
        p_entities = 0.0
        for entity in item.entities:
            count = entity_counts.get(entity, 0)
            p_entities += (count + smoothing / self._n_entities) / (tokens + smoothing)
        return math.log(max(p_cat, 1e-12)) + math.log(max(p_entities, 1e-12))

    def score(self, user: int, item: SocialItem) -> float:
        """Expanded-profile relevance: own blended with neighbours."""
        eta = self.config.neighbour_weight
        own = self._own_score(user, item)
        neighbours = self._neighbours.get(user, [])
        if not neighbours or eta <= 0.0:
            return own
        neighbour_mean = sum(self._own_score(nb, item) for nb in neighbours) / len(neighbours)
        return (1.0 - eta) * own + eta * neighbour_mean

    def recommend(self, item: SocialItem, k: int) -> list[tuple[int, float]]:
        """Top-``k`` users by sequential scan (touching each neighbour)."""
        scored = [(user, self.score(user, item)) for user in self._n_events]
        scored.sort(key=lambda us: (-us[1], us[0]))
        return scored[: int(k)]
