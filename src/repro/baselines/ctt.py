"""CTT baseline: streaming CF + type + temporal (Huang et al. [17]).

The paper describes CTT as a system that "fuses collaborative filtering,
type and temporal factor together to generate recommendation over streams"
and attributes its losses to ignoring short-term interest and diversity.
This implementation follows that description:

- **CF**: incremental item-based collaborative filtering.  Item-item
  similarity is the cosine of their interacting-user sets, maintained
  online; a user's CF affinity for item ``v`` sums the similarity of ``v``
  to the user's recent items.
- **Type**: the user's MLE category preference over the whole history
  (no window — exactly what ssRec's short-term term adds over this).
- **Temporal**: recent interactions weigh more via exponential decay.

Recommendation over a huge user set is a sequential scan (the efficiency
profile Fig. 10 shows).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.datasets.schema import Dataset, Interaction, SocialItem


@dataclass(frozen=True)
class CTTConfig:
    """CTT tunables.

    Attributes:
        recent_items: size of each user's recent-item list feeding CF.
        decay: exponential temporal-decay rate (per unit of stream time).
        w_cf: weight of the CF factor.
        w_type: weight of the type (category preference) factor.
        smoothing: additive smoothing for the category preference.
    """

    recent_items: int = 20
    decay: float = 4.0
    w_cf: float = 1.0
    w_type: float = 1.0
    smoothing: float = 0.5


class CTTRecommender:
    """Streaming CF + type + temporal recommender (sequential scan)."""

    def __init__(self, config: CTTConfig | None = None) -> None:
        self.config = config or CTTConfig()
        self._users_of_item: dict[int, set[int]] = defaultdict(set)
        self._recent_of_user: dict[int, list[tuple[int, float]]] = defaultdict(list)
        self._category_counts: dict[int, Counter[int]] = defaultdict(Counter)
        self._category_time: dict[int, dict[int, float]] = defaultdict(dict)
        self._n_events: Counter[int] = Counter()
        self._n_categories = 1
        self._clock = 0.0
        self._sim_cache: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Training / updates
    # ------------------------------------------------------------------
    def fit(self, dataset: Dataset, train_interactions: Sequence[Interaction] | None = None) -> "CTTRecommender":
        """Ingest the training interactions in time order."""
        self._n_categories = max(dataset.n_categories, 1)
        interactions = (
            list(train_interactions)
            if train_interactions is not None
            else list(dataset.interactions)
        )
        interactions.sort(key=lambda i: (i.timestamp, i.item_id))
        for inter in interactions:
            self.update(inter)
        # Make every consumer rankable even with no training history.
        for user_id in dataset.consumer_ids:
            self._n_events.setdefault(user_id, 0)
        return self

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        """Absorb one interaction (the streaming update path)."""
        user, item_id = interaction.user_id, interaction.item_id
        self._users_of_item[item_id].add(user)
        # New co-interaction invalidates cached sims involving this item.
        self._sim_cache = {
            key: value for key, value in self._sim_cache.items() if item_id not in key
        }
        recent = self._recent_of_user[user]
        recent.append((item_id, interaction.timestamp))
        if len(recent) > self.config.recent_items:
            recent.pop(0)
        self._category_counts[user][interaction.category] += 1
        self._category_time[user][interaction.category] = interaction.timestamp
        self._n_events[user] += 1
        self._clock = max(self._clock, interaction.timestamp)

    def observe_item(self, item: SocialItem) -> None:
        """New upload: CTT has no content model, nothing to do."""
        self._clock = max(self._clock, item.timestamp)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _item_similarity(self, a: int, b: int) -> float:
        """Cosine of the items' interacting-user sets (cached)."""
        if a == b:
            return 1.0
        key = (a, b) if a < b else (b, a)
        cached = self._sim_cache.get(key)
        if cached is not None:
            return cached
        users_a = self._users_of_item.get(a)
        users_b = self._users_of_item.get(b)
        if not users_a or not users_b:
            sim = 0.0
        else:
            inter = len(users_a & users_b)
            sim = inter / math.sqrt(len(users_a) * len(users_b)) if inter else 0.0
        self._sim_cache[key] = sim
        return sim

    def _cf_score(self, user: int, item: SocialItem) -> float:
        score = 0.0
        for recent_item, t in self._recent_of_user.get(user, ()):
            sim = self._item_similarity(item.item_id, recent_item)
            if sim > 0.0:
                score += sim * math.exp(-self.config.decay * max(0.0, self._clock - t))
        return score

    def _type_score(self, user: int, item: SocialItem) -> float:
        counts = self._category_counts.get(user)
        n = self._n_events.get(user, 0)
        smoothing = self.config.smoothing
        count = counts.get(item.category, 0) if counts else 0
        pref = (count + smoothing) / (n + smoothing * self._n_categories)
        last_t = self._category_time.get(user, {}).get(item.category)
        if last_t is None:
            return pref
        # Temporal factor: the preference is fresher if exercised recently.
        freshness = math.exp(-self.config.decay * max(0.0, self._clock - last_t))
        return pref * (1.0 + freshness)

    def score(self, user: int, item: SocialItem) -> float:
        """CTT relevance of ``item`` for ``user``."""
        return self.config.w_cf * self._cf_score(user, item) + self.config.w_type * self._type_score(
            user, item
        )

    def recommend(self, item: SocialItem, k: int) -> list[tuple[int, float]]:
        """Top-``k`` users by sequential scan over all known users."""
        scored = [(user, self.score(user, item)) for user in self._n_events]
        scored.sort(key=lambda us: (-us[1], us[0]))
        return scored[: int(k)]
