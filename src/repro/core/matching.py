"""Entity-based item-user matching: Equations 1-4 of the paper.

The relevance of item ``v = <c, u^p, E>`` to consumer ``u^c`` is::

    R_l(v, u^c) = log p(c|u^c) + log p^(u^p|u^c) + log sum_{e in E u E'} w_e * p^(e|u^c)   (Eq. 2)
    R_s(v, u^c) = log p_s(c|u^c)                                                          (Eq. 4)
    R(v, u^c)   = (1 - lambda_s) * R_l + lambda_s * R_s                                   (Eq. 3)

with ``p(c|u^c)`` / ``p_s(c|u^c)`` from the BiHMM, ``p^`` Dirichlet-smoothed
MLE over the long-term list ("To prevent the zero probability, we apply the
Dirichlet smoothing technique to both producer and entities"), and ``E'``
the proximity-expansion set with weights ``w_e`` (original entities weigh
1, repetitions counted — Example 1).

Two scorer implementations share the exact same arithmetic:

- :class:`MatchingScorer` — per-(item, user) reference implementation; the
  CPPse-index leaf scoring must agree with it bit-for-bit, which the tests
  assert.
- :class:`VectorizedMatcher` — NumPy batch scorer over all users at once,
  used by the naive-scan recommender and by the evaluation harness's
  lambda-sweep (R_l and R_s are returned separately so Eq. 3 can be
  recombined for free).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import SsRecConfig
from repro.core.interest import InterestPredictor
from repro.core.profiles import ProfileStore, UserProfile
from repro.datasets.schema import SocialItem
from repro.entities.expansion import EntityExpander
from repro.hmm.utils import PROB_FLOOR


@dataclass(frozen=True)
class ScoreParts:
    """The four probabilities entering Eq. 2-4, before log/combination.

    Keeping the parts separate lets callers sweep ``lambda_s`` without
    rescoring (Fig. 7) and lets the index prove its upper bound per part.
    """

    p_long_category: float
    p_producer: float
    entity_sum: float
    p_short_category: float

    def long_score(self) -> float:
        """R_l of Eq. 2 (log-space)."""
        return (
            math.log(max(self.p_long_category, PROB_FLOOR))
            + math.log(max(self.p_producer, PROB_FLOOR))
            + math.log(max(self.entity_sum, PROB_FLOOR))
        )

    def short_score(self) -> float:
        """R_s of Eq. 4 (log-space)."""
        return math.log(max(self.p_short_category, PROB_FLOOR))

    def combine(self, lambda_s: float) -> float:
        """R of Eq. 3."""
        return (1.0 - lambda_s) * self.long_score() + lambda_s * self.short_score()


class MatchingScorer:
    """Reference per-pair scorer for Eq. 1-4.

    Args:
        interest: the BiHMM-backed predictor supplying ``p(c|u^c)``.
        expander: entity expander; ignored when ``config.use_expansion`` is
            off (the ssRec-ne ablation).
        config: ssRec tunables (lambda_s, Dirichlet mass, expansion).
        n_producers: global producer vocabulary size (background model of
            the producer smoothing).
        n_entities: global entity vocabulary size (background model of the
            entity smoothing).
    """

    def __init__(
        self,
        interest: InterestPredictor,
        expander: EntityExpander | None,
        config: SsRecConfig,
        n_producers: int,
        n_entities: int,
    ) -> None:
        if n_producers < 1:
            raise ValueError(f"n_producers must be >= 1, got {n_producers}")
        if n_entities < 1:
            raise ValueError(f"n_entities must be >= 1, got {n_entities}")
        self.interest = interest
        self.expander = expander
        self.config = config
        self.n_producers = int(n_producers)
        self.n_entities = int(n_entities)
        self._query_cache: dict[int, list[tuple[int, float]]] = {}

    # ------------------------------------------------------------------
    # Query construction
    # ------------------------------------------------------------------
    def expanded_query(self, item: SocialItem) -> list[tuple[int, float]]:
        """``(entity_id, weight)`` pairs of ``E u E'``.

        Original entities carry weight 1 and keep their multiplicity;
        expansion entities carry their proximity weight (Sec. IV-B).
        Cached per item id — queries are immutable.
        """
        cached = self._query_cache.get(item.item_id)
        if cached is not None:
            return cached
        query: list[tuple[int, float]] = [(int(e), 1.0) for e in item.entities]
        if self.expander is not None and self.config.use_expansion:
            for expansion in self.expander.expand_set(item.category, item.entities):
                query.append((expansion.entity_id, expansion.weight))
        self._query_cache[item.item_id] = query
        return query

    # ------------------------------------------------------------------
    # Smoothed MLE estimates (Sec. IV-C)
    # ------------------------------------------------------------------
    def producer_probability(self, profile: UserProfile, producer: int) -> float:
        """Dirichlet-smoothed ``p^(u^p | u^c)`` over the long-term list."""
        mu = self.config.dirichlet_mu
        count = profile.producer_counts.get(int(producer), 0)
        return (count + mu / self.n_producers) / (profile.n_long_events + mu)

    def entity_probability(self, profile: UserProfile, entity: int) -> float:
        """Dirichlet-smoothed ``p^(e | u^c)`` over the long-term list."""
        mu = self.config.dirichlet_mu
        count = profile.entity_counts.get(int(entity), 0)
        return (count + mu / self.n_entities) / (profile.n_entity_tokens + mu)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score_parts(self, item: SocialItem, profile: UserProfile) -> ScoreParts:
        """The Eq. 2-4 probability parts for one (item, user) pair."""
        entity_sum = 0.0
        for entity_id, weight in self.expanded_query(item):
            entity_sum += weight * self.entity_probability(profile, entity_id)
        return ScoreParts(
            p_long_category=self.interest.long_term_probability(profile, item.category),
            p_producer=self.producer_probability(profile, item.producer),
            entity_sum=entity_sum,
            p_short_category=self.interest.short_term_probability(profile, item.category),
        )

    def score(self, item: SocialItem, profile: UserProfile) -> float:
        """R(v, u^c) of Eq. 3."""
        return self.score_parts(item, profile).combine(self.config.lambda_s)


class VectorizedMatcher:
    """Batch scorer: R_l and R_s for *all* registered users at once.

    Maintains dense per-user count matrices synchronized lazily with the
    profiles (via their version counters), so one item scores against U
    users in a handful of NumPy gathers.  Produces numbers identical to
    :class:`MatchingScorer` — asserted by tests.

    Args:
        scorer: the reference scorer (shares interest/expander/config).
        profiles: the profile store to mirror.
    """

    def __init__(self, scorer: MatchingScorer, profiles: ProfileStore) -> None:
        self.scorer = scorer
        self.profiles = profiles
        self._user_ids: list[int] = []
        self._user_id_array: np.ndarray | None = None
        self._row_of: dict[int, int] = {}
        self._versions: dict[int, int] = {}
        # Store-version the rows were last synced at; lets sync() answer
        # "nothing changed" in O(1) instead of sweeping every profile's
        # version counter per query (None = never synced).
        self._synced_store_version: int | None = None
        # Column caches for the batched path, valid for one data epoch (any
        # refreshed/added row invalidates them — the underlying count
        # matrices changed).
        self._data_epoch = 0
        self._cols_epoch = -1
        self._producer_col_cache: dict[int, np.ndarray] = {}
        self._entity_col_cache: dict[int, np.ndarray] = {}
        # Sparse overflow counts for symbols outside the trained universe
        # (a producer or entity first seen mid-stream has no dense column;
        # dropping its counts would silently diverge from the reference
        # scorer and the CPPse-index, which both count it).
        self._extra_producer_counts: dict[int, dict[int, float]] = {}
        self._extra_entity_counts: dict[int, dict[int, float]] = {}
        self._capacity = 0
        config = scorer.config
        self._mu = config.dirichlet_mu
        self._producer_counts = np.zeros((0, scorer.n_producers), dtype=np.float64)
        self._entity_counts = np.zeros((0, scorer.n_entities), dtype=np.float64)
        self._n_long = np.zeros(0, dtype=np.float64)
        self._n_tokens = np.zeros(0, dtype=np.float64)
        n_categories = scorer.interest.n_categories
        self._long_dist = np.zeros((0, n_categories), dtype=np.float64)
        self._short_dist = np.zeros((0, n_categories), dtype=np.float64)

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def _grow(self, new_capacity: int) -> None:
        def grown(arr: np.ndarray) -> np.ndarray:
            shape = (new_capacity,) + arr.shape[1:]
            out = np.zeros(shape, dtype=arr.dtype)
            out[: arr.shape[0]] = arr
            return out

        self._producer_counts = grown(self._producer_counts)
        self._entity_counts = grown(self._entity_counts)
        self._n_long = grown(self._n_long)
        self._n_tokens = grown(self._n_tokens)
        self._long_dist = grown(self._long_dist)
        self._short_dist = grown(self._short_dist)
        self._capacity = new_capacity

    def _ensure_row(self, user_id: int) -> int:
        row = self._row_of.get(user_id)
        if row is not None:
            return row
        row = len(self._user_ids)
        if row >= self._capacity:
            self._grow(max(16, self._capacity * 2, row + 1))
        self._user_ids.append(user_id)
        self._user_id_array = None
        self._row_of[user_id] = row
        return row

    def _refresh_row(self, profile: UserProfile) -> None:
        row = self._ensure_row(profile.user_id)
        if self._versions.get(profile.user_id) == profile.version:
            return
        self._producer_counts[row, :] = 0.0
        self._clear_overflow_row(self._extra_producer_counts, row)
        for producer, count in profile.producer_counts.items():
            if 0 <= producer < self.scorer.n_producers:
                self._producer_counts[row, producer] = count
            else:
                self._extra_producer_counts.setdefault(int(producer), {})[row] = count
        self._entity_counts[row, :] = 0.0
        self._clear_overflow_row(self._extra_entity_counts, row)
        for entity, count in profile.entity_counts.items():
            if 0 <= entity < self.scorer.n_entities:
                self._entity_counts[row, entity] = count
            else:
                self._extra_entity_counts.setdefault(int(entity), {})[row] = count
        self._n_long[row] = profile.n_long_events
        self._n_tokens[row] = profile.n_entity_tokens
        self._long_dist[row] = self.scorer.interest.long_term_distribution(profile)
        self._short_dist[row] = self.scorer.interest.short_term_distribution(profile)
        self._versions[profile.user_id] = profile.version
        self._data_epoch += 1

    def sync(self) -> None:
        """Bring every registered profile's row up to date.

        Fast path: when the store's mutation counter is unchanged since
        the last sync, nothing can be stale and the per-profile sweep is
        skipped entirely — per-item serving otherwise pays an O(U)
        version scan on every query.  The contract this rests on: all
        profile mutations route through the :class:`ProfileStore`
        (``record``/``add``/``get_or_create``); out-of-band mutation of a
        profile object must be followed by ``store.touch()``.
        """
        store_version = getattr(self.profiles, "version", None)
        if store_version is not None and store_version == self._synced_store_version:
            return
        for profile in self.profiles:
            self._refresh_row(profile)
        self._synced_store_version = store_version

    @property
    def user_ids(self) -> list[int]:
        """Row order of the score arrays."""
        return list(self._user_ids)

    def user_id_array(self) -> np.ndarray:
        """Row-aligned user ids as one cached integer array.

        Shared by the selection path and the native kernels
        (:mod:`repro.core.kernels`), which break score ties on user id —
        never on the matcher's internal row order.
        """
        if self._user_id_array is None or self._user_id_array.size != len(self._user_ids):
            self._user_id_array = np.asarray(self._user_ids, dtype=np.int64)
        return self._user_id_array

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The dense score-state arrays, by name.

        This is the read-mostly state the shared-memory backend
        (:mod:`repro.serve.shmem`) publishes into segments — the stacked
        per-user count matrices and smoothed interest columns that
        dominate a shard's footprint.  The property tests round-trip
        these through publish/attach and assert bitwise equality; the
        mapping exposes the *live* arrays (no copies), so callers must
        not mutate through it.
        """
        return {
            "producer_counts": self._producer_counts,
            "entity_counts": self._entity_counts,
            "n_long": self._n_long,
            "n_tokens": self._n_tokens,
            "long_dist": self._long_dist,
            "short_dist": self._short_dist,
        }

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _producer_column(self, producer: int) -> np.ndarray:
        """Smoothed ``p^(u^p|u)`` over all user rows for one producer.

        Shared by the per-item and batched paths so both produce
        bit-identical probabilities (the batch path additionally caches
        columns across the items of one batch).  Producers outside the
        trained universe read their counts from the sparse overflow store,
        so mid-stream producers score identically to the reference scorer.
        """
        n = len(self._user_ids)
        mu = self._mu
        if 0 <= producer < self.scorer.n_producers:
            count = self._producer_counts[:n, producer]
        else:
            count = self._overflow_column(self._extra_producer_counts.get(producer), n)
        return (count + mu / self.scorer.n_producers) / (self._n_long[:n] + mu)

    @staticmethod
    def _clear_overflow_row(store: dict[int, dict[int, float]], row: int) -> None:
        """Drop ``row``'s counts from every overflow symbol, deleting
        symbols that empty — the store tracks live counts only, so a
        long-lived server never pays for symbols no current profile holds."""
        emptied = []
        for symbol, overflow in store.items():
            overflow.pop(row, None)
            if not overflow:
                emptied.append(symbol)
        for symbol in emptied:
            del store[symbol]

    @staticmethod
    def _overflow_column(overflow: dict[int, float] | None, n: int) -> np.ndarray:
        """Dense column of one out-of-universe symbol's sparse counts."""
        count = np.zeros(n)
        if overflow:
            for row, value in overflow.items():
                if row < n:
                    count[row] = value
        return count

    def _entity_column(self, entity_id: int) -> np.ndarray:
        """Smoothed ``p^(e|u)`` over all user rows for one entity."""
        n = len(self._user_ids)
        mu = self._mu
        if 0 <= entity_id < self.scorer.n_entities:
            count = self._entity_counts[:n, entity_id]
        else:
            count = self._overflow_column(self._extra_entity_counts.get(entity_id), n)
        return (count + mu / self.scorer.n_entities) / (self._n_tokens[:n] + mu)

    def _pair_parts(
        self,
        item: SocialItem,
        producer_cols: dict[int, np.ndarray] | None = None,
        entity_cols: dict[int, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(p_producer, entity_sum)`` of one item over all user rows,
        assuming rows are already synced.

        ``producer_cols`` / ``entity_cols`` are optional cross-item caches:
        within a micro-batch many items share a producer or query entities,
        so their smoothed columns are computed once and reused.
        """
        n = len(self._user_ids)
        producer = int(item.producer)
        if producer_cols is not None and producer in producer_cols:
            p_producer = producer_cols[producer]
        else:
            p_producer = self._producer_column(producer)
            if producer_cols is not None:
                producer_cols[producer] = p_producer
        entity_sum = np.zeros(n)
        for entity_id, weight in self.scorer.expanded_query(item):
            if entity_cols is not None:
                col = entity_cols.get(entity_id)
                if col is None:
                    col = self._entity_column(entity_id)
                    entity_cols[entity_id] = col
            else:
                col = self._entity_column(entity_id)
            entity_sum += weight * col
        return p_producer, entity_sum

    @staticmethod
    def _combine_parts(
        p_long: np.ndarray,
        p_producer: np.ndarray,
        entity_sum: np.ndarray,
        p_short: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 2/4 in log-space; elementwise, so vectors and matrices both
        work — applying it per row or once on stacked rows is bit-identical."""
        r_long = (
            np.log(p_long)
            + np.log(np.maximum(p_producer, PROB_FLOOR))
            + np.log(np.maximum(entity_sum, PROB_FLOOR))
        )
        r_short = np.log(p_short)
        return r_long, r_short

    def score_components(self, item: SocialItem) -> tuple[np.ndarray, np.ndarray]:
        """``(R_l, R_s)`` arrays over all users (row order: ``user_ids``).

        Callers combine with Eq. 3 at any ``lambda_s``:
        ``R = (1 - lam) * R_l + lam * R_s``.
        """
        self.sync()
        n = len(self._user_ids)
        if n == 0:
            return np.zeros(0), np.zeros(0)
        c = item.category
        p_long = np.maximum(self._long_dist[:n, c], PROB_FLOOR)
        p_short = np.maximum(self._short_dist[:n, c], PROB_FLOOR)
        p_producer, entity_sum = self._pair_parts(item)
        return self._combine_parts(p_long, p_producer, entity_sum, p_short)

    def score_components_batch(
        self, items: Sequence[SocialItem]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(R_l, R_s)`` matrices of shape ``[n_items, n_users]``.

        The batched path amortizes over the whole micro-batch what the
        per-item path pays per call: one profile sync instead of one per
        item, one smoothed producer/entity column per distinct symbol
        instead of one per (item, symbol) occurrence, one gather for all
        category parts, and one log/combine pass over the stacked part
        matrices.  Row ``i`` is bit-identical to
        ``score_components(items[i])`` on the same state.
        """
        self.sync()
        n = len(self._user_ids)
        n_items = len(items)
        if n == 0 or n_items == 0:
            return np.zeros((n_items, n)), np.zeros((n_items, n))
        categories = np.fromiter((item.category for item in items), dtype=np.intp)
        p_long = np.maximum(self._long_dist[:n, categories].T, PROB_FLOOR)
        p_short = np.maximum(self._short_dist[:n, categories].T, PROB_FLOOR)
        if self._cols_epoch != self._data_epoch:
            self._producer_col_cache.clear()
            self._entity_col_cache.clear()
            self._cols_epoch = self._data_epoch
        producer_cols = self._producer_col_cache
        entity_cols = self._entity_col_cache
        p_producer = np.empty((n_items, n), dtype=np.float64)
        entity_sum = np.empty((n_items, n), dtype=np.float64)
        for row, item in enumerate(items):
            p_producer[row], entity_sum[row] = self._pair_parts(
                item, producer_cols, entity_cols
            )
        return self._combine_parts(p_long, p_producer, entity_sum, p_short)

    def score_all(self, item: SocialItem, lambda_s: float | None = None) -> np.ndarray:
        """Eq. 3 scores over all users."""
        lam = self.scorer.config.lambda_s if lambda_s is None else float(lambda_s)
        r_long, r_short = self.score_components(item)
        return (1.0 - lam) * r_long + lam * r_short

    def score_all_batch(
        self, items: Sequence[SocialItem], lambda_s: float | None = None
    ) -> np.ndarray:
        """Eq. 3 score matrix ``[n_items, n_users]`` for a micro-batch."""
        lam = self.scorer.config.lambda_s if lambda_s is None else float(lambda_s)
        r_long, r_short = self.score_components_batch(items)
        return (1.0 - lam) * r_long + lam * r_short

    def _select_top_k(self, scores: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Top-``k`` ``(user_id, score)`` by ``(-score, user_id)`` order.

        For ``k`` well below the population a partial selection narrows the
        candidate set before the exact sort; the threshold keeps every score
        tied with the k-th best, so the result equals a full sort's prefix.
        ``k == 0`` (an empty recommendation window) yields an empty list.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if k == 0 or scores.size == 0:
            return []
        k = min(int(k), scores.size)
        user_ids = self.user_id_array()
        if k < scores.size // 2:
            kth_best = np.partition(scores, scores.size - k)[scores.size - k]
            candidates = np.flatnonzero(scores >= kth_best)
            order = candidates[np.lexsort((user_ids[candidates], -scores[candidates]))]
        else:
            order = np.lexsort((user_ids, -scores))
        return [(int(user_ids[i]), float(scores[i])) for i in order[:k]]

    def select_top_k(self, scores: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Public selection entry point for the execution-plan layer
        (:class:`repro.exec.ops.TopKSelectOp`); same contract as
        :meth:`_select_top_k`."""
        return self._select_top_k(scores, k)

    def top_k(self, item: SocialItem, k: int, lambda_s: float | None = None) -> list[tuple[int, float]]:
        """Top-``k`` ``(user_id, score)`` pairs, ties broken by user id."""
        return self._select_top_k(self.score_all(item, lambda_s=lambda_s), k)

    def top_k_batch(
        self, items: Sequence[SocialItem], k: int, lambda_s: float | None = None
    ) -> list[list[tuple[int, float]]]:
        """Per-item top-``k`` lists for a micro-batch (one score matrix).

        Entry ``i`` equals ``top_k(items[i], k)`` evaluated on the same
        profile state — the batch amortizes sync and column construction
        but never changes results.
        """
        score_matrix = self.score_all_batch(items, lambda_s=lambda_s)
        return [self._select_top_k(score_matrix[i], k) for i in range(len(items))]
