"""Native-speed scoring kernels: the optional compiled backend of ScoreOp.

The ``scoring: "native"`` execution-plan axis routes serving through the
``@njit(cache=True)`` kernels in this module instead of the NumPy
batch scorer.  The kernels fuse what :class:`~repro.core.matching.
VectorizedMatcher` does in separate passes — the category/producer/entity
gathers, the Dirichlet smoothing, the Eq. 2-4 log/combine and the partial
top-k selection — into single loops over the arrays the matcher already
stacks, so a scan-batch query touches each user row once instead of once
per pipeline stage.  The index path reuses Algorithm 1's probe and bound
machinery (tree location, root upper bounds, the ``1e-12`` tie-tolerant
pruning rule) and replaces the per-leaf Python descent with one fused
scoring pass per admitted tree.

**Exactness discipline.**  The kernels replicate the matcher's arithmetic
operation for operation (same smoothing, same floors, same accumulation
order over the expanded query), so native scores may differ from the
vectorized path only at the ULP level: the kernels take scalar ``log``
(libm) per element where NumPy applies its SIMD ``np.log`` over arrays —
the exact divergence already documented between the oracle's ``math.log``
and the matcher's ``np.log`` in :mod:`repro.sim.conformance`.  The
``*-native`` plans are therefore anchored *within the 1e-9 tie
discipline* to their vectorized anchors rather than bit-for-bit
(``ExecPlan.anchor_within_ties``); the index path's tree-level pruning
skips a tree only when its upper bound is below the running k-th best by
more than ``1e-12`` — three orders of magnitude under the judge's
tolerance, so pruning can never cost a within-ties match.

**Optional dependency.**  numba is an extra (``pip install .[native]``),
never a requirement: when it is missing, disabled (``REPRO_NATIVE=0``) or
fails the one-time kernel self-test, ``native_ready()`` answers False and
plan compilation falls back to the vectorized pipeline — bit-identical
serving, one ``RuntimeWarning``, and a fallback counter exposed through
:func:`obs_registry`.  Without numba the ``njit`` decorator below is a
no-op, so every kernel stays callable as plain Python — which is how the
test suite exercises the kernel logic on machines without the extra.
"""

from __future__ import annotations

import heapq
import math
import os
import warnings
from collections.abc import Sequence

import numpy as np

from repro.hmm.utils import PROB_FLOOR

try:  # pragma: no cover - exercised only where the extra is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the fallback decorator below runs
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[no-redef]  # numba absent
        """No-op stand-in: kernels remain plain-Python callables."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


# ----------------------------------------------------------------------
# Availability gate, fallback accounting
# ----------------------------------------------------------------------
_ready: bool | None = None
_fallbacks = 0
_warned = False


def _reset_native_state() -> None:
    """Test hook: forget the cached readiness probe and fallback counters."""
    global _ready, _fallbacks, _warned
    _ready = None
    _fallbacks = 0
    _warned = False


def _self_test() -> bool:
    """Compile and sanity-check the kernels on a tiny fixed input.

    Run once per process before the native path is trusted: a numba
    version that fails to compile these kernels (or compiles them wrong)
    must demote to the vectorized fallback, not crash or corrupt serving.
    The reference values are computed with plain NumPy here, compared
    within the conformance tie tolerance.
    """
    n_users, n_items = 3, 2
    long_dist = np.array([[0.5, 0.5], [0.9, 0.1], [0.2, 0.8]])
    short_dist = np.array([[0.4, 0.6], [0.7, 0.3], [0.5, 0.5]])
    producer_counts = np.array([[2.0, 0.0], [0.0, 3.0], [1.0, 1.0]])
    entity_counts = np.array([[1.0, 2.0, 0.0], [0.0, 1.0, 4.0], [2.0, 0.0, 1.0]])
    n_long = np.array([2.0, 3.0, 2.0])
    n_tokens = np.array([3.0, 5.0, 3.0])
    cat = np.array([0, 1], dtype=np.int64)
    prod = np.array([0, 1], dtype=np.int64)
    ent_idx = np.array([0, 2, 1], dtype=np.int64)
    ent_w = np.array([1.0, 0.5, 1.0])
    ent_start = np.array([0, 2, 3], dtype=np.int64)
    mu, lam = 10.0, 0.4
    rows = np.arange(n_users, dtype=np.int64)
    out = np.empty((n_items, n_users))
    for i in range(n_items):
        _fused_scores(
            int(cat[i]), int(prod[i]), ent_idx, ent_w, int(ent_start[i]),
            int(ent_start[i + 1]), rows, producer_counts, entity_counts,
            n_long, n_tokens, long_dist, short_dist, mu, 2, 3, PROB_FLOOR,
            lam, out[i],
        )
        p_long = np.maximum(long_dist[:, cat[i]], PROB_FLOOR)
        p_short = np.maximum(short_dist[:, cat[i]], PROB_FLOOR)
        p_prod = (producer_counts[:, prod[i]] + mu / 2) / (n_long + mu)
        esum = np.zeros(n_users)
        for j in range(ent_start[i], ent_start[i + 1]):
            esum += ent_w[j] * (entity_counts[:, ent_idx[j]] + mu / 3) / (n_tokens + mu)
        r_long = (
            np.log(p_long)
            + np.log(np.maximum(p_prod, PROB_FLOOR))
            + np.log(np.maximum(esum, PROB_FLOOR))
        )
        want = (1.0 - lam) * r_long + lam * np.log(p_short)
        if not np.allclose(out[i], want, rtol=0.0, atol=1e-9):
            return False
    user_ids = np.array([7, 3, 9], dtype=np.int64)
    out_idx = np.empty(2, dtype=np.int64)
    count = _topk_select(out[0], user_ids, 2, out_idx)
    order = sorted(range(n_users), key=lambda r: (-out[0][r], user_ids[r]))
    if count != 2 or list(out_idx[:2]) != order[:2]:
        return False
    scratch = np.empty(n_users)
    count = _fused_topk(
        int(cat[0]), int(prod[0]), ent_idx, ent_w, 0, int(ent_start[1]), rows,
        user_ids, producer_counts, entity_counts, n_long, n_tokens, long_dist,
        short_dist, mu, 2, 3, PROB_FLOOR, lam, 2, scratch, out_idx,
    )
    return count == 2 and list(out_idx[:2]) == order[:2]


def native_ready() -> bool:
    """Whether the compiled kernels are available and trusted.

    False when numba is not installed, when ``REPRO_NATIVE=0`` disables
    the backend, or when the one-time self-test failed.  The probe result
    is cached per process (the self-test pays the JIT compile).
    """
    global _ready
    if os.environ.get("REPRO_NATIVE", "") == "0":
        return False
    if _ready is None:
        if not NUMBA_AVAILABLE:
            _ready = False
        else:
            try:
                _ready = bool(_self_test())
            except Exception:  # pragma: no cover - depends on numba install
                _ready = False
            if not _ready:  # pragma: no cover - depends on numba install
                warnings.warn(
                    "numba is installed but the native scoring kernels failed "
                    "their self-test; serving falls back to the vectorized path",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return _ready


def record_fallback(plan_name: str) -> None:
    """Count one native->vectorized fallback; warn on the first only."""
    global _fallbacks, _warned
    _fallbacks += 1
    if not _warned:
        _warned = True
        warnings.warn(
            f"plan {plan_name!r} requested native scoring but the compiled "
            f"kernels are unavailable (numba missing, REPRO_NATIVE=0, or a "
            f"failed self-test); serving through the bit-identical "
            f"vectorized path instead",
            RuntimeWarning,
            stacklevel=3,
        )


def fallback_count() -> int:
    """Native plans served through the vectorized fallback this process."""
    return _fallbacks


def obs_registry():
    """Kernel-backend telemetry as a mergeable
    :class:`~repro.obs.metrics.MetricsRegistry` (same pattern as the
    shard/server registries): whether the native path is live and how
    many native plans fell back to vectorized serving."""
    from repro.obs.metrics import MetricsRegistry  # local: keeps core import-light

    registry = MetricsRegistry()
    registry.gauge("native.ready").set(1.0 if native_ready() else 0.0)
    registry.counter("native.fallbacks").inc(_fallbacks)
    return registry


# ----------------------------------------------------------------------
# Kernels (njit where numba is present, plain Python otherwise)
# ----------------------------------------------------------------------
@njit(cache=True)
def _fused_scores(
    category,
    producer,
    ent_idx,
    ent_w,
    ent_lo,
    ent_hi,
    rows,
    producer_counts,
    entity_counts,
    n_long,
    n_tokens,
    long_dist,
    short_dist,
    mu,
    n_producers,
    n_entities,
    floor,
    lam,
    out,
):  # pragma: no cover - measured via drivers; compiled body uncounted
    """Eq. 2-4 for one item over the user rows in ``rows``, fused.

    One pass per row: gather the category/producer/entity state, smooth,
    floor, log, combine — the same arithmetic as
    ``VectorizedMatcher.score_components`` in the same order, with scalar
    ``log`` standing in for ``np.log`` (ULP-level divergence only; see
    the module docstring).  ``out[j]`` receives the score of
    ``rows[j]``.  Only in-universe symbols reach this kernel — the
    drivers route items touching out-of-universe overflow symbols through
    the matcher instead.
    """
    prod_prior = mu / n_producers
    ent_prior = mu / n_entities
    for j in range(rows.shape[0]):
        u = rows[j]
        p_long = long_dist[u, category]
        if p_long < floor:
            p_long = floor
        p_short = short_dist[u, category]
        if p_short < floor:
            p_short = floor
        p_prod = (producer_counts[u, producer] + prod_prior) / (n_long[u] + mu)
        if p_prod < floor:
            p_prod = floor
        ent_sum = 0.0
        inv_tokens = 1.0 / (n_tokens[u] + mu)
        for t in range(ent_lo, ent_hi):
            ent_sum += ent_w[t] * ((entity_counts[u, ent_idx[t]] + ent_prior) * inv_tokens)
        if ent_sum < floor:
            ent_sum = floor
        r_long = math.log(p_long) + math.log(p_prod) + math.log(ent_sum)
        out[j] = (1.0 - lam) * r_long + lam * math.log(p_short)
    return 0


@njit(cache=True)
def _worse(scores, user_ids, a, b):  # pragma: no cover - see _fused_scores
    """True when candidate ``a`` ranks strictly below ``b`` in the
    ``(-score, user_id)`` order (user ids are unique, so no third key)."""
    if scores[a] != scores[b]:
        return scores[a] < scores[b]
    return user_ids[a] > user_ids[b]


@njit(cache=True)
def _topk_select(scores, user_ids, k, out_idx):  # pragma: no cover - see above
    """Partial top-k by ``(-score, user_id)`` without sorting the rest.

    A bounded min-heap on rank badness holds the best ``k`` candidates
    seen; the final extraction writes candidate indices into ``out_idx``
    best-first.  Returns the number of entries written
    (``min(k, len(scores))``).  Equivalent to the matcher's
    partition+lexsort selection, fused into the scoring pass's dtype.
    """
    n = scores.shape[0]
    m = k if k < n else n
    if m <= 0:
        return 0
    heap = np.empty(m, dtype=np.int64)
    size = 0
    for i in range(n):
        if size < m:
            heap[size] = i
            child = size
            size += 1
            while child > 0:  # sift up: worst candidate at the root
                parent = (child - 1) // 2
                if _worse(scores, user_ids, heap[child], heap[parent]):
                    heap[child], heap[parent] = heap[parent], heap[child]
                    child = parent
                else:
                    break
        elif _worse(scores, user_ids, heap[0], i):
            heap[0] = i
            parent = 0
            while True:  # sift down
                left = 2 * parent + 1
                if left >= size:
                    break
                worst = left
                right = left + 1
                if right < size and _worse(scores, user_ids, heap[right], heap[left]):
                    worst = right
                if _worse(scores, user_ids, heap[worst], heap[parent]):
                    heap[parent], heap[worst] = heap[worst], heap[parent]
                    parent = worst
                else:
                    break
    for pos in range(size - 1, -1, -1):  # pop worst-first, fill from the back
        out_idx[pos] = heap[0]
        size -= 1
        heap[0] = heap[size]
        parent = 0
        while True:
            left = 2 * parent + 1
            if left >= size:
                break
            worst = left
            right = left + 1
            if right < size and _worse(scores, user_ids, heap[right], heap[left]):
                worst = right
            if _worse(scores, user_ids, heap[worst], heap[parent]):
                heap[parent], heap[worst] = heap[worst], heap[parent]
                parent = worst
            else:
                break
    return m


@njit(cache=True)
def _fused_topk(
    category,
    producer,
    ent_idx,
    ent_w,
    ent_lo,
    ent_hi,
    rows,
    row_uids,
    producer_counts,
    entity_counts,
    n_long,
    n_tokens,
    long_dist,
    short_dist,
    mu,
    n_producers,
    n_entities,
    floor,
    lam,
    k,
    scratch,
    out_idx,
):  # pragma: no cover - see _fused_scores
    """Score ``rows`` for one item and select its top-k, in one call.

    ``row_uids[j]`` is the user id of ``rows[j]`` — ties must break on
    user id, never on the matcher's internal row order.  ``scratch`` is a
    caller-provided ``>= len(rows)`` float64 buffer (reused across the
    items of a batch so the kernel allocates nothing).  Returns the
    number of selected entries; ``out_idx`` receives positions *into
    rows*, best-first.
    """
    _fused_scores(
        category, producer, ent_idx, ent_w, ent_lo, ent_hi, rows,
        producer_counts, entity_counts, n_long, n_tokens, long_dist,
        short_dist, mu, n_producers, n_entities, floor, lam, scratch,
    )
    return _topk_select(scratch[: rows.shape[0]], row_uids, k, out_idx)


# ----------------------------------------------------------------------
# Drivers: the Python surface the native operators call
# ----------------------------------------------------------------------
class NativeEngine:
    """Fused-kernel serving over a matcher's stacked arrays.

    Wraps one :class:`~repro.core.matching.VectorizedMatcher` (and, for
    the index path, its owner's :class:`~repro.index.cppse.CPPseIndex`)
    and answers the same ``top_k`` / ``top_k_batch`` / ``knn`` /
    ``knn_batch`` contracts as the machinery it accelerates — same tie
    order, same ``k`` edge cases, scores within the documented ULP
    envelope.  Holds only references (no jitted state), so engines
    survive ``deepcopy``/pickle along with their owners and are rebuilt
    lazily wherever that is cheaper.
    """

    def __init__(self, matcher, index=None) -> None:
        self.matcher = matcher
        self.index = index
        self.scorer = matcher.scorer
        self._lam = float(self.scorer.config.lambda_s)
        self._mu = float(self.scorer.config.dirichlet_mu)

    # -- shared plumbing ------------------------------------------------
    def _query_arrays(self, item):
        """``(ent_idx, ent_w, in_universe)`` of one item's expanded query.

        ``in_universe`` is False when the item's producer or any query
        entity lies outside the trained universe — those symbols live in
        the matcher's sparse overflow store, which the dense kernels do
        not read, so the drivers score such items through the matcher
        (still exact; out-of-universe symbols only appear for content
        first seen mid-stream).
        """
        weighted = self.scorer.expanded_query(item)
        n_entities = self.scorer.n_entities
        in_universe = 0 <= int(item.producer) < self.scorer.n_producers and all(
            0 <= e < n_entities for e, _ in weighted
        )
        ent_idx = np.fromiter((e for e, _ in weighted), dtype=np.int64, count=len(weighted))
        ent_w = np.fromiter((w for _, w in weighted), dtype=np.float64, count=len(weighted))
        return ent_idx, ent_w, in_universe

    def _state(self):
        """The synced dense matcher state the kernels read."""
        matcher = self.matcher
        matcher.sync()
        arrays = matcher.state_arrays()
        return matcher.user_id_array(), arrays

    def _rank_rows(self, scores, row_uids, out_idx, count):
        return [(int(row_uids[out_idx[j]]), float(scores[out_idx[j]])) for j in range(count)]

    # -- full-scan path -------------------------------------------------
    def top_k(self, item, k: int) -> list[tuple[int, float]]:
        """Native ``matcher.top_k``: fused scan scoring + selection."""
        return self.top_k_batch([item], k)[0]

    def top_k_batch(self, items: Sequence, k: int) -> list[list[tuple[int, float]]]:
        """Native ``matcher.top_k_batch`` over one micro-batch."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        items = list(items)
        user_ids, arrays = self._state()
        n = user_ids.shape[0]
        if k == 0 or n == 0 or not items:
            return [[] for _ in items]
        rows = np.arange(n, dtype=np.int64)
        scratch = np.empty(n, dtype=np.float64)
        out_idx = np.empty(min(k, n), dtype=np.int64)
        results: list[list[tuple[int, float]]] = []
        for item in items:
            ent_idx, ent_w, in_universe = self._query_arrays(item)
            if not in_universe:
                # Overflow symbols: score through the matcher (exact), keep
                # the kernel selection so tie order stays uniform.
                scores = self.matcher.score_all(item)
                count = _topk_select(scores, user_ids, min(k, n), out_idx)
                results.append(self._rank_rows(scores, user_ids, out_idx, count))
                continue
            count = _fused_topk(
                int(item.category), int(item.producer), ent_idx, ent_w, 0,
                ent_idx.shape[0], rows, user_ids, arrays["producer_counts"],
                arrays["entity_counts"], arrays["n_long"], arrays["n_tokens"],
                arrays["long_dist"], arrays["short_dist"], self._mu,
                self.scorer.n_producers, self.scorer.n_entities, PROB_FLOOR,
                self._lam, min(k, n), scratch, out_idx,
            )
            results.append(self._rank_rows(scratch, user_ids, out_idx, count))
        return results

    # -- CPPse-index path (Algorithm 1, tree-fused) ---------------------
    def knn(self, item, k: int) -> list[tuple[int, float]]:
        """Native ``index.knn``: probe + bound as Algorithm 1, with one
        fused scoring pass per admitted tree instead of the per-leaf
        descent."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        return self._knn_search(item, k, None)

    def knn_batch(self, items: Sequence, k: int) -> list[list[tuple[int, float]]]:
        """Native ``index.knn_batch``: same pseudo-query dedup as the
        Python path (grouped by ``(category, producer, E u E')``), one
        fused search per distinct query."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        items = list(items)
        results: list[list[tuple[int, float]]] = [[] for _ in items]
        if k == 0 or not items:
            return results
        groups: dict[tuple, list[int]] = {}
        for position, item in enumerate(items):
            weighted = self.scorer.expanded_query(item)
            query_key = (item.category, item.producer, tuple(weighted))
            groups.setdefault(query_key, []).append(position)
        lookup_cache: dict = {}
        for query_key in sorted(groups, key=lambda key: key[:2]):
            positions = groups[query_key]
            ranked = self._knn_search(items[positions[0]], k, lookup_cache)
            for position in positions:
                results[position] = list(ranked)
        return results

    def _tree_rows(self, tree, row_of):
        """Matcher rows + user ids of one tree's member profiles."""
        uids = sorted(entry.user_id for entry in tree.all_entries())
        rows = np.fromiter((row_of[u] for u in uids), dtype=np.int64, count=len(uids))
        return rows, np.asarray(uids, dtype=np.int64)

    def _knn_search(self, item, k: int, lookup_cache) -> list[tuple[int, float]]:
        from repro.index.cppse import _TIE_EPS
        from repro.index.signature import QuerySignature

        index = self.index
        lam = self._lam
        weighted = self.scorer.expanded_query(item)
        trees = index._locate_trees_cached(item, lookup_cache)
        if not trees:
            return []
        user_ids, arrays = self._state()
        row_of = self.matcher._row_of
        ent_idx, ent_w, in_universe = self._query_arrays(item)
        # Probe + bound exactly as Algorithm 1: per-tree root upper bounds
        # (Def. 2) put the most promising trees first, and a tree whose
        # bound cannot beat the running k-th best within the 1e-12 tie
        # tolerance is pruned whole (Lemmas 1-2: no false dismissals).
        bounded = []
        for block_id, tree in sorted(trees.items()):
            query = QuerySignature.encode(item, weighted, tree.universe, block_id)
            bounded.append((tree.root.relevance(query, lam), block_id, tree))
        bounded.sort(key=lambda entry: (-entry[0], entry[1]))
        # Running result heap: min-heap on (score, -user_id), as in
        # CPPseIndex._knn_search; its root is the pruning bound once full.
        result: list[tuple[float, int]] = []
        scratch: np.ndarray | None = None
        out_idx = np.empty(k, dtype=np.int64)
        for bound, _, tree in bounded:
            if len(result) >= k and bound < result[0][0] - _TIE_EPS:
                break  # bounds are sorted: nothing later can qualify
            rows, row_uids = self._tree_rows(tree, row_of)
            if rows.shape[0] == 0:
                continue
            if scratch is None or scratch.shape[0] < rows.shape[0]:
                scratch = np.empty(rows.shape[0], dtype=np.float64)
            if in_universe:
                count = _fused_topk(
                    int(item.category), int(item.producer), ent_idx, ent_w, 0,
                    ent_idx.shape[0], rows, row_uids, arrays["producer_counts"],
                    arrays["entity_counts"], arrays["n_long"], arrays["n_tokens"],
                    arrays["long_dist"], arrays["short_dist"], self._mu,
                    self.scorer.n_producers, self.scorer.n_entities, PROB_FLOOR,
                    lam, min(k, rows.shape[0]), scratch, out_idx,
                )
                tree_scores = scratch
                tree_sel = out_idx
            else:
                all_scores = self.matcher.score_all(item)
                tree_scores = all_scores[rows]
                count = _topk_select(tree_scores, row_uids, min(k, rows.shape[0]), out_idx)
                tree_sel = out_idx
            for j in range(count):
                sel = tree_sel[j]
                key = (float(tree_scores[sel]), -int(row_uids[sel]))
                if len(result) < k:
                    heapq.heappush(result, key)
                elif key > result[0]:
                    heapq.heapreplace(result, key)
        ranked = sorted(result, key=lambda su: (-su[0], -su[1]))
        return [(-neg_uid, score) for score, neg_uid in ranked]
