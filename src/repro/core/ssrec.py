"""The ssRec facade: train once, then recommend/update over the stream.

Ties together every component of Fig. 1: the BiHMM interest prediction
(a), the entity-based item-user matching (b), and — when ``use_index`` is
on — the CPPse-index (c) for sub-linear top-k search.

Typical usage::

    recommender = SsRecRecommender(config)
    recommender.fit(dataset, train_interactions)
    for item in item_stream:
        recommender.observe_item(item)              # producer layer update
        top_users = recommender.recommend(item, k=30)
    recommender.update(interaction)                 # user profile update

High-throughput serving drains the item stream in micro-batches instead::

    for window in batched(item_stream, 64):
        ranked_lists = recommender.recommend_batch(window, k=30)
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.core.config import SsRecConfig
from repro.core.interest import InterestPredictor
from repro.core.matching import MatchingScorer, VectorizedMatcher
from repro.core.profiles import ProfileEvent, ProfileStore
from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.entities.expansion import EntityExpander
from repro.entities.extractor import EntityExtractor
from repro.entities.vocabulary import EntityVocabulary
from repro.hmm.bihmm import BiHMM


class SsRecRecommender:
    """End-to-end ssRec recommender.

    Args:
        config: ssRec tunables; defaults to the paper's optima.
        use_index: route top-k queries through the CPPse-index (Sec. V).
            When off, an exact vectorized sequential scan is used — the
            results are identical, only the cost profile differs.
        seed: seed for model initialization.
    """

    def __init__(
        self,
        config: SsRecConfig | None = None,
        use_index: bool = False,
        seed: int = 0,
    ) -> None:
        self.config = config or SsRecConfig()
        self.use_index = bool(use_index)
        self.seed = int(seed)
        self.profiles = ProfileStore(window_size=self.config.window_size)
        self.vocabulary = EntityVocabulary()
        self.extractor = EntityExtractor(self.vocabulary)
        self.expander: EntityExpander | None = None
        self.bihmm: BiHMM | None = None
        self.interest: InterestPredictor | None = None
        self.scorer: MatchingScorer | None = None
        self.matcher: VectorizedMatcher | None = None
        self.index = None  # CPPseIndex, built lazily to avoid an import cycle
        self._maintenance_pending: set[int] = set()
        self.maintenance_interval = self.config.maintenance_interval
        self._updates_since_maintenance = 0
        self._fitted = False
        # Execution-plan state (repro.exec): the compiled pipeline serving
        # runs through, the mutation epoch that invalidates cached results,
        # and the plan-level result cache for the *-cached plan variants.
        self.exec_epoch = 0
        self._result_cache_enabled = self.config.result_cache
        self._scoring = self.config.scoring
        self._dedup_mode = self.config.dedup
        self._compiled = None  # CompiledPlan, built lazily per current state

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: Dataset,
        train_interactions: Sequence[Interaction] | None = None,
        max_bihmm_sequences: int = 200,
    ) -> "SsRecRecommender":
        """Train every component from the training slice of ``dataset``.

        Args:
            dataset: supplies the entity universe, items and user sets.
            train_interactions: the training partitions' interactions; when
                None, all of ``dataset.interactions`` are used.
            max_bihmm_sequences: cap on consumer sequences used to train the
                shared b-HMM (training cost control; sequences are taken
                from the most active consumers).
        """
        interactions = (
            list(train_interactions)
            if train_interactions is not None
            else list(dataset.interactions)
        )
        interactions.sort(key=lambda i: (i.timestamp, i.item_id))
        train_item_ids = {i.item_id for i in interactions}
        last_time = interactions[-1].timestamp if interactions else float("inf")
        train_items = [
            it
            for it in dataset.items
            if it.timestamp <= last_time or it.item_id in train_item_ids
        ]

        # 1. Entity pipeline: gazetteer + expansion statistics.
        self.extractor.add_phrases(dataset.entity_names)
        self.expander = EntityExpander(
            alpha=self.config.expansion_alpha,
            max_expansions=self.config.max_expansions,
            min_weight=self.config.expansion_min_weight,
        )
        for item in train_items:
            mentions = self.extractor.annotate(item.text)
            if mentions:
                self.expander.observe(item.category, mentions)
                self.vocabulary.observe_document(
                    [m.entity_id for m in mentions], category=item.category
                )
            else:
                # Items without recoverable text fall back to declared ids.
                self.expander.observe_entity_list(item.category, item.entities)
                self.vocabulary.observe_document(item.entities, category=item.category)

        # 2. Profiles from the training interactions.
        item_by_id = {it.item_id: it for it in dataset.items}
        events_by_user: dict[int, list[ProfileEvent]] = defaultdict(list)
        for inter in interactions:
            item = item_by_id[inter.item_id]
            events_by_user[inter.user_id].append(
                ProfileEvent(
                    category=inter.category,
                    producer=inter.producer,
                    item_id=inter.item_id,
                    entities=item.entities,
                    timestamp=inter.timestamp,
                )
            )
        for user_id in dataset.consumer_ids:
            profile = self.profiles.get_or_create(user_id)
            events = events_by_user.get(user_id)
            if events:
                profile.bootstrap(events)

        # 3. BiHMM: producer layer on training creations, shared b-HMM on
        #    the most active consumers' sequences.
        self.bihmm = BiHMM(
            n_categories=dataset.n_categories,
            n_consumer_states=self.config.n_consumer_states,
            n_producer_states=self.config.n_producer_states,
            seed=self.seed,
        )
        creations: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for it in sorted(train_items, key=lambda x: (x.timestamp, x.item_id)):
            creations[it.producer].append((it.item_id, it.category))
        by_activity = sorted(events_by_user.items(), key=lambda kv: -len(kv[1]))
        consumer_sequences = [
            [(ev.category, ev.item_id) for ev in events]
            for _, events in by_activity[:max_bihmm_sequences]
            if len(events) >= 2
        ]
        if not consumer_sequences:
            raise ValueError("no consumer has enough training interactions")
        self.bihmm.fit(
            dict(creations), consumer_sequences, n_iter=self.config.hmm_iterations
        )

        # 4. Scorers.
        self.interest = InterestPredictor(self.bihmm, self.config)
        self.scorer = MatchingScorer(
            self.interest,
            self.expander,
            self.config,
            n_producers=max(len(dataset.producer_ids), 1),
            n_entities=max(len(dataset.entity_names), 1),
        )
        self.matcher = VectorizedMatcher(self.scorer, self.profiles)
        self.matcher.sync()

        # 5. Optional CPPse-index.
        if self.use_index:
            from repro.index.cppse import CPPseIndex  # local: avoids cycle

            self.index = CPPseIndex.build(
                profiles=self.profiles,
                scorer=self.scorer,
                n_categories=dataset.n_categories,
                config=self.config,
            )
        self._fitted = True
        self._compiled = None  # state shape changed: recompile on next serve
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("fit() must be called before this operation")

    def attach_index(self) -> "SsRecRecommender":
        """Build (or rebuild) the CPPse-index over the current profiles and
        switch serving to index mode.

        Lets a recommender fitted in scan mode upgrade without refitting —
        the serving layer and throughput harness use this to compare both
        modes on one trained state.
        """
        self._require_fitted()
        from repro.index.cppse import CPPseIndex  # local: avoids cycle

        assert self.interest is not None and self.scorer is not None
        self.index = CPPseIndex.build(
            profiles=self.profiles,
            scorer=self.scorer,
            n_categories=self.interest.n_categories,
            config=self.config,
        )
        self.use_index = True
        self._maintenance_pending.clear()
        self._updates_since_maintenance = 0
        self._compiled = None  # candidate source changed: recompile
        return self

    # ------------------------------------------------------------------
    # Streaming operations
    # ------------------------------------------------------------------
    def observe_item(self, item: SocialItem) -> list:
        """Register a newly streamed item (the social-item stream).

        Advances the producer layer's filtered state and feeds the item's
        entity co-occurrences to the expander so future expansions reflect
        recent content.  Returns the annotated entity mentions (possibly
        empty), so callers that must replay this mutation elsewhere — the
        process backend forwards it to every shard worker — reuse the one
        annotation pass instead of re-extracting.
        """
        self._require_fitted()
        assert self.interest is not None and self.expander is not None
        self.interest.observe_new_item(item.producer, item.item_id, item.category)
        mentions = self.extractor.annotate(item.text)
        if mentions:
            self.expander.observe(item.category, mentions)
        else:
            self.expander.observe_entity_list(item.category, item.entities)
        return mentions

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        """Record one user-item interaction (the interaction stream).

        Updates the user's CPPse profile; the CPPse-index is maintained
        periodically per Algorithm 2 ("We maintain the CPPse-index
        periodically by checking the activities of social users").
        """
        self._require_fitted()
        event = ProfileEvent.from_interaction(interaction, item)
        profile, _ = self.profiles.record(interaction.user_id, event)
        self.exec_epoch += 1  # scores may move: orphan cached results
        if self.index is not None:
            self._maintenance_pending.add(profile.user_id)
            self._updates_since_maintenance += 1
            if self._updates_since_maintenance >= self.maintenance_interval:
                self.run_maintenance()

    def run_maintenance(self) -> int:
        """Flush pending profile updates into the index (Algorithm 2).

        Returns the number of user profiles refreshed.
        """
        self._require_fitted()
        self.exec_epoch += 1  # Algorithm-2 flush: orphan cached results
        if self.index is None or not self._maintenance_pending:
            self._maintenance_pending.clear()
            self._updates_since_maintenance = 0
            return 0
        updated = self.index.maintain(sorted(self._maintenance_pending))
        self._maintenance_pending.clear()
        self._updates_since_maintenance = 0
        return updated

    # ------------------------------------------------------------------
    # Serving (thin facade over the compiled execution plan)
    # ------------------------------------------------------------------
    def executor(self):
        """The compiled execution plan serving runs through.

        The plan is derived from the current state and config by
        :meth:`repro.exec.PlanRegistry.for_config` (candidate source from
        the attached index, caching from ``result_cache``) and compiled
        once; structural changes (``fit``, :meth:`attach_index`,
        :meth:`enable_result_cache`) drop it for lazy recompilation.
        """
        if self._compiled is None:
            from repro.exec import (  # local: avoids cycle
                PLAN_REGISTRY,
                Placement,
                compile_plan,
            )

            # Placement is pinned to local: this facade serves in-process
            # even when its config carries a sharded deployment shape (a
            # snapshot loaded for single-node serving, say) — sharding is
            # the ShardedRecommender's job.
            plan = PLAN_REGISTRY.for_axes(
                use_index=self.index is not None,
                placement=Placement.local(),
                cached=self._result_cache_enabled,
                scoring=self._scoring,
                dedup=self._dedup_mode,
            )
            self._compiled = compile_plan(plan, self)
        return self._compiled

    def set_scoring(self, mode: str) -> "SsRecRecommender":
        """Switch the scoring backend (``"vectorized"`` / ``"native"``).

        Selects the matching plan family on the next serve; ``"native"``
        falls back to the vectorized pipeline (bit-identically, with a
        one-time warning) when the compiled kernels are unavailable —
        see :mod:`repro.core.kernels`.
        """
        from repro.core.config import SCORING_BACKENDS

        if mode not in SCORING_BACKENDS:
            raise ValueError(
                f"scoring must be one of {SCORING_BACKENDS}, got {mode!r}"
            )
        self._scoring = mode
        self._compiled = None
        return self

    def enable_result_cache(self, enabled: bool = True) -> "SsRecRecommender":
        """Switch serving to (or from) the ``*-cached`` plan variant.

        The cache is exact — results stay bit-identical to uncached
        serving (see :mod:`repro.exec.cache`); only repeated deliveries
        between mutations get cheaper.
        """
        self._result_cache_enabled = bool(enabled)
        self._compiled = None
        return self

    def result_cache_stats(self) -> dict | None:
        """Hit/miss/eviction counters of the live result cache (None when
        serving uncached)."""
        compiled = self._compiled
        if compiled is None or compiled.result_cache is None:
            return None
        return compiled.result_cache.stats.as_dict()

    def set_dedup(self, mode: str) -> "SsRecRecommender":
        """Switch serving to (or from) a ``*-dedup`` plan variant.

        ``"exact"`` collapses provably-identical queries only (results
        stay bit-identical to undeduped serving; conformance-enforced);
        ``"approx"`` additionally collapses near-duplicate entity sets
        at the config's Jaccard threshold — collapsed members receive
        the representative's list; ``"off"`` restores plain serving.
        See :mod:`repro.exec.dedup`.
        """
        from repro.core.config import DEDUP_MODES

        if mode not in DEDUP_MODES:
            raise ValueError(f"dedup must be one of {DEDUP_MODES}, got {mode!r}")
        self._dedup_mode = mode
        self._compiled = None
        return self

    def dedup_stats(self) -> dict | None:
        """Collapse counters of the live dedup stage (None when serving
        without dedup)."""
        compiled = self._compiled
        if compiled is None or compiled.dedup_state is None:
            return None
        return compiled.dedup_state.stats.as_dict()

    def obs_registry(self):
        """The compiled plan's telemetry (cache hit/miss counters, dedup
        collapse counters) as a
        :class:`~repro.obs.metrics.MetricsRegistry` — the same surface
        the sharded facade exposes, so the server's ``metrics`` route and
        ``python -m repro.obs summarize`` work against either."""
        if self._compiled is not None:
            return self._compiled.obs_registry()
        from repro.obs.metrics import MetricsRegistry  # local: keeps core light

        return MetricsRegistry()

    def recommend(self, item: SocialItem, k: int | None = None) -> list[tuple[int, float]]:
        """Top-``k`` ``(user_id, score)`` for an incoming item (Eq. 3 order).

        ``k=None`` means the configured ``default_k``; an explicit ``k=0``
        is an empty recommendation window and yields an empty list.
        Execution — candidate admission, the Algorithm-2 serve-time flush,
        scoring, selection, caching — is entirely the compiled plan's.
        """
        self._require_fitted()
        return self.executor().run_item(item, k)

    def recommend_batch(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """Top-``k`` lists for a micro-batch of items, one per input item.

        Result-identical to calling :meth:`recommend` per item on the same
        profile state, but the compiled plan's batch entry amortizes the
        serving cost across the window: one profile sync / maintenance
        flush, shared smoothed columns in scan mode, shared query
        encodings and sigtree descents in index mode.
        """
        self._require_fitted()
        return self.executor().run_batch(items, k)

    # ------------------------------------------------------------------
    # Persistence (delegates to the serving layer's snapshot format)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Snapshots and replicas drop the compiled plan (it holds live
        object references and an in-memory result cache); it recompiles
        lazily — empty cache, same plan — on the next serve."""
        state = dict(self.__dict__)
        state["_compiled"] = None
        return state

    def save(self, path) -> None:
        """Write a warm-startable snapshot (see :mod:`repro.serve.snapshot`)."""
        from repro.serve.snapshot import save_snapshot  # local: avoids cycle

        self._require_fitted()
        save_snapshot(self, path)

    @staticmethod
    def load(path) -> "SsRecRecommender":
        """Restore a fitted recommender from a snapshot without retraining."""
        from repro.serve.snapshot import load_recommender  # local: avoids cycle

        return load_recommender(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "index" if self.use_index else "scan"
        return f"SsRecRecommender(fitted={self._fitted}, mode={mode}, users={len(self.profiles)})"
