"""BiHMM-backed user interest prediction with streaming-friendly caching.

The matching function needs ``p(c | u^c)`` twice per candidate pair: once
from the user's long-term interest list (Eq. 2) and once from the short-term
window (Eq. 4).  Recomputing a full forward pass per score would dominate
the stream cost, so this predictor maintains, per user:

- an incrementally-advanced *filtered consumer state* over the long-term
  list (one O(N^2) step per flushed event),
- the producer hidden state of the user's most recent long-term item (the
  lagged-z input that conditions the next transition), and
- cached next-category distributions for both horizons, invalidated by the
  profile's version counter.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SsRecConfig
from repro.core.profiles import UserProfile
from repro.hmm.bihmm import BiHMM
from repro.hmm.utils import PROB_FLOOR


class InterestPredictor:
    """Per-user long/short-term category predictions over a trained BiHMM.

    Args:
        bihmm: a trained :class:`~repro.hmm.bihmm.BiHMM`.
        config: ssRec configuration (history truncation, window size).
    """

    def __init__(self, bihmm: BiHMM, config: SsRecConfig | None = None) -> None:
        self.bihmm = bihmm
        self.config = config or SsRecConfig()
        self.n_categories = bihmm.n_categories
        self._long_alpha: dict[int, np.ndarray] = {}
        self._long_last_z: dict[int, int] = {}
        self._long_consumed: dict[int, int] = {}
        self._long_dist: dict[int, np.ndarray] = {}
        self._short_dist: dict[int, np.ndarray] = {}
        self._short_version: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Internal state maintenance
    # ------------------------------------------------------------------
    def _advance_alpha(
        self, alpha: np.ndarray, prev_z: int, category: int
    ) -> np.ndarray:
        """One forward step: transition/emission conditioned on the lagged z."""
        model = self.bihmm.consumer_model
        alpha_next = (alpha @ model.A[prev_z]) * model.B[prev_z][:, int(category)]
        total = alpha_next.sum()
        if total <= 0:
            return np.full(model.n_states, 1.0 / model.n_states)
        return alpha_next / total

    def _dist_from_state(self, alpha: np.ndarray, last_z: int) -> np.ndarray:
        """Next-category distribution given the filtered state and the
        producer state of the most recent item."""
        model = self.bihmm.consumer_model
        dist = (alpha @ model.A[last_z]) @ model.B[last_z]
        total = dist.sum()
        if total <= 0:
            return np.full(self.n_categories, 1.0 / self.n_categories)
        return dist / total

    def _unknown_z(self) -> int:
        return self.bihmm.producer_layer.unknown_state

    def _sync_long(self, profile: UserProfile) -> None:
        """Catch the user's filtered long-term state up with the profile."""
        uid = profile.user_id
        layer = self.bihmm.producer_layer
        consumed = self._long_consumed.get(uid)
        if consumed is None:
            alpha = self.bihmm.consumer_model.pi
            last_z = self._unknown_z()
            events = profile.long_term[-self.config.max_history_events :]
            for ev in events:
                alpha = self._advance_alpha(alpha, last_z, ev.category)
                last_z = layer.state_of_item(ev.item_id)
            self._long_alpha[uid] = alpha
            self._long_last_z[uid] = last_z
            self._long_consumed[uid] = profile.n_long_events
            self._long_dist[uid] = self._dist_from_state(alpha, last_z)
            return
        if consumed < profile.n_long_events:
            alpha = self._long_alpha[uid]
            last_z = self._long_last_z[uid]
            for ev in profile.long_term[consumed:]:
                alpha = self._advance_alpha(alpha, last_z, ev.category)
                last_z = layer.state_of_item(ev.item_id)
            self._long_alpha[uid] = alpha
            self._long_last_z[uid] = last_z
            self._long_consumed[uid] = profile.n_long_events
            self._long_dist[uid] = self._dist_from_state(alpha, last_z)

    def _sync_short(self, profile: UserProfile) -> None:
        uid = profile.user_id
        if self._short_version.get(uid) == profile.version and uid in self._short_dist:
            return
        layer = self.bihmm.producer_layer
        model = self.bihmm.consumer_model
        recent = profile.recent_sequence()
        alpha = model.pi
        # The event preceding the window is the tail of the long-term list;
        # its producer state seeds the lagged-z chain when available.
        last_z = self._unknown_z()
        if profile.window and profile.long_term:
            last_z = layer.state_of_item(profile.long_term[-1].item_id)
        for category, item_id in recent:
            alpha = self._advance_alpha(alpha, last_z, category)
            last_z = layer.state_of_item(item_id)
        self._short_dist[uid] = self._dist_from_state(alpha, last_z)
        self._short_version[uid] = profile.version

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def long_term_distribution(self, profile: UserProfile) -> np.ndarray:
        """``p(c | u^c)`` over all categories from the long-term list."""
        self._sync_long(profile)
        return self._long_dist[profile.user_id]

    def short_term_distribution(self, profile: UserProfile) -> np.ndarray:
        """``p_s(c | u^c)`` over all categories from the recent window."""
        self._sync_short(profile)
        return self._short_dist[profile.user_id]

    def long_term_probability(self, profile: UserProfile, category: int) -> float:
        """Long-term ``p(c | u^c)`` for one category, floored above zero."""
        dist = self.long_term_distribution(profile)
        return float(max(dist[int(category)], PROB_FLOOR))

    def short_term_probability(self, profile: UserProfile, category: int) -> float:
        """Short-term ``p_s(c | u^c)`` for one category, floored above zero."""
        dist = self.short_term_distribution(profile)
        return float(max(dist[int(category)], PROB_FLOOR))

    def observe_new_item(self, producer_id: int, item_id: int, category: int) -> None:
        """Forward a newly streamed item to the producer layer so its hidden
        state is decoded and available for later z-lookups."""
        self.bihmm.producer_layer.observe_created_item(producer_id, item_id, category)

    def forget_user(self, user_id: int) -> None:
        """Drop all cached state for a user (used by tests and rebuilds)."""
        for cache in (
            self._long_alpha,
            self._long_last_z,
            self._long_consumed,
            self._long_dist,
            self._short_dist,
            self._short_version,
        ):
            cache.pop(int(user_id), None)
