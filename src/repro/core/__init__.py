"""The paper's primary contribution: the ssRec framework.

- :class:`~repro.core.config.SsRecConfig` — all tunables (|W|, lambda_s,
  Dirichlet mass, expansion, blocking, index parameters).
- :class:`~repro.core.profiles.UserProfile` / ``ProfileStore`` — the CPPse
  user model: long-term interest list + fixed-size short-term window with
  flush semantics (Sec. IV-B).
- :class:`~repro.core.interest.InterestPredictor` — BiHMM-backed
  ``p(c | u^c)`` for long-term and short-term interests, with incremental
  filtered-state maintenance for streaming.
- :class:`~repro.core.matching.MatchingScorer` — the entity-based item-user
  relevance of Eq. 1-4 with Dirichlet smoothing and entity expansion.
- :class:`~repro.core.ssrec.SsRecRecommender` — the end-to-end facade:
  ``fit`` -> ``recommend`` -> ``update``.
"""

from repro.core.config import SsRecConfig
from repro.core.profiles import ProfileStore, UserProfile, ProfileEvent
from repro.core.interest import InterestPredictor
from repro.core.matching import MatchingScorer, ScoreParts
from repro.core.ssrec import SsRecRecommender

__all__ = [
    "SsRecConfig",
    "ProfileStore",
    "UserProfile",
    "ProfileEvent",
    "InterestPredictor",
    "MatchingScorer",
    "ScoreParts",
    "SsRecRecommender",
]
