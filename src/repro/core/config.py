"""Configuration for the ssRec framework."""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

#: User-partitioning strategies understood by the serving layer
#: (:mod:`repro.serve.sharding`).
SHARD_STRATEGIES = ("hash", "block")

#: Fan-out backends of the sharded serving runtime
#: (:mod:`repro.serve.service`): ``"sequential"`` serves shards one after
#: another in the calling thread, ``"thread"`` fans out on a
#: ``ThreadPoolExecutor`` (GIL-bound — parallelism limited to NumPy
#: sections), ``"process"`` hosts every shard in its own OS process
#: (:mod:`repro.serve.workers`) for real CPU parallelism, ``"shmem"``
#: keeps the per-shard processes but maps the read-mostly shard state
#: into shared-memory segments instead of copying it — workers attach
#: zero-copy views and a serve window costs one message per shard
#: (:mod:`repro.serve.shmem`).
SERVE_BACKENDS = ("sequential", "thread", "process", "shmem")

#: Scoring backends of the serving paths: ``"vectorized"`` is the NumPy
#: batch scorer (:class:`~repro.core.matching.VectorizedMatcher`),
#: ``"native"`` the fused compiled kernels (:mod:`repro.core.kernels`,
#: numba-backed — an optional extra; serving falls back to the
#: vectorized path, bit-identically, when the kernels are unavailable).
SCORING_BACKENDS = ("vectorized", "native")

#: Near-duplicate collapse modes of the serving paths
#: (:mod:`repro.exec.dedup`): ``"off"`` scores every delivery,
#: ``"exact"`` collapses uploads whose resolved scorer inputs are
#: provably identical (bit-identical results, conformance-enforced),
#: ``"approx"`` additionally collapses near-duplicate entity sets via
#: MinHash/banded LSH at a Jaccard threshold — collapsed members get the
#: representative's served list (a measured accuracy trade).
DEDUP_MODES = ("off", "exact", "approx")


@dataclass(frozen=True)
class SsRecConfig:
    """All ssRec tunables, with the paper's optimal defaults.

    Attributes:
        window_size: short-term interest window size |W| (paper optimum: 5).
        lambda_s: short-term weight in Eq. 3 (paper: 0.4 YTube / 0.3 MLens).
        dirichlet_mu: Dirichlet smoothing mass for the MLE estimates of
            ``p(u^p | u^c)`` and ``p(e | u^c)`` (Sec. IV-C).
        n_consumer_states: b-HMM hidden state count ``N^(b)``.
        n_producer_states: a-HMM hidden state count ``N^(a)``.
        hmm_iterations: Baum-Welch iteration cap for both layers.
        max_history_events: long-term events fed to the BiHMM when a user's
            filtered state must be (re)computed from scratch.
        use_expansion: entity expansion on/off (ssRec vs ssRec-ne, Fig. 8).
        max_expansions: expansion entities per anchor entity.
        expansion_alpha: proximity decay of the expansion credit.
        expansion_min_weight: expansion entities below this weight are cut.
        block_similarity_threshold: cosine threshold of the one-pass user
            blocking (Sec. V-A).
        max_blocks: cap on the number of user blocks (Table II sweeps this).
        tree_fanout: extended-signature-tree node fanout.
        hash_buckets: chained-hash-table bucket count (Eq. 5's ``T``).
        signature_slack: reserved zero-filled share of each signature entry
            for unseen entities (paper: "we reserve 20% space of each
            entry").
        default_k: top-k cutoff when none is given.
        maintenance_interval: profile updates absorbed between periodic
            CPPse-index maintenance runs (Algorithm 2's cadence; the paper
            maintains the index "periodically by checking the activities
            of social users").
        batch_size: default micro-batch window of the batched serving path
            (used by the batch topology and ``StreamEvaluator.run_batch``
            when no explicit window size is given).
        n_shards: user partitions of the sharded serving runtime
            (:mod:`repro.serve`); 1 = a single shard holding everyone.
        shard_strategy: how users map to shards — ``"block"`` (CPPse user
            blocks are assigned whole, so no block is split across shards
            and sharded index results stay bit-identical to the single
            index) or ``"hash"`` (stateless hash of the user id; exact in
            scan mode, approximate probed-set in index mode).
        serve_workers: threads the sharded facade fans a query out with
            under the thread backend; 0 or 1 = sequential fan-out.
        serve_backend: how the sharded facade fans queries out —
            ``"sequential"`` (in the calling thread), ``"thread"``
            (GIL-bound thread pool), ``"process"`` (one OS process per
            shard; see :mod:`repro.serve.workers`) or ``"shmem"``
            (processes attaching zero-copy shared-memory views of the
            shard state; see :mod:`repro.serve.shmem`).  Results are
            bit-identical across backends; only the cost profile differs.
        result_cache: serve through the ``*-cached`` execution-plan
            variants (:mod:`repro.exec.cache`) — an exact LRU memo of
            final ranked lists keyed on item signature and the mutation
            epoch, so cached results are bit-identical to uncached
            serving (conformance-enforced); only repeated deliveries get
            cheaper.
        result_cache_size: LRU capacity of the plan-level result cache.
        scoring: scoring backend of the serving paths — ``"vectorized"``
            (the NumPy batch scorer) or ``"native"`` (the fused
            numba kernels of :mod:`repro.core.kernels`; selects the
            ``*-native`` execution plans).  Native scores agree with
            vectorized within the 1e-9 tie discipline (scalar vs SIMD
            ``log``, ULP-level only); when the compiled kernels are
            unavailable the native plans serve through the vectorized
            pipeline bit-identically, with a one-time warning.
        dedup: near-duplicate upload collapse ahead of scoring — ``"off"``,
            ``"exact"`` (provable-equality collapse; results stay
            bit-identical to undeduped serving, conformance-enforced) or
            ``"approx"`` (MinHash/LSH collapse at the Jaccard threshold
            below; collapsed members receive the representative's list —
            see :mod:`repro.exec.dedup`).  Selects the ``*-dedup``
            execution plans.
        dedup_threshold: minimum exact Jaccard similarity (τ) for an
            approximate merge; candidates below it are rejected (counted
            as ``false_merge_checks``).
        dedup_bands: LSH bands of the approximate mode's MinHash index.
        dedup_rows: signature rows per band (the MinHash signature has
            ``dedup_bands * dedup_rows`` slots; the candidate S-curve is
            ``1 - (1 - J^rows)^bands``).
    """

    window_size: int = 5
    lambda_s: float = 0.4
    dirichlet_mu: float = 10.0
    n_consumer_states: int = 3
    n_producer_states: int = 3
    hmm_iterations: int = 20
    max_history_events: int = 60
    use_expansion: bool = True
    max_expansions: int = 5
    expansion_alpha: float = 1.0
    expansion_min_weight: float = 0.05
    block_similarity_threshold: float = 0.6
    max_blocks: int = 20
    tree_fanout: int = 8
    hash_buckets: int = 1024
    signature_slack: float = 0.2
    default_k: int = 30
    maintenance_interval: int = 200
    batch_size: int = 64
    n_shards: int = 1
    shard_strategy: str = "block"
    serve_workers: int = 0
    serve_backend: str = "sequential"
    result_cache: bool = False
    result_cache_size: int = 256
    scoring: str = "vectorized"
    dedup: str = "off"
    dedup_threshold: float = 0.6
    dedup_bands: int = 8
    dedup_rows: int = 4

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")
        if not (0.0 <= self.lambda_s <= 1.0):
            raise ValueError(f"lambda_s must be in [0, 1], got {self.lambda_s}")
        if self.dirichlet_mu <= 0:
            raise ValueError(f"dirichlet_mu must be > 0, got {self.dirichlet_mu}")
        if self.tree_fanout < 2:
            raise ValueError(f"tree_fanout must be >= 2, got {self.tree_fanout}")
        if self.hash_buckets < 1:
            raise ValueError(f"hash_buckets must be >= 1, got {self.hash_buckets}")
        if not (0.0 <= self.signature_slack < 1.0):
            raise ValueError(f"signature_slack must be in [0, 1), got {self.signature_slack}")
        if self.maintenance_interval < 1:
            raise ValueError(
                f"maintenance_interval must be >= 1, got {self.maintenance_interval}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"shard_strategy must be one of {SHARD_STRATEGIES}, "
                f"got {self.shard_strategy!r}"
            )
        if self.serve_workers < 0:
            raise ValueError(f"serve_workers must be >= 0, got {self.serve_workers}")
        if self.serve_backend not in SERVE_BACKENDS:
            raise ValueError(
                f"serve_backend must be one of {SERVE_BACKENDS}, "
                f"got {self.serve_backend!r}"
            )
        if self.result_cache_size < 1:
            raise ValueError(
                f"result_cache_size must be >= 1, got {self.result_cache_size}"
            )
        if self.scoring not in SCORING_BACKENDS:
            raise ValueError(
                f"scoring must be one of {SCORING_BACKENDS}, got {self.scoring!r}"
            )
        if self.dedup not in DEDUP_MODES:
            raise ValueError(
                f"dedup must be one of {DEDUP_MODES}, got {self.dedup!r}"
            )
        if not (0.0 < self.dedup_threshold <= 1.0):
            raise ValueError(
                f"dedup_threshold must be in (0, 1], got {self.dedup_threshold}"
            )
        if self.dedup_bands < 1:
            raise ValueError(f"dedup_bands must be >= 1, got {self.dedup_bands}")
        if self.dedup_rows < 1:
            raise ValueError(f"dedup_rows must be >= 1, got {self.dedup_rows}")

    def with_options(self, **overrides) -> "SsRecConfig":
        """Copy with the given fields replaced (configs are frozen)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization (snapshots, experiment manifests)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All fields as a plain JSON-serializable dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SsRecConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected rather than silently dropped — a snapshot
        written by a newer code version must not load with silently missing
        semantics.  Field validation runs as usual via ``__post_init__``.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown config keys: {', '.join(unknown)}")
        return cls(**data)

    @classmethod
    def for_mlens(cls) -> "SsRecConfig":
        """The paper's MLens optimum (lambda_s = 0.3)."""
        return cls(lambda_s=0.3)
