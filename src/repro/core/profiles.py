"""CPPse user profiles: long-term interest list + short-term window.

Section IV-B: "The short-term interest window of a user has a fixed-size,
and keeps his latest interaction records, while his long-term interest list
includes all the rest of records in his whole browsing history. ... When the
short-term interest window is full, W_i will be flushed to L_i.  As such,
each user profile is modelled as a pair of category-producer sequences
(CPPse)."

Besides the raw sequences, each profile maintains the long-term sufficient
statistics the matching function needs: category, producer and entity
frequency counters over ``L`` plus total event/entity-token counts (the MLE
numerators and denominators of Eq. 2).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class ProfileEvent:
    """One browsing record: the ``<category, producer>`` pair of the paper's
    CPPse sequences, plus the item id and entities needed for entity-level
    MLE and BiHMM z-decoding."""

    category: int
    producer: int
    item_id: int
    entities: tuple[int, ...]
    timestamp: float = 0.0

    @classmethod
    def from_interaction(cls, interaction, item=None) -> "ProfileEvent":
        """The event an ``Interaction`` (plus its optional ``SocialItem``
        payload for entities) records into a profile.

        The one construction rule shared by the single-process facade, the
        sharded runtime and the evaluation harness — the profile state they
        build from the same stream must be identical.
        """
        return cls(
            category=interaction.category,
            producer=interaction.producer,
            item_id=interaction.item_id,
            entities=tuple(item.entities) if item is not None else (),
            timestamp=interaction.timestamp,
        )


class UserProfile:
    """One consumer's profile.

    Args:
        user_id: the consumer id.
        window_size: |W|, the fixed short-term window size.

    Attributes:
        long_term: the flushed long-term interest list ``L`` (event order).
        window: the current short-term window ``W`` (< window_size events;
            flushing empties it into ``long_term``).
        version: increments on every mutation — downstream caches (interest
            distributions, index signatures) key on it.
    """

    __slots__ = (
        "user_id",
        "window_size",
        "long_term",
        "window",
        "category_counts",
        "producer_counts",
        "entity_counts",
        "n_long_events",
        "n_entity_tokens",
        "version",
    )

    def __init__(self, user_id: int, window_size: int = 5) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.user_id = int(user_id)
        self.window_size = int(window_size)
        self.long_term: list[ProfileEvent] = []
        self.window: list[ProfileEvent] = []
        self.category_counts: Counter[int] = Counter()
        self.producer_counts: Counter[int] = Counter()
        self.entity_counts: Counter[int] = Counter()
        self.n_long_events = 0
        self.n_entity_tokens = 0
        self.version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record(self, event: ProfileEvent) -> list[ProfileEvent]:
        """Append one browsing event to the window; flush when full.

        Returns the list of events flushed into the long-term list by this
        record (empty most of the time) so callers — notably the interest
        predictor's incremental filtered state — can advance on exactly the
        events that became long-term.
        """
        self.window.append(event)
        self.version += 1
        flushed: list[ProfileEvent] = []
        if len(self.window) >= self.window_size:
            flushed = self.window
            self.window = []
            for ev in flushed:
                self._absorb_long_term(ev)
        return flushed

    def _absorb_long_term(self, event: ProfileEvent) -> None:
        self.long_term.append(event)
        self.category_counts[event.category] += 1
        self.producer_counts[event.producer] += 1
        for entity in event.entities:
            self.entity_counts[entity] += 1
            self.n_entity_tokens += 1
        self.n_long_events += 1

    def bootstrap(self, events: Iterable[ProfileEvent]) -> None:
        """Load a training history: all but the trailing ``window_size - 1``
        events go straight to the long-term list, the tail seeds the window.

        This reproduces the state the profile would reach by recording each
        event one at a time, at bulk-load cost.
        """
        events = list(events)
        # Replaying record() semantics: flush happens every window_size
        # events, so after N events the window holds N mod window_size.
        remainder = len(events) % self.window_size
        head = events[: len(events) - remainder] if remainder else events
        tail = events[len(events) - remainder :] if remainder else []
        for ev in head:
            self._absorb_long_term(ev)
        self.window = list(tail)
        self.version += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def long_term_sequence(self, max_events: int | None = None) -> list[tuple[int, int]]:
        """``(category, item_id)`` pairs of the long-term list (BiHMM input)."""
        events = self.long_term if max_events is None else self.long_term[-max_events:]
        return [(ev.category, ev.item_id) for ev in events]

    def recent_sequence(self) -> list[tuple[int, int]]:
        """The most recent item sequence for short-term prediction.

        The window when non-empty; otherwise the tail of the long-term list
        (the window has just been flushed, so those *are* the latest
        records).
        """
        if self.window:
            return [(ev.category, ev.item_id) for ev in self.window]
        tail = self.long_term[-self.window_size :]
        return [(ev.category, ev.item_id) for ev in tail]

    def all_events(self) -> list[ProfileEvent]:
        """Long-term list followed by the current window."""
        return list(self.long_term) + list(self.window)

    def category_vector(self, n_categories: int) -> list[float]:
        """Normalized long-term category frequencies (the blocking feature).

        One-pass clustering groups users by "each user's long-term
        categorical interests and cosine similarity" (Sec. V-A).
        """
        vec = [0.0] * n_categories
        for cat, count in self.category_counts.items():
            if 0 <= cat < n_categories:
                vec[cat] = float(count)
        total = sum(vec)
        if total > 0:
            vec = [v / total for v in vec]
        return vec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UserProfile(user={self.user_id}, long={self.n_long_events}, "
            f"window={len(self.window)}/{self.window_size})"
        )


class ProfileStore:
    """All consumer profiles, keyed by user id.

    Args:
        window_size: |W| applied to every profile.
    """

    def __init__(self, window_size: int = 5) -> None:
        self.window_size = int(window_size)
        self._profiles: dict[int, UserProfile] = {}
        #: Store-level mutation counter: bumped whenever a profile is
        #: created, adopted or recorded through the store.  Mirrors (the
        #: vectorized matcher) use it as an O(1) are-we-current check
        #: before falling back to the per-profile version sweep.  Code
        #: that mutates a profile object *directly* must call
        #: :meth:`touch` so mirrors notice.
        self.version = 0

    def touch(self) -> None:
        """Mark the population dirty (a profile changed out of band)."""
        self.version += 1

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, user_id: int) -> bool:
        return int(user_id) in self._profiles

    def __iter__(self):
        return iter(self._profiles.values())

    def get(self, user_id: int) -> UserProfile | None:
        return self._profiles.get(int(user_id))

    def get_or_create(self, user_id: int) -> UserProfile:
        """Profile for ``user_id``, creating an empty one for new users
        (Sec. V-C: "new users may join social community")."""
        profile = self._profiles.get(int(user_id))
        if profile is None:
            profile = UserProfile(user_id, window_size=self.window_size)
            self._profiles[int(user_id)] = profile
            self.version += 1
        return profile

    def add(self, profile: UserProfile) -> None:
        """Adopt an existing profile object (shared, not copied).

        The sharded serving runtime partitions one population into
        per-shard stores; shard stores and the global store deliberately
        alias the same :class:`UserProfile` objects so an update through
        either view is seen by both.
        """
        self._profiles[int(profile.user_id)] = profile
        self.version += 1

    def user_ids(self) -> list[int]:
        return sorted(self._profiles)

    def record(self, user_id: int, event: ProfileEvent) -> tuple[UserProfile, list[ProfileEvent]]:
        """Record an event for ``user_id``; returns (profile, flushed)."""
        profile = self.get_or_create(user_id)
        flushed = profile.record(event)
        self.version += 1
        return profile, flushed
