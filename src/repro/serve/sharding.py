"""User partitioning for the sharded serving runtime.

A :class:`ShardPlan` is a deterministic ``user_id -> shard`` mapping plus
the bookkeeping the service layer needs (strategy, balance statistics,
serialization for snapshots).  Plans are produced by a
:class:`UserSharder` under one of two strategies:

- ``"hash"`` — a stateless mixed hash of the user id.  New users joining
  mid-stream route without any coordination, and the same id always lands
  on the same shard across processes and restarts.
- ``"block"`` — CPPse user blocks (Sec. V-A one-pass clustering) are
  assigned whole, largest block first onto the least-loaded shard, so a
  block's signature trees never straddle a shard boundary.  Users that
  join after planning fall back to the hash route.

Exactness note: every shard answers its slice exactly and the service
merges by the global ``(-score, user_id)`` order, so in scan mode *any*
total partition yields results identical to the single recommender.  In
index mode a query probes only trees whose block universe holds a query
entity, so identical results additionally require the single index's
blocking to be shared across shards — which is exactly what the block
strategy (plus :func:`build_shard_blocks`) provides and the hash
strategy, splitting blocks, does not; see
:mod:`repro.serve.service` for the full semantics.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SHARD_STRATEGIES, SsRecConfig
from repro.core.profiles import ProfileStore, UserProfile
from repro.index.blocks import UserBlock, one_pass_clustering


def hash_shard(user_id: int, n_shards: int) -> int:
    """Deterministic shard of ``user_id`` under the hash strategy.

    Uses a splitmix64-style finalizer rather than ``hash()`` so the
    mapping is stable across processes (``PYTHONHASHSEED``-independent)
    and well mixed even for dense sequential ids.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    x = (int(user_id) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x % n_shards


@dataclass
class ShardPlan:
    """A concrete user partition.

    Attributes:
        n_shards: number of partitions.
        strategy: the :data:`~repro.core.config.SHARD_STRATEGIES` member
            that produced the plan.
        assignments: ``user_id -> shard`` for every planned user; users
            discovered later are routed by :meth:`shard_of` and recorded
            here so balance statistics stay truthful.
        block_of_shard: for the block strategy, ``shard -> block ids`` it
            owns (empty for hash plans).
        block_of_user: for the block strategy, ``user_id -> global block``
            membership — what lets every shard rebuild exactly its slice
            of the one global blocking (empty for hash plans).
    """

    n_shards: int
    strategy: str = "hash"
    assignments: dict[int, int] = field(default_factory=dict)
    block_of_shard: dict[int, list[int]] = field(default_factory=dict)
    block_of_user: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {SHARD_STRATEGIES}, got {self.strategy!r}"
            )
        for user_id, shard in self.assignments.items():
            if not (0 <= shard < self.n_shards):
                raise ValueError(
                    f"user {user_id} assigned to shard {shard} outside "
                    f"[0, {self.n_shards})"
                )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, user_id: int) -> int:
        """Shard owning ``user_id``; unseen users are hash-routed and the
        assignment is recorded (Algorithm 2's new-user case, shard-local)."""
        user_id = int(user_id)
        shard = self.assignments.get(user_id)
        if shard is None:
            shard = hash_shard(user_id, self.n_shards)
            self.assignments[user_id] = shard
        return shard

    def users_of(self, shard: int) -> list[int]:
        """Planned user ids of one shard, ascending."""
        if not (0 <= shard < self.n_shards):
            raise ValueError(f"shard {shard} outside [0, {self.n_shards})")
        return sorted(uid for uid, s in self.assignments.items() if s == shard)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def shard_sizes(self) -> list[int]:
        """Users per shard, indexed by shard id."""
        sizes = [0] * self.n_shards
        for shard in self.assignments.values():
            sizes[shard] += 1
        return sizes

    def balance_stats(self) -> dict:
        """Load-balance summary: sizes, extremes and the imbalance ratio
        (max/mean; 1.0 = perfectly even)."""
        sizes = self.shard_sizes()
        total = sum(sizes)
        mean = total / self.n_shards if self.n_shards else 0.0
        return {
            "strategy": self.strategy,
            "n_shards": self.n_shards,
            "n_users": total,
            "sizes": sizes,
            "min_size": min(sizes) if sizes else 0,
            "max_size": max(sizes) if sizes else 0,
            "imbalance": (max(sizes) / mean) if total else 1.0,
        }

    def rebalance_stats(self, other: "ShardPlan") -> dict:
        """How much user movement switching to ``other`` would cost.

        Counts users present in both plans whose shard differs, the users
        only one plan knows, and the moved fraction — the quantity an
        operator weighs before resharding a live service.
        """
        common = self.assignments.keys() & other.assignments.keys()
        moved = sum(1 for uid in common if self.assignments[uid] != other.assignments[uid])
        return {
            "n_common": len(common),
            "n_moved": moved,
            "moved_fraction": (moved / len(common)) if common else 0.0,
            "only_self": len(self.assignments.keys() - other.assignments.keys()),
            "only_other": len(other.assignments.keys() - self.assignments.keys()),
        }

    # ------------------------------------------------------------------
    # Serialization (snapshot manifests)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (dict keys become strings in JSON)."""
        return {
            "n_shards": self.n_shards,
            "strategy": self.strategy,
            "assignments": {str(uid): shard for uid, shard in self.assignments.items()},
            "block_of_shard": {
                str(shard): list(blocks) for shard, blocks in self.block_of_shard.items()
            },
            "block_of_user": {
                str(uid): block for uid, block in self.block_of_user.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        return cls(
            n_shards=int(data["n_shards"]),
            strategy=str(data["strategy"]),
            assignments={int(uid): int(s) for uid, s in data["assignments"].items()},
            block_of_shard={
                int(shard): [int(b) for b in blocks]
                for shard, blocks in data.get("block_of_shard", {}).items()
            },
            block_of_user={
                int(uid): int(b) for uid, b in data.get("block_of_user", {}).items()
            },
        )


class UserSharder:
    """Builds :class:`ShardPlan` objects for a user population.

    Args:
        n_shards: target shard count.
        strategy: ``"hash"`` or ``"block"`` (see module docstring).
        config: supplies the blocking tunables (similarity threshold, max
            blocks) for the block strategy; defaults apply when omitted.
    """

    def __init__(
        self,
        n_shards: int,
        strategy: str = "hash",
        config: SsRecConfig | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
            )
        self.n_shards = int(n_shards)
        self.strategy = strategy
        self.config = config or SsRecConfig()

    def plan(
        self,
        profiles: Iterable[UserProfile],
        n_categories: int | None = None,
    ) -> ShardPlan:
        """Partition ``profiles`` into a deterministic :class:`ShardPlan`.

        Args:
            profiles: the user population; consumed in sorted-user-id order
                regardless of input order (determinism).
            n_categories: category-vector dimensionality for the block
                strategy's clustering; required when ``strategy="block"``.
        """
        ordered = sorted(profiles, key=lambda p: p.user_id)
        if self.strategy == "hash":
            assignments = {
                p.user_id: hash_shard(p.user_id, self.n_shards) for p in ordered
            }
            return ShardPlan(self.n_shards, "hash", assignments)
        if n_categories is None:
            raise ValueError("block strategy requires n_categories")
        blocks = one_pass_clustering(
            ordered,
            int(n_categories),
            similarity_threshold=self.config.block_similarity_threshold,
            max_blocks=self.config.max_blocks,
        )
        # Greedy bin packing: largest block first onto the least-loaded
        # shard (ties by shard id) — blocks are never split.
        loads = [0] * self.n_shards
        assignments: dict[int, int] = {}
        block_of_shard: dict[int, list[int]] = {s: [] for s in range(self.n_shards)}
        block_of_user: dict[int, int] = {}
        for block in sorted(blocks, key=lambda b: (-len(b.user_ids), b.block_id)):
            shard = min(range(self.n_shards), key=lambda s: (loads[s], s))
            loads[shard] += len(block.user_ids)
            block_of_shard[shard].append(block.block_id)
            for uid in block.user_ids:
                assignments[uid] = shard
                block_of_user[uid] = block.block_id
        return ShardPlan(self.n_shards, "block", assignments, block_of_shard, block_of_user)


def build_shard_blocks(
    plan: ShardPlan,
    profiles: ProfileStore,
    n_categories: int,
) -> dict[int, list[UserBlock]]:
    """Reconstruct each shard's slice of the global blocking.

    For a ``"block"`` plan: every global block the shard owns becomes a
    shard-local :class:`UserBlock` (densely renumbered from 0) with the
    *same membership* — members are absorbed in ascending user id, the
    order the one-pass scan visited them, so centroids and universes
    reproduce the global clustering exactly.  Feeding these blocks to
    :meth:`CPPseIndex.build_from_blocks` gives every shard the same
    probed-tree semantics the single global index has.

    Returns an empty dict for hash plans (shards then cluster their own
    slice — exact within each shard, but the union of probed users may
    differ from the single index's; see :mod:`repro.serve.service`).
    """
    if plan.strategy != "block" or not plan.block_of_user:
        return {}
    members_of_block: dict[int, list[int]] = {}
    for uid, block_id in plan.block_of_user.items():
        members_of_block.setdefault(block_id, []).append(uid)
    shard_blocks: dict[int, list[UserBlock]] = {}
    for shard in range(plan.n_shards):
        local: list[UserBlock] = []
        for global_id in sorted(plan.block_of_shard.get(shard, [])):
            block = UserBlock(block_id=len(local))
            for uid in sorted(members_of_block.get(global_id, [])):
                profile = profiles.get(uid)
                if profile is None:
                    continue
                vector = np.asarray(profile.category_vector(n_categories), dtype=float)
                block.absorb(profile, vector)
            if block.user_ids:
                local.append(block)
        shard_blocks[shard] = local
    return shard_blocks


def merge_top_k(
    per_shard: Sequence[Sequence[tuple[int, float]]], k: int
) -> list[tuple[int, float]]:
    """Merge per-shard top-k lists into the global top-``k``.

    Each input list must already be exact for its shard's user slice and
    sorted by ``(-score, user_id)`` — which is what both the vectorized
    matcher and the CPPse-index produce.  The merged prefix is then
    bit-identical to running the single index over the whole population:
    the global top-k is the top-k of the union of per-shard top-k sets.
    ``k == 0`` (an empty recommendation window) yields an empty list.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return []
    merged: list[tuple[int, float]] = []
    for ranked in per_shard:
        merged.extend(ranked)
    merged.sort(key=lambda pair: (-pair[1], pair[0]))
    return merged[:k]
