"""The wire protocol of :mod:`repro.serve.server`: versioned JSON frames.

Every message on the wire is one **frame**: a 4-byte big-endian length
prefix followed by that many bytes of UTF-8 JSON.  The JSON payload is a
single object carrying the protocol version (``"v"``), the message kind
(``"kind"``: ``"request"`` or ``"reply"``) and the typed body.  Framing
is deliberately minimal — the same shape as the single-purpose
socket services the deployment exemplars use — but every decode step is
**typed and total**: torn frames, oversized lengths, malformed JSON,
unknown versions/kinds/ops and ill-typed fields all raise
:class:`ProtocolError` instead of hanging or propagating random
exceptions (mirroring the ``SnapshotError`` discipline of the snapshot
layer).

Exactness note: scores cross the wire as JSON numbers serialized via
shortest round-trip repr and parsed with correct rounding — both the
stdlib ``json`` codec and the optional :mod:`orjson` fast path (used
when the library is importable; same wire bytes, ~3x less CPU per
frame) round-trip every finite binary64 exactly, so a served ranked
list can be compared **bit for bit** against the in-process library
path — the wire conformance family in :mod:`repro.sim.conformance` does
exactly that.  Non-finite floats stay off the wire: frames are standard
JSON, scores are isfinite-checked at :func:`ranked_to_wire` (a NaN
score is a bug worth failing loudly on), and :func:`_require_float`
rejects non-finite numbers a hostile peer smuggles in.

The streaming :class:`FrameDecoder` is transport-agnostic (feed it bytes
from a blocking socket, an asyncio reader, or a fuzzer) and is the one
place frame-level validation lives for both the server and the clients.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field
from typing import Iterator

try:  # pragma: no cover - exercised when the wheel is present
    import orjson
except ImportError:  # pragma: no cover - stdlib fallback path
    orjson = None  # type: ignore[assignment]

from repro.datasets.schema import Interaction, SocialItem

#: Bump on any frame- or message-shape change; decoders reject unknown
#: versions with a typed error instead of guessing.
PROTOCOL_VERSION = 1

#: Frames above this are rejected before any allocation of the payload.
#: Generous for recommendation traffic (a 10k-item micro-batch fits);
#: small enough that a corrupt length prefix cannot OOM the peer.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Operations a server understands, and the reply statuses it emits.
REQUEST_OPS = (
    "observe",
    "update",
    "recommend",
    "recommend_batch",
    "snapshot",
    "stats",
    "metrics",
)
REPLY_STATUSES = ("ok", "error", "overload")

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A frame or message violated the wire protocol (torn frame,
    oversized length, malformed JSON, unknown version/kind/op, ill-typed
    field).  Always raised instead of hanging on malformed input."""


class ServerError(RuntimeError):
    """The server replied ``status="error"`` — the remote operation
    failed; the message carries the remote error text."""


class ServerOverloadError(ServerError):
    """The server replied ``status="overload"`` — the admission queue was
    full and the request was rejected *without* being executed.  Safe to
    retry after backing off."""


# ----------------------------------------------------------------------
# Typed messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """One client->server operation.

    Attributes:
        op: one of :data:`REQUEST_OPS`.
        request_id: client-chosen non-negative id; the matching reply
            echoes it (replies may interleave across coalesced batches,
            so clients match by id, not by order).
        payload: op-specific body — wire-shaped dicts on the encode side,
            typed domain objects (:class:`SocialItem`, ...) after
            :func:`decode_request` validated them at the boundary.
    """

    op: str
    request_id: int
    payload: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Reply:
    """One server->client outcome.

    Attributes:
        request_id: echo of the request's id.
        status: ``"ok"`` (``result`` holds the value), ``"error"``
            (``error`` holds the remote message) or ``"overload"``
            (rejected unexecuted by admission control).
        result: op-specific result for ``"ok"`` replies.
        error: remote error text for ``"error"``/``"overload"`` replies.
        trace: optional ``{"trace_id", "spans"}`` span tree for traced
            requests (``recommend`` with ``trace=true``); ``None`` — the
            default — is omitted from the wire entirely, so untraced
            replies are byte-identical to protocol v1 without the field.
    """

    request_id: int
    status: str = "ok"
    result: object = None
    error: str = ""
    trace: dict | None = None


# ----------------------------------------------------------------------
# Wire shapes of the domain objects
# ----------------------------------------------------------------------
def item_to_wire(item: SocialItem) -> dict:
    """A :class:`SocialItem` as a JSON-ready dict (all fields ship — the
    server-side extractor and scorer need the text and timestamp)."""
    return {
        "item_id": int(item.item_id),
        "category": int(item.category),
        "producer": int(item.producer),
        "entities": [int(e) for e in item.entities],
        "text": item.text,
        "timestamp": float(item.timestamp),
    }


def item_from_wire(obj: object) -> SocialItem:
    data = _require_dict(obj, "item")
    return SocialItem(
        item_id=_require_int(data.get("item_id"), "item.item_id"),
        category=_require_int(data.get("category"), "item.category"),
        producer=_require_int(data.get("producer"), "item.producer"),
        entities=tuple(
            _require_int(e, "item.entities[*]")
            for e in _require_list(data.get("entities"), "item.entities")
        ),
        text=_require_str(data.get("text"), "item.text"),
        timestamp=_require_float(data.get("timestamp"), "item.timestamp"),
    )


def interaction_to_wire(interaction: Interaction) -> dict:
    return {
        "user_id": int(interaction.user_id),
        "item_id": int(interaction.item_id),
        "category": int(interaction.category),
        "producer": int(interaction.producer),
        "timestamp": float(interaction.timestamp),
    }


def interaction_from_wire(obj: object) -> Interaction:
    data = _require_dict(obj, "interaction")
    return Interaction(
        user_id=_require_int(data.get("user_id"), "interaction.user_id"),
        item_id=_require_int(data.get("item_id"), "interaction.item_id"),
        category=_require_int(data.get("category"), "interaction.category"),
        producer=_require_int(data.get("producer"), "interaction.producer"),
        timestamp=_require_float(data.get("timestamp"), "interaction.timestamp"),
    )


def ranked_to_wire(ranked: list[tuple[int, float]]) -> list[list]:
    """A ranked ``(user_id, score)`` list as JSON pairs (shortest
    round-trip float serialization — bitwise parity survives the wire).

    Non-finite scores are refused here, at the boundary where scores
    enter the wire: a NaN ranking is a scorer bug, and failing loudly
    beats whatever a JSON codec would silently do with it.
    """
    out = []
    for uid, score in ranked:
        score = float(score)
        if not math.isfinite(score):
            raise ProtocolError(f"unencodable ranked score {score!r} for user {uid!r}")
        out.append([int(uid), score])
    return out


def ranked_from_wire(obj: object) -> list[tuple[int, float]]:
    pairs = _require_list(obj, "ranked")
    out: list[tuple[int, float]] = []
    for pair in pairs:
        entry = _require_list(pair, "ranked[*]")
        if len(entry) != 2:
            raise ProtocolError(f"ranked entry must be a [user_id, score] pair, got {entry!r}")
        out.append((_require_int(entry[0], "ranked[*].user_id"),
                    _require_float(entry[1], "ranked[*].score")))
    return out


# ----------------------------------------------------------------------
# Frame encode/decode
# ----------------------------------------------------------------------
def _dumps(body: dict) -> bytes:
    """Compact UTF-8 JSON bytes; orjson when present, stdlib otherwise.
    Both serialize floats shortest-round-trip (formatting may differ in
    exponent style; every finite binary64 parses back exactly either
    way, which is the invariant conformance relies on)."""
    if orjson is not None:
        return orjson.dumps(body)
    return json.dumps(body, separators=(",", ":"), allow_nan=False).encode("utf-8")


def _loads(data: bytes) -> object:
    if orjson is not None:
        return orjson.loads(data)
    return json.loads(data.decode("utf-8"))


def encode_frame(message: dict, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Length-prefix one JSON message (version stamped here, once)."""
    body = dict(message)
    body.setdefault("v", PROTOCOL_VERSION)
    try:
        data = _dumps(body)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message: {exc}") from exc
    if len(data) > max_frame_bytes:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return _LENGTH.pack(len(data)) + data


def encode_request(request: Request) -> bytes:
    if request.op not in REQUEST_OPS:
        raise ProtocolError(f"unknown request op {request.op!r}")
    message = {"kind": "request", "id": int(request.request_id), "op": request.op}
    message.update(request.payload)
    return encode_frame(message)


def encode_reply(reply: Reply) -> bytes:
    if reply.status not in REPLY_STATUSES:
        raise ProtocolError(f"unknown reply status {reply.status!r}")
    message = {
        "kind": "reply",
        "id": int(reply.request_id),
        "status": reply.status,
        "result": reply.result,
        "error": reply.error,
    }
    if reply.trace is not None:
        message["trace"] = reply.trace
    return encode_frame(message)


def decode_payload(data: bytes) -> dict:
    """One frame's JSON bytes -> validated top-level message dict."""
    try:
        obj = _loads(data)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload (bad JSON): {exc}") from exc
    message = _require_dict(obj, "message")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this peer speaks "
            f"{PROTOCOL_VERSION})"
        )
    kind = message.get("kind")
    if kind not in ("request", "reply"):
        raise ProtocolError(f"unknown message kind {kind!r}")
    return message


def decode_request(message: dict) -> Request:
    """Validated top-level message -> typed :class:`Request`.

    Every op's payload is shape-checked here, so a server handler never
    sees an ill-typed field — malformed input dies at the protocol
    boundary with a :class:`ProtocolError` naming the offending field.
    """
    if message.get("kind") != "request":
        raise ProtocolError(f"expected a request, got kind {message.get('kind')!r}")
    op = message.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(f"unknown request op {op!r}")
    request_id = _require_id(message.get("id"))
    payload: dict = {}
    if op == "observe":
        payload["item"] = item_from_wire(message.get("item"))
    elif op == "update":
        payload["interaction"] = interaction_from_wire(message.get("interaction"))
        item = message.get("item")
        payload["item"] = None if item is None else item_from_wire(item)
    elif op == "recommend":
        payload["item"] = item_from_wire(message.get("item"))
        payload["k"] = _require_optional_k(message.get("k"))
        trace_flag = message.get("trace", False)
        if not isinstance(trace_flag, bool):
            raise ProtocolError(f"recommend.trace must be a bool, got {trace_flag!r}")
        payload["trace"] = trace_flag
    elif op == "recommend_batch":
        items = _require_list(message.get("items"), "items")
        payload["items"] = [item_from_wire(entry) for entry in items]
        payload["k"] = _require_optional_k(message.get("k"))
    elif op == "snapshot":
        payload["path"] = _require_str(message.get("path"), "path")
        reload_flag = message.get("reload", False)
        if not isinstance(reload_flag, bool):
            raise ProtocolError(f"snapshot.reload must be a bool, got {reload_flag!r}")
        payload["reload"] = reload_flag
    # "stats" and "metrics" carry no payload.
    return Request(op=op, request_id=request_id, payload=payload)


def decode_reply(message: dict) -> Reply:
    if message.get("kind") != "reply":
        raise ProtocolError(f"expected a reply, got kind {message.get('kind')!r}")
    status = message.get("status")
    if status not in REPLY_STATUSES:
        raise ProtocolError(f"unknown reply status {status!r}")
    error = message.get("error", "")
    if not isinstance(error, str):
        raise ProtocolError(f"reply.error must be a string, got {error!r}")
    trace = message.get("trace")
    if trace is not None and not isinstance(trace, dict):
        raise ProtocolError(f"reply.trace must be an object, got {trace!r}")
    return Reply(
        request_id=_require_id(message.get("id")),
        status=status,
        result=message.get("result"),
        error=error,
        trace=trace,
    )


class FrameDecoder:
    """Incremental frame splitter shared by the server and both clients.

    Feed it raw bytes as they arrive; it yields complete, validated
    top-level message dicts and buffers the rest.  A length prefix above
    ``max_frame_bytes`` (or a negative remainder — impossible with
    unsigned lengths, torn input shows up as a stalled partial frame) is
    rejected immediately; :meth:`close` converts an end-of-stream inside
    a partial frame into a typed torn-frame error.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[dict]:
        """Consume ``data``, yielding every completed message."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            yield decode_payload(payload)

    def close(self) -> None:
        """Signal end-of-stream; raises on a torn (partial) frame."""
        if self._buffer:
            raise ProtocolError(
                f"connection closed mid-frame ({len(self._buffer)} bytes of a "
                f"partial frame buffered)"
            )


# ----------------------------------------------------------------------
# Field validators (every decode failure is a ProtocolError)
# ----------------------------------------------------------------------
def _require_dict(value: object, name: str) -> dict:
    if not isinstance(value, dict):
        raise ProtocolError(f"{name} must be an object, got {type(value).__name__}")
    return value


def _require_list(value: object, name: str) -> list:
    if not isinstance(value, list):
        raise ProtocolError(f"{name} must be an array, got {type(value).__name__}")
    return value


def _require_int(value: object, name: str) -> int:
    # bool is an int subclass but never a valid id/count on this wire.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer, got {value!r}")
    return value


def _require_float(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{name} must be a number, got {value!r}")
    value = float(value)
    # Non-finite values cannot arrive through a standard-JSON codec, but
    # the stdlib parser accepts NaN/Infinity literals — reject them here
    # so both codec paths present the same wire.
    if not math.isfinite(value):
        raise ProtocolError(f"{name} must be finite, got {value!r}")
    return value


def _require_str(value: object, name: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"{name} must be a string, got {value!r}")
    return value


def _require_id(value: object) -> int:
    request_id = _require_int(value, "id")
    if request_id < 0:
        raise ProtocolError(f"id must be non-negative, got {request_id}")
    return request_id


def _require_optional_k(value: object) -> int | None:
    if value is None:
        return None
    k = _require_int(value, "k")
    if k < 0:
        raise ProtocolError(f"k must be non-negative, got {k}")
    return k
