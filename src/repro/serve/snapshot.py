"""Versioned on-disk snapshots of trained serving state.

A snapshot is a directory::

    <path>/
      manifest.json   # format version, kind, config, shard plan, checksum
      state.pkl       # the live recommender/service object graph

``state.pkl`` pickles the fitted object itself — profiles, entity
vocabulary/extractor/expander, the BiHMM, the interest predictor
(including its per-user filtered states), the vectorized matcher and any
CPPse-index, shard stores included for a sharded service.  Persisting
the *live* structures rather than re-deriving them on load matters for
exactness: a maintained CPPse-index has absorbed Algorithm-2 updates
(reserved-zone claims, block rebuilds) that a fresh re-clustering of the
same profiles would not reproduce, and a query probes trees by block
universe — so only the preserved index is guaranteed to return
bit-identical recommendations after a warm start.

``manifest.json`` duplicates the :class:`~repro.core.config.SsRecConfig`
and the optional :class:`~repro.serve.sharding.ShardPlan` as plain JSON
for operator inspection, records the format version, and carries a
SHA-256 of the payload so corruption fails loudly instead of serving
garbage.  On load the manifest config is round-tripped through
``SsRecConfig.from_dict`` (unknown keys rejected) and cross-checked
against the pickled object's config.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from pathlib import Path

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender

#: Bump when the payload layout changes incompatibly.
#: Version 2: the execution-plan core (repro.exec) added pickled state —
#: ProfileStore.version, VectorizedMatcher._synced_store_version, the
#: facades' exec epoch/result-cache flags, EntityExpander's expand memo.
#: Version-1 snapshots lack those attributes and would load cleanly only
#: to crash on first serve, so they are rejected by the version check.
SNAPSHOT_FORMAT_VERSION = 2
MANIFEST_NAME = "manifest.json"
STATE_NAME = "state.pkl"


class SnapshotError(ValueError):
    """A snapshot directory is missing, corrupt, or incompatible."""


def _trained_of(recommender) -> SsRecRecommender:
    trained = getattr(recommender, "trained", recommender)
    if not isinstance(trained, SsRecRecommender) or trained.bihmm is None:
        raise ValueError("only a fitted recommender can be snapshotted")
    return trained


def save_snapshot(recommender, path) -> Path:
    """Write ``recommender`` (a fitted :class:`SsRecRecommender` or a
    :class:`~repro.serve.service.ShardedRecommender`) to ``path``.

    Returns the snapshot directory.  The payload is written before the
    manifest, so a torn write leaves no valid manifest behind.
    """
    trained = _trained_of(recommender)
    plan = getattr(recommender, "plan", None)
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(recommender, protocol=pickle.HIGHEST_PROTOCOL)
    (directory / STATE_NAME).write_bytes(blob)
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "kind": "sharded" if plan is not None else "ssrec",
        "created_unix": time.time(),
        "config": trained.config.to_dict(),
        "use_index": bool(getattr(recommender, "use_index", trained.use_index)),
        # Informational: the backend the service ran under at save time.
        # Segments/pools are runtime artifacts — never persisted; a
        # loaded shmem service republishes lazily on its first serve.
        "serve_backend": str(
            getattr(recommender, "backend", trained.config.serve_backend)
        ),
        "seed": trained.seed,
        "n_categories": trained.bihmm.n_categories,
        "n_users": len(trained.profiles),
        "payload": STATE_NAME,
        "payload_sha256": hashlib.sha256(blob).hexdigest(),
        "shard_plan": plan.to_dict() if plan is not None else None,
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def read_manifest(path) -> dict:
    """Parse and version-check a snapshot's manifest.

    Every failure mode — missing directory, unreadable file, malformed
    JSON, unsupported version — raises :class:`SnapshotError`, so callers
    handle exactly one exception type.
    """
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest at {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot manifest at {manifest_path} is not an object")
    missing = [
        key
        for key in ("format_version", "payload", "payload_sha256", "config")
        if key not in manifest
    ]
    if missing:
        raise SnapshotError(
            f"snapshot manifest at {manifest_path} is missing "
            f"required keys: {', '.join(missing)}"
        )
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format {version!r} unsupported "
            f"(this code reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    return manifest


def _load_payload(path, manifest: dict):
    payload_path = Path(path) / manifest["payload"]
    try:
        blob = payload_path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"snapshot payload missing at {payload_path}: {exc}") from exc
    digest = hashlib.sha256(blob).hexdigest()
    if digest != manifest["payload_sha256"]:
        raise SnapshotError(
            f"snapshot payload checksum mismatch at {path} "
            f"(expected {manifest['payload_sha256'][:12]}…, got {digest[:12]}…)"
        )
    try:
        restored = pickle.loads(blob)
    except Exception as exc:
        # Checksum passed but the pickle does not deserialize: the payload
        # was written by incompatible code (or truncated before the
        # manifest was).  Surface the typed error, never partial state.
        raise SnapshotError(
            f"snapshot payload at {payload_path} failed to deserialize: {exc}"
        ) from exc
    # The manifest config is authoritative documentation of what was
    # saved; round-trip it (rejecting unknown keys) and cross-check.
    config = SsRecConfig.from_dict(manifest["config"])
    trained = _trained_of(restored)
    if trained.config != config:
        raise SnapshotError(
            "snapshot manifest config disagrees with the pickled state"
        )
    return restored


def load_recommender(path) -> SsRecRecommender:
    """Warm-start a single-process :class:`SsRecRecommender` from ``path``.

    For ``"sharded"`` snapshots this returns the underlying trained
    recommender (use :func:`load_sharded` to restore the full service).
    """
    manifest = read_manifest(path)
    restored = _load_payload(path, manifest)
    return _trained_of(restored)


def load_sharded(path, workers: int | None = None, backend: str | None = None):
    """Warm-start a :class:`~repro.serve.service.ShardedRecommender`.

    ``"sharded"`` snapshots restore their shards — indexes, pending
    maintenance and plan — exactly as saved (worker pools are never part
    of a snapshot; the process backend respawns lazily on first use).
    ``"ssrec"`` snapshots are sharded on load using the config's
    ``n_shards``/``shard_strategy``.  ``backend`` overrides the restored
    service's fan-out backend without touching its state.
    """
    from repro.core.config import SERVE_BACKENDS
    from repro.serve.service import ShardedRecommender  # local: avoids cycle

    if backend is not None and backend not in SERVE_BACKENDS:
        raise ValueError(f"backend must be one of {SERVE_BACKENDS}, got {backend!r}")
    manifest = read_manifest(path)
    restored = _load_payload(path, manifest)
    if isinstance(restored, ShardedRecommender):
        if workers is not None:
            restored.workers = max(0, int(workers))
        if backend is not None:
            restored.backend = backend
        return restored
    return ShardedRecommender.from_trained(
        restored,
        use_index=bool(manifest["use_index"]),
        workers=workers,
        backend=backend,
    )
