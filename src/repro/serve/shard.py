"""One serving shard: an exact recommender over a slice of the users.

A :class:`RecommenderShard` owns a per-shard :class:`~repro.core.profiles.ProfileStore`
(aliasing the global profile objects), its own
:class:`~repro.core.matching.VectorizedMatcher` and — in index mode — its
own :class:`~repro.index.cppse.CPPseIndex` built over just its user slice.
The trained model state (BiHMM, interest predictor, expander, scorer) is
*shared* across shards: scoring a user involves only that user's profile
and the shared parameters, so per-shard results are bit-identical to the
corresponding rows of a single global matcher/index.

Algorithm 2 maintenance runs shard-locally: each shard tracks its own
pending profile updates and flushes them into its own index on the
configured cadence (or lazily before serving), exactly as the single-index
facade does — just over a smaller population.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import SsRecConfig
from repro.core.matching import MatchingScorer, VectorizedMatcher
from repro.core.profiles import ProfileEvent, ProfileStore, UserProfile
from repro.datasets.schema import Interaction, SocialItem
from repro.index.cppse import CPPseIndex
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.trace import span


@dataclass
class ShardMetrics:
    """Serving statistics of one shard.

    Attributes:
        queries: per-item ``recommend`` calls answered.
        batches: ``recommend_batch`` windows answered.
        items_served: items across both paths.
        candidates_returned: total ``(user, score)`` pairs returned.
        maintenance_runs: Algorithm 2 flushes executed.
        profiles_refreshed: profiles Algorithm 2 touched in total.
        item_latency: per-*item* serving seconds as a fixed-bucket
            :class:`~repro.obs.metrics.LatencyHistogram` — a window's
            wall-clock is amortized over its items so per-item and
            batched traffic contribute on the same scale (mirrors
            ``StreamEvaluator.run_batch``'s accounting), and shard
            histograms merge exactly across processes.
    """

    queries: int = 0
    batches: int = 0
    items_served: int = 0
    candidates_returned: int = 0
    maintenance_runs: int = 0
    profiles_refreshed: int = 0
    item_latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record_serve(self, seconds: float, n_items: int, n_candidates: int) -> None:
        per_item = float(seconds) / n_items if n_items else 0.0
        self.item_latency.record(per_item, n_items)
        self.items_served += n_items
        self.candidates_returned += n_candidates

    @property
    def total_seconds(self) -> float:
        return self.item_latency.sum

    @property
    def mean_latency(self) -> float:
        return self.item_latency.mean

    def as_dict(self) -> dict:
        """Summary row the service's ``metrics()`` report exposes."""
        row = {
            "queries": self.queries,
            "batches": self.batches,
            "items_served": self.items_served,
            "candidates_returned": self.candidates_returned,
            "maintenance_runs": self.maintenance_runs,
            "profiles_refreshed": self.profiles_refreshed,
        }
        row.update(
            (name.replace("_ms", "_latency_ms"), value)
            for name, value in self.item_latency.summary_ms().items()
        )
        return row


class RecommenderShard:
    """Exact top-k serving over one user slice.

    Args:
        shard_id: dense id within the service.
        profiles: the shard-local store (aliases global profile objects).
        scorer: the shared trained scorer (interest + expansion + config).
        n_categories: category count for index construction.
        config: ssRec tunables (maintenance cadence, index parameters).
        use_index: build a shard-local CPPse-index; otherwise the shard
            serves through its vectorized sequential scan.
        blocks: pre-assigned slice of the global blocking (block-aware
            plans); when given, the index is built over exactly these
            blocks instead of re-clustering the shard's users — the key
            to bit-identical parity with the single index.
        maintenance_interval: Algorithm-2 flush cadence; defaults to the
            config value.  The service passes the trained facade's
            (mutable) ``maintenance_interval`` attribute through so a
            runtime-tuned cadence survives sharding.
    """

    def __init__(
        self,
        shard_id: int,
        profiles: ProfileStore,
        scorer: MatchingScorer,
        n_categories: int,
        config: SsRecConfig,
        use_index: bool = False,
        blocks=None,
        maintenance_interval: int | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.profiles = profiles
        self.scorer = scorer
        self.n_categories = int(n_categories)
        self.config = config
        self.use_index = bool(use_index)
        self.matcher = VectorizedMatcher(scorer, profiles)
        self.matcher.sync()
        self.index: CPPseIndex | None = None
        if self.use_index:
            if blocks is not None:
                self.index = CPPseIndex.build_from_blocks(
                    profiles=profiles,
                    scorer=scorer,
                    n_categories=self.n_categories,
                    blocks=blocks,
                    config=config,
                )
            else:
                self.index = CPPseIndex.build(
                    profiles=profiles,
                    scorer=scorer,
                    n_categories=self.n_categories,
                    config=config,
                )
        self.metrics = ShardMetrics()
        self.maintenance_interval = int(
            config.maintenance_interval
            if maintenance_interval is None
            else maintenance_interval
        )
        self._maintenance_pending: set[int] = set()
        self._updates_since_maintenance = 0
        self._scoring = config.scoring
        self._native = None  # lazily-built NativeEngine (native scoring only)

    def set_scoring(self, mode: str) -> None:
        """Switch this shard's scoring backend (see the facades'
        ``set_scoring``); the native engine is rebuilt lazily."""
        from repro.core.config import SCORING_BACKENDS

        if mode not in SCORING_BACKENDS:
            raise ValueError(
                f"scoring must be one of {SCORING_BACKENDS}, got {mode!r}"
            )
        self._scoring = mode
        self._native = None

    def _native_engine(self):
        """The shard's fused-kernel engine when native scoring is both
        requested and available; None otherwise (vectorized serving).

        Shards serve their slice directly (no compiled plan), so the
        native-vs-fallback decision the plan compiler makes in
        :func:`repro.exec.compile._use_native` is restated here, with the
        same one-time warning and obs counter on fallback.
        """
        if self._scoring != "native":
            return None
        if self._native is None:
            from repro.core.kernels import (
                NativeEngine,
                native_ready,
                record_fallback,
            )

            if not native_ready():
                record_fallback(f"shard-{self.shard_id}")
                self._scoring = "vectorized"  # don't re-probe per request
                return None
            self._native = NativeEngine(self.matcher, self.index)
        return self._native

    @property
    def n_users(self) -> int:
        return len(self.profiles)

    # ------------------------------------------------------------------
    # Stream updates (shard-local Algorithm 2)
    # ------------------------------------------------------------------
    def adopt(self, profile: UserProfile) -> None:
        """Take ownership of a (possibly brand-new) user profile."""
        self.profiles.add(profile)

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        """Record one interaction for a user this shard owns."""
        event = ProfileEvent.from_interaction(interaction, item)
        profile, _ = self.profiles.record(interaction.user_id, event)
        if self.index is not None:
            self._maintenance_pending.add(profile.user_id)
            self._updates_since_maintenance += 1
            if self._updates_since_maintenance >= self.maintenance_interval:
                self.run_maintenance()

    def run_maintenance(self) -> int:
        """Flush pending profile updates into this shard's index."""
        if self.index is None or not self._maintenance_pending:
            self._maintenance_pending.clear()
            self._updates_since_maintenance = 0
            return 0
        with span("shard.maintenance", shard=self.shard_id):
            updated = self.index.maintain(sorted(self._maintenance_pending))
        self._maintenance_pending.clear()
        self._updates_since_maintenance = 0
        self.metrics.maintenance_runs += 1
        self.metrics.profiles_refreshed += updated
        return updated

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def recommend(self, item: SocialItem, k: int) -> list[tuple[int, float]]:
        """Shard-local exact top-``k``, sorted by ``(-score, user_id)``."""
        started = time.perf_counter()
        engine = self._native_engine()
        if self.index is not None:
            if self._maintenance_pending:
                self.run_maintenance()
            with span("shard.knn", shard=self.shard_id, n_items=1):
                ranked = engine.knn(item, k) if engine else self.index.knn(item, k)
        else:
            with span("shard.scan", shard=self.shard_id, n_items=1):
                ranked = engine.top_k(item, k) if engine else self.matcher.top_k(item, k)
        self.metrics.queries += 1
        self.metrics.record_serve(time.perf_counter() - started, 1, len(ranked))
        return ranked

    def recommend_batch(
        self, items: Sequence[SocialItem], k: int
    ) -> list[list[tuple[int, float]]]:
        """Shard-local exact top-``k`` lists for a micro-batch."""
        items = list(items)
        if not items:
            return []
        started = time.perf_counter()
        engine = self._native_engine()
        if self.index is not None:
            if self._maintenance_pending:
                self.run_maintenance()
            with span("shard.knn", shard=self.shard_id, n_items=len(items)):
                ranked_lists = (
                    engine.knn_batch(items, k)
                    if engine
                    else self.index.knn_batch(items, k)
                )
        else:
            with span("shard.scan", shard=self.shard_id, n_items=len(items)):
                ranked_lists = (
                    engine.top_k_batch(items, k)
                    if engine
                    else self.matcher.top_k_batch(items, k)
                )
        self.metrics.batches += 1
        self.metrics.record_serve(
            time.perf_counter() - started,
            len(items),
            sum(len(r) for r in ranked_lists),
        )
        return ranked_lists

    # ------------------------------------------------------------------
    # Publication (shared-memory backend)
    # ------------------------------------------------------------------
    def prepare_for_publish(self) -> None:
        """Settle every lazily-deferred write before a read-only publish.

        The shared-memory backend (:mod:`repro.serve.shmem`) hands workers
        *read-only* views of this shard's arrays, so any write a worker
        would have performed lazily at serve time must happen here, in the
        parent, first — at the **same stream position** the worker would
        have performed it, which is what keeps the published copy
        bit-identical to in-process serving:

        - pending index maintenance is flushed (mirroring the lazy flush
          at the top of :meth:`recommend`/:meth:`recommend_batch`);
        - the matcher is synced, so a worker-side ``sync()`` takes the
          O(1) version fast path instead of refreshing rows in place.
        """
        if self.index is not None and self._maintenance_pending:
            self.run_maintenance()
        self.matcher.sync()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def obs_registry(self) -> MetricsRegistry:
        """This shard's serving telemetry as a mergeable registry.

        Every metric carries a ``shard`` label, so the per-shard views a
        worker ships back (or the service collects in-process) merge into
        one aggregate without collisions.
        """
        registry = MetricsRegistry()
        shard = str(self.shard_id)
        metrics = self.metrics
        registry.counter("shard.queries", shard=shard).inc(metrics.queries)
        registry.counter("shard.batches", shard=shard).inc(metrics.batches)
        registry.counter("shard.items_served", shard=shard).inc(metrics.items_served)
        registry.counter("shard.candidates_returned", shard=shard).inc(
            metrics.candidates_returned
        )
        registry.counter("shard.maintenance_runs", shard=shard).inc(
            metrics.maintenance_runs
        )
        registry.counter("shard.profiles_refreshed", shard=shard).inc(
            metrics.profiles_refreshed
        )
        registry.gauge("shard.users", shard=shard).set(self.n_users)
        registry.histogram(
            "shard.item_seconds", bounds=metrics.item_latency.bounds, shard=shard
        ).merge(metrics.item_latency)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "index" if self.use_index else "scan"
        return f"RecommenderShard(id={self.shard_id}, users={self.n_users}, mode={mode})"
