"""Clients for :class:`~repro.serve.server.RecommenderServer`.

Two flavors over the same framed JSON protocol:

- :class:`RecommenderClient` — blocking sockets, the drop-in remote
  recommender for synchronous callers (the conformance runner serves its
  ``served-*`` replicas through it).  Besides the one-call methods it
  offers :meth:`RecommenderClient.recommend_window` — *pipelined*
  recommends (send all, then collect all) so the server's coalescer
  actually sees concurrent requests from a synchronous caller.
- :class:`AsyncRecommenderClient` — asyncio streams with a background
  reader resolving replies by request id, supporting arbitrarily many
  in-flight requests on one connection; the open-loop load generator
  drives traffic through it.

Both raise :class:`~repro.serve.protocol.ProtocolError` on wire garbage,
:class:`~repro.serve.protocol.ServerOverloadError` on typed overload
replies (retryable), and :class:`~repro.serve.protocol.ServerError` on
remote failures.
"""

from __future__ import annotations

import asyncio
import socket
from collections.abc import Sequence

from repro.datasets.schema import Interaction, SocialItem
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    Reply,
    Request,
    ServerError,
    ServerOverloadError,
    decode_reply,
    encode_request,
    interaction_to_wire,
    item_to_wire,
    ranked_from_wire,
)

RankedList = list[tuple[int, float]]


def _reply_value(reply: Reply) -> object:
    """Unwrap one reply: ok -> result, overload/error -> typed raise."""
    if reply.status == "ok":
        return reply.result
    if reply.status == "overload":
        raise ServerOverloadError(reply.error or "server overloaded")
    raise ServerError(reply.error or "remote operation failed")


class RecommenderClient:
    """Blocking-socket client; one connection, request/reply by id.

    Args:
        host, port: server address (as returned by ``ServerThread.start``).
        timeout: per-``recv`` socket timeout in seconds; a silent server
            surfaces as ``socket.timeout`` instead of a hang.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder(max_frame_bytes)
        self._next_id = 0
        self._replies: dict[int, Reply] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(self, op: str, payload: dict) -> int:
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_request(Request(op, request_id, payload)))
        return request_id

    def _receive(self, request_id: int) -> Reply:
        """Read frames until ``request_id``'s reply arrives (replies for
        other in-flight ids are parked, preserving pipelining)."""
        while request_id not in self._replies:
            data = self._sock.recv(65536)
            if not data:
                self._decoder.close()  # torn frame -> ProtocolError
                raise ProtocolError("server closed the connection before replying")
            for message in self._decoder.feed(data):
                reply = decode_reply(message)
                self._replies[reply.request_id] = reply
        return self._replies.pop(request_id)

    def _call(self, op: str, payload: dict) -> object:
        return _reply_value(self._receive(self._send(op, payload)))

    # ------------------------------------------------------------------
    # The serving surface
    # ------------------------------------------------------------------
    def observe(self, item: SocialItem) -> None:
        """Stream one new item into the served model (ack awaited, so a
        subsequent recommend sees it — the library-call ordering)."""
        self._call("observe", {"item": item_to_wire(item)})

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        self._call("update", {
            "interaction": interaction_to_wire(interaction),
            "item": None if item is None else item_to_wire(item),
        })

    def recommend(self, item: SocialItem, k: int | None = None) -> RankedList:
        return ranked_from_wire(self._call("recommend", {"item": item_to_wire(item), "k": k}))

    def recommend_traced(
        self, item: SocialItem, k: int | None = None
    ) -> tuple[RankedList, dict | None]:
        """One recommend with its server-side span tree.

        Returns ``(ranked, trace)`` where ``trace`` is the reply's
        ``{"trace_id", "spans"}`` dict — the request's full cross-process
        span tree (feed the spans to
        :func:`repro.obs.trace.build_tree` to nest them).  The ranked
        list is bit-identical to :meth:`recommend`'s; tracing is purely
        observational.
        """
        reply = self._receive(
            self._send("recommend", {"item": item_to_wire(item), "k": k, "trace": True})
        )
        return ranked_from_wire(_reply_value(reply)), reply.trace

    def recommend_batch(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[RankedList]:
        """One explicit micro-batch request (server executes it as one
        batch regardless of coalescing)."""
        result = self._call(
            "recommend_batch",
            {"items": [item_to_wire(item) for item in items], "k": k},
        )
        if not isinstance(result, list):
            raise ProtocolError(f"recommend_batch result must be an array, got {result!r}")
        return [ranked_from_wire(entry) for entry in result]

    def recommend_window(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[RankedList]:
        """Pipelined per-item recommends: send every request, then
        collect every reply.  On a coalescing server the window arrives
        as concurrent requests and is served through the dynamic
        micro-batcher — this is how a synchronous caller exercises
        coalescing."""
        ids = [self._send("recommend", {"item": item_to_wire(item), "k": k}) for item in items]
        return [ranked_from_wire(_reply_value(self._receive(rid))) for rid in ids]

    def snapshot(self, path, reload: bool = False) -> dict:
        """Server-side snapshot save (optionally swapping in the reload —
        a warm restart without dropping the connection)."""
        result = self._call("snapshot", {"path": str(path), "reload": bool(reload)})
        if not isinstance(result, dict):
            raise ProtocolError(f"snapshot result must be an object, got {result!r}")
        return result

    def stats(self) -> dict:
        result = self._call("stats", {})
        if not isinstance(result, dict):
            raise ProtocolError(f"stats result must be an object, got {result!r}")
        return result

    def metrics(self) -> dict:
        """The server's ``metrics`` route: ``{"registry", "prometheus",
        "slow_requests"}`` — the merged server + owner registry dump."""
        result = self._call("metrics", {})
        if not isinstance(result, dict):
            raise ProtocolError(f"metrics result must be an object, got {result!r}")
        return result

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "RecommenderClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncRecommenderClient:
    """Asyncio client with unbounded pipelining on one connection.

    A background reader task resolves per-request futures by id, so any
    number of requests may be in flight concurrently — the open-loop
    load generator's transport.  Build with :meth:`connect`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame_bytes)
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> "AsyncRecommenderClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes)

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    self._fail_pending(ProtocolError("server closed the connection"))
                    return
                for message in self._decoder.feed(data):
                    reply = decode_reply(message)
                    future = self._pending.pop(reply.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(reply)
        except (ProtocolError, ConnectionError, asyncio.CancelledError) as exc:
            self._fail_pending(exc if isinstance(exc, Exception)
                               else ProtocolError("connection closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def request(self, op: str, payload: dict) -> object:
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_request(Request(op, request_id, payload)))
        # drain() only above the transport's buffered-write threshold:
        # requests are small, so the common case is a pure synchronous
        # buffer append — the await round-trip is the hot-path cost, not
        # the copy.
        if self._writer.transport.get_write_buffer_size() > 1 << 16:
            await self._writer.drain()
        return _reply_value(await future)

    async def observe(self, item: SocialItem) -> None:
        await self.request("observe", {"item": item_to_wire(item)})

    async def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        await self.request("update", {
            "interaction": interaction_to_wire(interaction),
            "item": None if item is None else item_to_wire(item),
        })

    async def recommend(self, item: SocialItem, k: int | None = None) -> RankedList:
        result = await self.request("recommend", {"item": item_to_wire(item), "k": k})
        return ranked_from_wire(result)

    async def recommend_batch(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[RankedList]:
        result = await self.request(
            "recommend_batch",
            {"items": [item_to_wire(item) for item in items], "k": k},
        )
        if not isinstance(result, list):
            raise ProtocolError(f"recommend_batch result must be an array, got {result!r}")
        return [ranked_from_wire(entry) for entry in result]

    async def recommend_traced(
        self, item: SocialItem, k: int | None = None
    ) -> tuple[RankedList, dict | None]:
        """One recommend with its server-side span tree (see
        :meth:`RecommenderClient.recommend_traced`)."""
        request_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_request(Request(
            "recommend", request_id,
            {"item": item_to_wire(item), "k": k, "trace": True},
        )))
        if self._writer.transport.get_write_buffer_size() > 1 << 16:
            await self._writer.drain()
        reply = await future
        return ranked_from_wire(_reply_value(reply)), reply.trace

    async def stats(self) -> dict:
        result = await self.request("stats", {})
        if not isinstance(result, dict):
            raise ProtocolError(f"stats result must be an object, got {result!r}")
        return result

    async def metrics(self) -> dict:
        """The server's ``metrics`` route (see
        :meth:`RecommenderClient.metrics`)."""
        result = await self.request("metrics", {})
        if not isinstance(result, dict):
            raise ProtocolError(f"metrics result must be an object, got {result!r}")
        return result

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
