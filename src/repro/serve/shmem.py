"""Shared-memory shard fan-out: zero-copy workers, epoch copy-on-publish.

The process backend (:mod:`repro.serve.workers`) ships every worker a
*full pickle copy* of its shard and pays a pickle round-trip per
request — measured in ``BENCH_shard_scaling.json``, that overhead eats
the parallelism the block-partitioned CPPse index was supposed to buy
(throughput *drops* as shards grow).  This module keeps the processes
but removes both copies:

- **State is mapped, not copied.**  A shard's read-mostly model state —
  the stacked score matrices and smoothed interest columns
  (:meth:`~repro.core.matching.VectorizedMatcher.state_arrays`), block
  encodings, profile count arrays — is published *once* per version into
  a ``multiprocessing.shared_memory`` segment.  Publication pickles the
  shard with **protocol 5 out-of-band buffers**: the object graph
  (dicts, profile metadata, config) stays a small pickle stream while
  every C-contiguous array body lands in the segment verbatim.  A worker
  attaches by rebuilding the graph from the stream with ``buffers=``
  pointing at **read-only** views of the segment, so its arrays alias
  shared pages — zero copies, and any accidental in-place write raises
  ``ValueError`` instead of corrupting shared state.
- **Epoch copy-on-publish.**  Workers never write.  Mutations
  (update/observe/maintenance) happen on the parent's authoritative
  shard objects and mark the shard *dirty*; at the next serve window the
  parent settles lazy writes (:meth:`RecommenderShard.prepare_for_publish`),
  publishes a fresh segment under a bumped epoch, and retires the old
  one.  A reader either holds the old (complete, immutable) mapping or
  attaches the new one — there is no in-between, so torn reads are
  structurally impossible.  The :class:`SegmentManifest` a request
  carries names the segment *and* its epoch; an epoch mismatch between
  manifest and segment header is a typed :class:`ShmemError`, never a
  silently wrong answer.
- **One message per shard per window.**  A serve window sends each
  worker a single ``(manifest, payload)`` request — the payload (item
  or micro-batch plus ``k``) is pickled once and shared by every shard —
  and receives one packed reply, replacing per-request pickle queues.

Segment layout (all little-endian)::

    offset 0   : MAGIC = b"RPSHM001"            (8 bytes)
    offset 8   : header length H                (uint32)
    offset 12  : header JSON                    (H bytes)
    align64    : pickle stream                  (protocol 5, no buffers)
    align64    : buffer 0, buffer 1, ...        (each 64-byte aligned)

    header JSON = {"epoch": int,
                   "pickle":  [rel_offset, length],
                   "buffers": [[rel_offset, length], ...]}

    (offsets relative to the 64-aligned data region start, which is
    derived from H — keeping the header independent of its own size)

The manifest carries a SHA-256 over magic + header + pickle stream, so a
manifest/segment mismatch (wrong segment reused under a recycled name,
truncated publish) is detected at attach.

A note on CPython's ``resource_tracker`` (no ``track=False`` before
3.13): attaching registers the segment again, which is infamous for
spurious unlink-at-exit when the attacher runs its *own* tracker.  Here
every worker is spawned through ``multiprocessing``, whose preparation
data hands the child the parent's tracker fd — all processes share one
tracker, so the attach-side registration is an idempotent set-add, the
parent's explicit ``unlink()`` unregisters exactly once, and an
abandoned session still gets its segments reclaimed by the tracker.
Nothing here must ever call ``resource_tracker.unregister`` manually;
doing so would erase that crash cleanup.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import pickle
import secrets
import struct
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace, span, use_trace
from repro.serve.workers import _WorkerPoolBase, ShardWorkerError

#: Every segment name starts with this — the suite-wide leak guard in
#: ``tests/conftest.py`` scans ``/dev/shm`` for it after each test.
SEGMENT_PREFIX = "repro-shm-"

#: Format magic; bump the trailing digits on layout changes.
MAGIC = b"RPSHM001"

_HEADER_LEN_STRUCT = struct.Struct("<I")
_ALIGN = 64


class ShmemError(ShardWorkerError):
    """A shared-memory segment is missing, stale, or malformed."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ----------------------------------------------------------------------
# Publish / attach
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SegmentManifest:
    """Versioned pointer to one published segment.

    Travels on worker request queues (and in pool/publisher bookkeeping);
    a worker attaches *by manifest*, and the manifest's ``epoch`` must
    match the epoch baked into the segment header — the handshake that
    turns a stale or recycled segment into a typed error.
    """

    name: str
    epoch: int
    nbytes: int
    checksum: str


#: Segments whose close was blocked by a still-exported buffer view are
#: parked here instead of leaking the mapping silently (closing with
#: exports raises ``BufferError``).  Process exit reclaims them.
_GRAVEYARD: list[shared_memory.SharedMemory] = []


@dataclass
class Attachment:
    """A live read-only mapping of one published segment.

    ``state`` is the reconstructed object graph whose array bodies alias
    the segment; keep the attachment alive as long as the state is used,
    then :meth:`close` it (dropping ``state`` first — the arrays pin the
    mapping).
    """

    shm: shared_memory.SharedMemory
    state: object
    manifest: SegmentManifest
    _views: list = field(default_factory=list, repr=False)

    def close(self) -> None:
        """Drop the state graph and unmap the segment.

        Safe to call twice.  If a caller still holds arrays backed by the
        segment, the mapping cannot be unmapped — it is parked in a
        module graveyard (reclaimed at process exit) rather than raising
        out of teardown.
        """
        self.state = None
        gc.collect()  # collect the array graph so buffer exports drop
        views, self._views = self._views, []
        for view in reversed(views):
            try:
                view.release()
            except BufferError:  # pragma: no cover - caller kept arrays
                pass
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - caller kept arrays
            _GRAVEYARD.append(self.shm)


def publish_state(
    state, *, epoch: int, prefix: str = SEGMENT_PREFIX
) -> tuple[SegmentManifest, shared_memory.SharedMemory]:
    """Serialize ``state`` into a fresh shared-memory segment.

    Returns the manifest plus the open segment handle; the caller owns
    the segment (keeps it mapped for the readers, unlinks it on retire —
    :class:`ShardPublisher` does both).  Array buffers are written
    64-byte aligned so attached views keep NumPy's preferred alignment.
    """
    buffers: list[pickle.PickleBuffer] = []
    blob = pickle.dumps(state, protocol=5, buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]

    # Offsets are relative to the data region so the header's own size
    # (unknown until encoded) cannot shift them.
    pickle_off = 0
    cursor = _align(len(blob))
    buffer_spans = []
    for raw in raws:
        buffer_spans.append([cursor, raw.nbytes])
        cursor = _align(cursor + raw.nbytes)
    header = json.dumps(
        {
            "epoch": int(epoch),
            "pickle": [pickle_off, len(blob)],
            "buffers": buffer_spans,
        },
        separators=(",", ":"),
    ).encode("ascii")
    data_start = _align(len(MAGIC) + _HEADER_LEN_STRUCT.size + len(header))
    nbytes = data_start + cursor

    shm = None
    for _ in range(8):  # name collisions are possible, just retry
        name = f"{prefix}{os.getpid():x}-{secrets.token_hex(6)}"
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
            break
        except FileExistsError:  # pragma: no cover - astronomically rare
            continue
    if shm is None:  # pragma: no cover - astronomically rare
        raise ShmemError("could not allocate a uniquely named segment")

    try:
        buf = shm.buf
        buf[: len(MAGIC)] = MAGIC
        hlen_end = len(MAGIC) + _HEADER_LEN_STRUCT.size
        buf[len(MAGIC) : hlen_end] = _HEADER_LEN_STRUCT.pack(len(header))
        buf[hlen_end : hlen_end + len(header)] = header
        start = data_start + pickle_off
        buf[start : start + len(blob)] = blob
        for (off, length), raw in zip(buffer_spans, raws):
            start = data_start + off
            buf[start : start + length] = raw
    except BaseException:  # pragma: no cover - don't leak on write failure
        shm.close()
        shm.unlink()
        raise
    finally:
        for raw in raws:
            raw.release()
        for buf_obj in buffers:
            buf_obj.release()

    checksum = hashlib.sha256(MAGIC + header + blob).hexdigest()
    manifest = SegmentManifest(
        name=name, epoch=int(epoch), nbytes=nbytes, checksum=checksum
    )
    return manifest, shm


def attach_state(manifest: SegmentManifest, *, writable: bool = False) -> Attachment:
    """Map the segment named by ``manifest`` and rebuild its state graph.

    Array bodies alias the mapping (read-only unless ``writable`` — the
    writable escape hatch exists for tests that *prove* the read-only
    protection).  Raises :class:`ShmemError` when the segment has
    vanished (unlinked under us), has the wrong magic, fails its
    checksum, or carries an epoch other than the manifest's.
    """
    try:
        shm = shared_memory.SharedMemory(name=manifest.name)
    except FileNotFoundError:
        raise ShmemError(
            f"segment {manifest.name!r} (epoch {manifest.epoch}) has vanished"
        ) from None

    views: list = []
    try:
        if shm.size < manifest.nbytes:
            raise ShmemError(
                f"segment {manifest.name!r} is {shm.size} bytes, manifest "
                f"says {manifest.nbytes}"
            )
        base = bytes(shm.buf[: len(MAGIC)])
        if base != MAGIC:
            raise ShmemError(f"segment {manifest.name!r} has bad magic {base!r}")
        hlen_end = len(MAGIC) + _HEADER_LEN_STRUCT.size
        (header_len,) = _HEADER_LEN_STRUCT.unpack(shm.buf[len(MAGIC) : hlen_end])
        header_bytes = bytes(shm.buf[hlen_end : hlen_end + header_len])
        header = json.loads(header_bytes)
        if int(header["epoch"]) != manifest.epoch:
            raise ShmemError(
                f"segment {manifest.name!r} holds epoch {header['epoch']}, "
                f"manifest expects {manifest.epoch} (stale manifest)"
            )
        data_start = _align(hlen_end + header_len)
        pickle_off, pickle_len = header["pickle"]
        start = data_start + pickle_off
        blob = bytes(shm.buf[start : start + pickle_len])
        checksum = hashlib.sha256(MAGIC + header_bytes + blob).hexdigest()
        if checksum != manifest.checksum:
            raise ShmemError(
                f"segment {manifest.name!r} checksum mismatch "
                f"({checksum[:12]}… != {manifest.checksum[:12]}…)"
            )
        root = memoryview(shm.buf)
        views.append(root)
        pickle_buffers = []
        for off, length in header["buffers"]:
            start = data_start + off
            view = root[start : start + length]
            views.append(view)
            if not writable:
                view = view.toreadonly()
                views.append(view)
            pickle_buffers.append(view)
        state = pickle.loads(blob, buffers=pickle_buffers)
    except ShmemError:
        for view in reversed(views):
            view.release()
        shm.close()
        raise
    except Exception as exc:
        for view in reversed(views):
            view.release()
        shm.close()
        raise ShmemError(
            f"segment {manifest.name!r} could not be decoded: {exc!r}"
        ) from exc
    return Attachment(shm=shm, state=state, manifest=manifest, _views=views)


def live_segment_names(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live segments under ``prefix`` (via ``/dev/shm``).

    The suite-wide leak guard uses this; on platforms without a
    ``/dev/shm`` listing it returns ``[]`` (the guard degrades to a
    no-op rather than false-failing).
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


# ----------------------------------------------------------------------
# Publisher (parent side)
# ----------------------------------------------------------------------
class ShardPublisher:
    """Owns the published segment per shard; bumps epochs, retires old.

    Epochs are per-shard and strictly monotonic — the property tests
    interleave publishes and assert it.  Republishing retires the
    previous segment immediately (close + unlink): POSIX keeps existing
    mappings valid, so a reader mid-window on the old epoch finishes
    unharmed, while any *new* attach of the old name fails loudly.
    """

    def __init__(self, prefix: str = SEGMENT_PREFIX) -> None:
        self.prefix = prefix
        self._epochs: dict[int, int] = {}
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self._manifests: dict[int, SegmentManifest] = {}
        self.publishes = 0
        self.retired = 0
        self.bytes_published = 0
        self._closed = False

    def publish(self, shard_id: int, state) -> SegmentManifest:
        """Publish ``state`` for ``shard_id`` under the next epoch."""
        if self._closed:
            raise ShmemError("publisher is closed")
        shard_id = int(shard_id)
        epoch = self._epochs.get(shard_id, 0) + 1
        manifest, shm = publish_state(state, epoch=epoch, prefix=self.prefix)
        self._retire(shard_id)
        self._epochs[shard_id] = epoch
        self._segments[shard_id] = shm
        self._manifests[shard_id] = manifest
        self.publishes += 1
        self.bytes_published += manifest.nbytes
        return manifest

    def manifest(self, shard_id: int) -> SegmentManifest | None:
        return self._manifests.get(int(shard_id))

    def epoch(self, shard_id: int) -> int:
        return self._epochs.get(int(shard_id), 0)

    def _retire(self, shard_id: int) -> None:
        shm = self._segments.pop(shard_id, None)
        self._manifests.pop(shard_id, None)
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced by a test
            pass
        self.retired += 1

    def close(self) -> None:
        """Retire every live segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard_id in list(self._segments):
            self._retire(shard_id)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def obs_registry(self) -> MetricsRegistry:
        """Segment/epoch telemetry (``shmem.publisher.*``)."""
        registry = MetricsRegistry()
        registry.counter("shmem.publisher.publishes").inc(self.publishes)
        registry.counter("shmem.publisher.retired_segments").inc(self.retired)
        registry.counter("shmem.publisher.bytes_published").inc(self.bytes_published)
        registry.gauge("shmem.publisher.live_segments").set(len(self._segments))
        for shard_id in sorted(self._epochs):
            registry.gauge("shmem.publisher.epoch", shard=str(shard_id)).set(
                self._epochs[shard_id]
            )
        return registry


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _ShmemShardReader:
    """Worker-local state: the current attachment plus persistent metrics.

    Re-attaching replaces the shard object wholesale, so serving metrics
    live in one :class:`~repro.serve.shard.ShardMetrics` owned by the
    reader and re-installed on every freshly attached shard — telemetry
    survives epoch bumps.
    """

    def __init__(self, shard_id: int) -> None:
        from repro.serve.shard import ShardMetrics

        self.shard_id = int(shard_id)
        self.attachment: Attachment | None = None
        self.metrics = ShardMetrics()
        self.attaches = 0

    def ensure(self, manifest: SegmentManifest):
        """The shard for ``manifest``, re-attaching on epoch change."""
        att = self.attachment
        if att is not None and att.manifest == manifest:
            return att.state
        if att is not None:
            self.attachment = None
            att.close()
        att = attach_state(manifest)
        self.attachment = att
        self.attaches += 1
        att.state.metrics = self.metrics
        return att.state

    def close(self) -> None:
        if self.attachment is not None:
            attachment, self.attachment = self.attachment, None
            attachment.close()

    def apply(self, op: str, args: tuple):
        if op == "serve":
            manifest, payload = args
            shard = self.ensure(manifest)
            kind, data, k = pickle.loads(payload)
            if kind == "item":
                return shard.recommend(data, k)
            return shard.recommend_batch(data, k)
        if op == "metrics":
            row = {
                "shard_id": self.shard_id,
                "users": (
                    self.attachment.state.n_users
                    if self.attachment is not None
                    else 0
                ),
            }
            row.update(self.metrics.as_dict())
            return row
        if op == "obs":
            return self.obs_dump()
        if op == "ping":
            return "pong"
        raise ShardWorkerError(f"unknown shmem worker op {op!r}")

    def obs_dump(self) -> dict:
        shard_label = str(self.shard_id)
        if self.attachment is not None:
            registry = self.attachment.state.obs_registry()
            epoch = self.attachment.manifest.epoch
        else:
            registry = MetricsRegistry()
            epoch = 0
        registry.counter("shmem.worker.attaches", shard=shard_label).inc(self.attaches)
        registry.gauge("shmem.worker.epoch", shard=shard_label).set(epoch)
        return registry.to_dict()


def _shmem_worker_main(shard_id: int, requests, replies) -> None:
    """Stateless worker loop: attach by manifest, serve, repeat.

    Unlike :func:`~repro.serve.workers._shard_worker_main` it receives no
    state at spawn — every serve request names the segment (and epoch) to
    read, so a respawned worker needs nothing but its shard id.  Shmem
    failures ship back typed (``("err", ("shmem", …))``) so the parent
    re-raises :class:`ShmemError` rather than a generic worker error.
    """
    reader = _ShmemShardReader(shard_id)
    while True:
        seq, op, args, trace_ctx = requests.get()
        if op == "stop":
            reader.close()
            replies.put((seq, "ok", None, None))
            break
        try:
            if trace_ctx is None:
                replies.put((seq, "ok", reader.apply(op, args), None))
            else:
                trace = Trace(trace_ctx["trace_id"])
                with use_trace(trace, trace_ctx.get("parent_id")):
                    with span(f"worker.{op}", shard=shard_id):
                        value = reader.apply(op, args)
                replies.put((seq, "ok", value, trace.spans()))
        except ShmemError as exc:
            replies.put(
                (seq, "err", ("shmem", f"{exc!r}\n{traceback.format_exc()}"), None)
            )
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            replies.put(
                (seq, "err", ("worker", f"{exc!r}\n{traceback.format_exc()}"), None)
            )


# ----------------------------------------------------------------------
# Pool (parent side)
# ----------------------------------------------------------------------
class ShmemWorkerPool(_WorkerPoolBase):
    """Worker pool where the *parent* stays authoritative over shards.

    The inversion relative to :class:`~repro.serve.workers.ShardWorkerPool`:
    workers are stateless readers; the parent's shard objects remain the
    single source of truth and every mutation applies to them directly
    (so ``observe``/``update`` cost **zero** worker round-trips).  The
    price is a republish before the next serve window after any mutation
    — amortized across the whole window, and skipped entirely while the
    shard is clean.

    ``start_method`` defaults to the ``REPRO_SHMEM_START_METHOD``
    environment variable (``spawn`` when unset); the CI fault battery
    runs under both ``spawn`` and ``forkserver``.
    """

    #: Signals the service that worker state never diverges from the
    #: parent's shards (``_sync_from_workers`` becomes a no-op).
    parent_authoritative = True

    def __init__(
        self,
        shards,
        reply_timeout: float = 300.0,
        start_method: str | None = None,
    ) -> None:
        if start_method is None:
            start_method = os.environ.get("REPRO_SHMEM_START_METHOD", "spawn")
        super().__init__(reply_timeout=reply_timeout, start_method=start_method)
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("ShmemWorkerPool needs at least one shard")
        self.publisher = ShardPublisher()
        self._dirty = [True] * len(self.shards)
        for shard in self.shards:
            self._workers.append(self._spawn(shard.shard_id))

    def _spawn(self, shard_id: int):
        return self._spawn_worker(
            _shmem_worker_main, (int(shard_id),), name=f"repro-shmem-{shard_id}"
        )

    # ------------------------------------------------------------------
    # Copy-on-publish
    # ------------------------------------------------------------------
    def invalidate(self, index: int | None = None) -> None:
        """Mark shard ``index`` (or all shards) dirty for republish."""
        if index is None:
            self._dirty = [True] * len(self.shards)
        else:
            self._dirty[index] = True

    def refresh(self) -> None:
        """Republish every dirty shard (bumping its epoch)."""
        for index, shard in enumerate(self.shards):
            if self._dirty[index]:
                shard.prepare_for_publish()
                self.publisher.publish(shard.shard_id, shard)
                self._dirty[index] = False

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _serve(self, request: tuple, trace_ctx: dict | None) -> list:
        self._require_open()
        self.refresh()
        # One pickle of the query payload, shared by every shard's message.
        payload = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
        seqs = []
        for index, worker in enumerate(self._workers):
            manifest = self.publisher.manifest(self.shards[index].shard_id)
            seqs.append(self._send(worker, "serve", (manifest, payload), trace_ctx))
        return [
            self._reply_from(worker, index, seq)
            for (index, worker), seq in zip(enumerate(self._workers), seqs)
        ]

    def serve_item(self, item, k: int, trace_ctx: dict | None = None) -> list:
        """Per-shard top-``k`` lists for one item, in shard order."""
        return self._serve(("item", item, int(k)), trace_ctx)

    def serve_batch(self, items, k: int, trace_ctx: dict | None = None) -> list:
        """Per-shard lists of top-``k`` lists for a micro-batch."""
        return self._serve(("batch", list(items), int(k)), trace_ctx)

    # ------------------------------------------------------------------
    # Lifecycle / state
    # ------------------------------------------------------------------
    def restart(self, index: int) -> None:
        """Stop worker ``index`` and respawn it (workers are stateless —
        no state collection needed; the next serve re-attaches)."""
        self._stop_worker(self._workers[index])
        self._workers[index] = self._spawn(self.shards[index].shard_id)

    def restart_all(self) -> None:
        for index in range(len(self._workers)):
            self.restart(index)

    def collect(self, index: int):
        """The authoritative shard — the parent's own object."""
        return self.shards[index]

    def collect_all(self) -> list:
        return list(self.shards)

    def close(self) -> None:
        super().close()
        self.publisher.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("alive" if self.alive else "degraded")
        return f"ShmemWorkerPool(workers={self.n_workers}, {state})"
