"""The sharded serving facade: fan-out, merge, observe, snapshot.

:class:`ShardedRecommender` partitions a trained ssRec model's users into
N :class:`~repro.serve.shard.RecommenderShard` slices and serves queries
by fanning out to every shard (sequentially or on a thread pool) and
merging the per-shard top-k heaps into the global top-k by the
``(-score, user_id)`` order.

**Exactness.** In scan mode every shard scores its users with the shared
trained parameters, so merged results are bit-identical to the single
:class:`SsRecRecommender` under *any* strategy.  In index mode a CPPse
query probes only the trees whose block universe holds a query entity, so
parity additionally requires that shards share the single index's
blocking: the ``"block"`` strategy assigns whole blocks to shards and
rebuilds each shard's slice of the one global clustering
(:func:`~repro.serve.sharding.build_shard_blocks`), making the union of
probed users — and therefore results — identical to the unsharded index
for the planned population, updates and Algorithm-2 maintenance
included.  The ``"hash"`` strategy splits blocks, so each shard clusters
its own slice: still exact within every shard's probed trees (the
paper's no-false-dismissal guarantee), but the probed candidate set may
differ slightly from the single index's.  One boundary applies to index
mode only: a *brand-new* user joining mid-stream is hash-routed to a
shard whose local index assigns it to a shard-local block, while a
single global index would pick the globally most-similar block — the two
placements (and hence the new user's probed-set membership) can differ.
Scan mode scores every stored user, so new users are exact there under
any strategy.  The parity tests and ``bench_shard_scaling`` assert the
exact combinations.

Mutable trained state (the BiHMM producer layer, the entity expander)
stays shared and single-copy: ``observe_item`` advances it once, exactly
as the unsharded facade does.  Interaction updates route to the owning
shard, which runs its own Algorithm-2 maintenance cadence.

Typical usage::

    service = ShardedRecommender.from_trained(recommender, n_shards=4)
    service.observe_item(item)
    top = service.recommend(item, k=30)
    service.save("snapshots/today")        # warm-startable snapshot
    service = ShardedRecommender.load("snapshots/today")
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import SsRecConfig
from repro.core.profiles import ProfileStore
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.serve.shard import RecommenderShard
from repro.serve.sharding import ShardPlan, UserSharder, build_shard_blocks, merge_top_k


class ShardedRecommender:
    """Partitioned serving over a trained :class:`SsRecRecommender`.

    Build with :meth:`from_trained` (or :meth:`fit` for the one-call
    train-and-shard path); restore from disk with :meth:`load`.

    Args:
        trained: a fitted recommender supplying the shared model state.
        plan: the user partition; one shard is built per plan shard.
        use_index: build a shard-local CPPse-index per shard (defaults to
            the trained recommender's mode).
        workers: fan-out threads; 0/1 = sequential.  Defaults to the
            config's ``serve_workers``.
    """

    def __init__(
        self,
        trained: SsRecRecommender,
        plan: ShardPlan,
        use_index: bool | None = None,
        workers: int | None = None,
    ) -> None:
        if trained.bihmm is None or trained.scorer is None:
            raise ValueError("trained recommender must be fitted")
        self.trained = trained
        self.config = trained.config
        self.plan = plan
        self.use_index = trained.use_index if use_index is None else bool(use_index)
        self.workers = (
            self.config.serve_workers if workers is None else max(0, int(workers))
        )
        self.scorer = trained.scorer
        self.profiles = trained.profiles  # the global (all-shard) view
        n_categories = trained.bihmm.n_categories
        # Block plans ship every shard its slice of the one global
        # blocking, so shard indexes probe exactly the trees the single
        # index would — the bit-identical-parity guarantee.  Hash plans
        # split blocks, so each shard clusters its own slice instead.
        shard_blocks = (
            build_shard_blocks(plan, trained.profiles, n_categories)
            if self.use_index
            else {}
        )
        # One pass over the plan buckets users per shard (users_of() would
        # rescan all assignments per shard — O(S·U) at warm-start scale).
        users_by_shard: dict[int, list[int]] = {s: [] for s in range(plan.n_shards)}
        for uid, shard_id in plan.assignments.items():
            users_by_shard[shard_id].append(uid)
        self.shards: list[RecommenderShard] = []
        for shard_id in range(plan.n_shards):
            store = ProfileStore(window_size=self.config.window_size)
            for uid in sorted(users_by_shard[shard_id]):
                profile = trained.profiles.get(uid)
                if profile is not None:
                    store.add(profile)
            self.shards.append(
                RecommenderShard(
                    shard_id=shard_id,
                    profiles=store,
                    scorer=self.scorer,
                    n_categories=n_categories,
                    config=self.config,
                    use_index=self.use_index,
                    blocks=shard_blocks.get(shard_id),
                    maintenance_interval=trained.maintenance_interval,
                )
            )
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trained(
        cls,
        trained: SsRecRecommender,
        n_shards: int | None = None,
        strategy: str | None = None,
        use_index: bool | None = None,
        workers: int | None = None,
    ) -> "ShardedRecommender":
        """Shard an already-fitted recommender (no retraining).

        ``n_shards``/``strategy`` default to the recommender's config
        (``n_shards``, ``shard_strategy``).
        """
        if trained.bihmm is None:
            raise ValueError("trained recommender must be fitted")
        config = trained.config
        sharder = UserSharder(
            n_shards=config.n_shards if n_shards is None else int(n_shards),
            strategy=config.shard_strategy if strategy is None else strategy,
            config=config,
        )
        plan = sharder.plan(trained.profiles, n_categories=trained.bihmm.n_categories)
        return cls(trained, plan, use_index=use_index, workers=workers)

    @classmethod
    def fit(
        cls,
        dataset: Dataset,
        train_interactions: Sequence[Interaction] | None = None,
        config: SsRecConfig | None = None,
        n_shards: int | None = None,
        strategy: str | None = None,
        use_index: bool = True,
        workers: int | None = None,
        seed: int = 0,
    ) -> "ShardedRecommender":
        """Train once, then shard: the one-call serving bootstrap.

        The underlying recommender is fitted in scan mode (no redundant
        global index); ``use_index`` controls the shard-local indexes.
        """
        rec = SsRecRecommender(config=config, use_index=False, seed=seed)
        rec.fit(dataset, train_interactions)
        return cls.from_trained(
            rec, n_shards=n_shards, strategy=strategy, use_index=use_index, workers=workers
        )

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------
    def _fan_out(self, call: Callable[[RecommenderShard], object]) -> list:
        """Run ``call`` on every shard; threaded when workers > 1.

        Results come back in shard order either way, so merging is
        deterministic regardless of completion order.
        """
        if self.workers > 1 and len(self.shards) > 1:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(self.workers, len(self.shards)),
                    thread_name_prefix="repro-serve",
                )
            return list(self._executor.map(call, self.shards))
        return [call(shard) for shard in self.shards]

    # Thread pools cannot be pickled/deepcopied; drop and rebuild lazily.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_executor"] = None
        return state

    def close(self) -> None:
        """Release the fan-out thread pool (no-op when sequential).

        The service stays usable afterwards — the pool is rebuilt lazily
        on the next threaded call.  Use this (or the context-manager form)
        when constructing many worker-enabled services, e.g. a resharding
        sweep, so discarded instances do not pin threads until GC.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedRecommender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def recommend(self, item: SocialItem, k: int | None = None) -> list[tuple[int, float]]:
        """Global top-``k`` ``(user_id, score)`` — identical to the single
        index's :meth:`SsRecRecommender.recommend` on the same state.
        ``k=None`` means ``default_k``; ``k=0`` yields an empty list."""
        k = self.config.default_k if k is None else int(k)
        # Warm the shared expanded-query cache once so concurrent shard
        # lookups read instead of redundantly recomputing it.
        self.scorer.expanded_query(item)
        per_shard = self._fan_out(lambda shard: shard.recommend(item, k))
        return merge_top_k(per_shard, k)

    def recommend_batch(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """Per-item global top-``k`` lists for a micro-batch."""
        k = self.config.default_k if k is None else int(k)
        items = list(items)
        if not items:
            return []
        for item in items:
            self.scorer.expanded_query(item)
        per_shard = self._fan_out(lambda shard: shard.recommend_batch(items, k))
        return [
            merge_top_k([ranked_lists[i] for ranked_lists in per_shard], k)
            for i in range(len(items))
        ]

    # ------------------------------------------------------------------
    # Stream updates
    # ------------------------------------------------------------------
    def observe_item(self, item: SocialItem) -> None:
        """Register a newly streamed item once, in the shared model state."""
        self.trained.observe_item(item)

    #: ``observe`` is the serving-layer name for the same operation.
    observe = observe_item

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        """Route one interaction to the owning shard (new users included)."""
        user_id = int(interaction.user_id)
        shard = self.shards[self.plan.shard_of(user_id)]
        # Keep the global store and the shard store aliased to one object,
        # also for users joining mid-stream.
        profile = self.profiles.get_or_create(user_id)
        if shard.profiles.get(user_id) is None:
            shard.adopt(profile)
        shard.update(interaction, item)

    def run_maintenance(self) -> int:
        """Flush every shard's pending Algorithm-2 work; returns profiles
        refreshed across shards."""
        return sum(shard.run_maintenance() for shard in self.shards)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_users(self) -> int:
        return sum(shard.n_users for shard in self.shards)

    def metrics(self) -> list[dict]:
        """One summary row per shard (latency percentiles, candidate and
        maintenance counts), plus the user count."""
        rows = []
        for shard in self.shards:
            row = {"shard_id": shard.shard_id, "users": shard.n_users}
            row.update(shard.metrics.as_dict())
            rows.append(row)
        return rows

    def balance_stats(self) -> dict:
        return self.plan.balance_stats()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a warm-startable snapshot directory (see
        :mod:`repro.serve.snapshot`)."""
        from repro.serve.snapshot import save_snapshot

        save_snapshot(self, path)

    @classmethod
    def load(cls, path, workers: int | None = None) -> "ShardedRecommender":
        """Rebuild a service from a snapshot without retraining."""
        from repro.serve.snapshot import load_sharded

        return load_sharded(path, workers=workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "index" if self.use_index else "scan"
        return (
            f"ShardedRecommender(shards={self.n_shards}, users={self.n_users}, "
            f"mode={mode}, strategy={self.plan.strategy!r}, workers={self.workers})"
        )
