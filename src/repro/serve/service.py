"""The sharded serving facade: fan-out, merge, observe, snapshot.

:class:`ShardedRecommender` partitions a trained ssRec model's users into
N :class:`~repro.serve.shard.RecommenderShard` slices and serves queries
by fanning out to every shard (sequentially or on a thread pool) and
merging the per-shard top-k heaps into the global top-k by the
``(-score, user_id)`` order.

**Exactness.** In scan mode every shard scores its users with the shared
trained parameters, so merged results are bit-identical to the single
:class:`SsRecRecommender` under *any* strategy.  In index mode a CPPse
query probes only the trees whose block universe holds a query entity, so
parity additionally requires that shards share the single index's
blocking: the ``"block"`` strategy assigns whole blocks to shards and
rebuilds each shard's slice of the one global clustering
(:func:`~repro.serve.sharding.build_shard_blocks`), making the union of
probed users — and therefore results — identical to the unsharded index
for the planned population, updates and Algorithm-2 maintenance
included.  The ``"hash"`` strategy splits blocks, so each shard clusters
its own slice: still exact within every shard's probed trees (the
paper's no-false-dismissal guarantee), but the probed candidate set may
differ slightly from the single index's.  One boundary applies to index
mode only: a *brand-new* user joining mid-stream is hash-routed to a
shard whose local index assigns it to a shard-local block, while a
single global index would pick the globally most-similar block — the two
placements (and hence the new user's probed-set membership) can differ.
Scan mode scores every stored user, so new users are exact there under
any strategy.  The parity tests and ``bench_shard_scaling`` assert the
exact combinations.

Mutable trained state (the BiHMM producer layer, the entity expander)
stays shared and single-copy: ``observe_item`` advances it once, exactly
as the unsharded facade does.  Interaction updates route to the owning
shard, which runs its own Algorithm-2 maintenance cadence.

**Backends.** ``SsRecConfig.serve_backend`` (or the ``backend`` argument)
selects how the fan-out runs: ``"sequential"`` in the calling thread,
``"thread"`` on a ``ThreadPoolExecutor`` (GIL-bound), ``"process"``
with every shard hosted in its own OS process by a
:class:`~repro.serve.workers.ShardWorkerPool` — shards shipped through
the snapshot pickle path, requests/replies over queues — or ``"shmem"``
with stateless worker processes attaching zero-copy shared-memory views
of the shard state (:class:`~repro.serve.shmem.ShmemWorkerPool`).
Results are bit-identical across all backends (asserted by the
conformance suite and ``bench_shard_scaling``); only the cost profile
differs.  Authority differs by backend: under ``"process"`` the worker
copies are authoritative — every mutation is forwarded to them in order,
and the parent pulls the live shard state back before snapshots and on
:meth:`close` — while under ``"shmem"`` the *parent's* shards stay
authoritative, mutations apply locally at zero IPC cost, and dirty
shards are republished (epoch-bumped copy-on-publish) at the next serve
window.

Typical usage::

    service = ShardedRecommender.from_trained(recommender, n_shards=4)
    service.observe_item(item)
    top = service.recommend(item, k=30)
    service.save("snapshots/today")        # warm-startable snapshot
    service = ShardedRecommender.load("snapshots/today")

Worker-backed services hold OS resources (threads or processes), so
long-lived tooling should use the context-manager form::

    with ShardedRecommender.from_trained(rec, backend="process") as service:
        ranked_lists = service.recommend_batch(window, k=30)
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import SERVE_BACKENDS, SsRecConfig
from repro.core.profiles import ProfileStore
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.serve.shard import RecommenderShard
from repro.serve.sharding import ShardPlan, UserSharder, build_shard_blocks


class ShardedRecommender:
    """Partitioned serving over a trained :class:`SsRecRecommender`.

    Build with :meth:`from_trained` (or :meth:`fit` for the one-call
    train-and-shard path); restore from disk with :meth:`load`.

    Args:
        trained: a fitted recommender supplying the shared model state.
        plan: the user partition; one shard is built per plan shard.
        use_index: build a shard-local CPPse-index per shard (defaults to
            the trained recommender's mode).
        workers: fan-out threads of the thread backend; 0/1 = sequential.
            Defaults to the config's ``serve_workers``.  The process
            backend always runs one worker process per shard.
        backend: fan-out backend (``"sequential"``, ``"thread"``,
            ``"process"`` or ``"shmem"``); defaults to the config's
            ``serve_backend``.
            For backward compatibility, ``workers > 1`` upgrades the
            default ``"sequential"`` to ``"thread"``.
    """

    def __init__(
        self,
        trained: SsRecRecommender,
        plan: ShardPlan,
        use_index: bool | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> None:
        if trained.bihmm is None or trained.scorer is None:
            raise ValueError("trained recommender must be fitted")
        self.trained = trained
        self.config = trained.config
        self.plan = plan
        self.use_index = trained.use_index if use_index is None else bool(use_index)
        self.workers = (
            self.config.serve_workers if workers is None else max(0, int(workers))
        )
        explicit_backend = backend is not None
        backend = self.config.serve_backend if backend is None else str(backend)
        if backend not in SERVE_BACKENDS:
            raise ValueError(
                f"backend must be one of {SERVE_BACKENDS}, got {backend!r}"
            )
        if backend == "sequential" and not explicit_backend and self.workers > 1:
            # Legacy spelling: before serve_backend existed, workers > 1
            # *meant* the thread backend.  An explicitly requested
            # "sequential" is honored regardless of workers.
            backend = "thread"
        self.backend = backend
        self.scorer = trained.scorer
        self.profiles = trained.profiles  # the global (all-shard) view
        n_categories = trained.bihmm.n_categories
        # Block plans ship every shard its slice of the one global
        # blocking, so shard indexes probe exactly the trees the single
        # index would — the bit-identical-parity guarantee.  Hash plans
        # split blocks, so each shard clusters its own slice instead.
        shard_blocks = (
            build_shard_blocks(plan, trained.profiles, n_categories)
            if self.use_index
            else {}
        )
        # One pass over the plan buckets users per shard (users_of() would
        # rescan all assignments per shard — O(S·U) at warm-start scale).
        users_by_shard: dict[int, list[int]] = {s: [] for s in range(plan.n_shards)}
        for uid, shard_id in plan.assignments.items():
            users_by_shard[shard_id].append(uid)
        self.shards: list[RecommenderShard] = []
        for shard_id in range(plan.n_shards):
            store = ProfileStore(window_size=self.config.window_size)
            for uid in sorted(users_by_shard[shard_id]):
                profile = trained.profiles.get(uid)
                if profile is not None:
                    store.add(profile)
            self.shards.append(
                RecommenderShard(
                    shard_id=shard_id,
                    profiles=store,
                    scorer=self.scorer,
                    n_categories=n_categories,
                    config=self.config,
                    use_index=self.use_index,
                    blocks=shard_blocks.get(shard_id),
                    maintenance_interval=trained.maintenance_interval,
                )
            )
        self._executor: ThreadPoolExecutor | None = None
        self._pool = None  # ShardWorkerPool, started lazily (process backend)
        # Execution-plan state (repro.exec): the compiled fan-out/merge
        # pipeline, the mutation epoch that invalidates cached results,
        # and the result-cache switch for the *-cached plan variants.
        self.exec_epoch = 0
        self._result_cache_enabled = self.config.result_cache
        self._scoring = self.config.scoring
        self._dedup_mode = self.config.dedup
        self._compiled = None  # CompiledPlan, built lazily per current state

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trained(
        cls,
        trained: SsRecRecommender,
        n_shards: int | None = None,
        strategy: str | None = None,
        use_index: bool | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> "ShardedRecommender":
        """Shard an already-fitted recommender (no retraining).

        ``n_shards``/``strategy``/``backend`` default to the recommender's
        config (``n_shards``, ``shard_strategy``, ``serve_backend``).
        """
        if trained.bihmm is None:
            raise ValueError("trained recommender must be fitted")
        config = trained.config
        sharder = UserSharder(
            n_shards=config.n_shards if n_shards is None else int(n_shards),
            strategy=config.shard_strategy if strategy is None else strategy,
            config=config,
        )
        plan = sharder.plan(trained.profiles, n_categories=trained.bihmm.n_categories)
        return cls(trained, plan, use_index=use_index, workers=workers, backend=backend)

    @classmethod
    def fit(
        cls,
        dataset: Dataset,
        train_interactions: Sequence[Interaction] | None = None,
        config: SsRecConfig | None = None,
        n_shards: int | None = None,
        strategy: str | None = None,
        use_index: bool = True,
        workers: int | None = None,
        backend: str | None = None,
        seed: int = 0,
    ) -> "ShardedRecommender":
        """Train once, then shard: the one-call serving bootstrap.

        The underlying recommender is fitted in scan mode (no redundant
        global index); ``use_index`` controls the shard-local indexes.
        """
        rec = SsRecRecommender(config=config, use_index=False, seed=seed)
        rec.fit(dataset, train_interactions)
        return cls.from_trained(
            rec,
            n_shards=n_shards,
            strategy=strategy,
            use_index=use_index,
            workers=workers,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------
    def _pool_active(self) -> bool:
        return self._pool is not None

    def _ensure_pool(self):
        """Start the worker processes on first use (process/shmem backends).

        Lazy start keeps construction cheap and lets a freshly unpickled
        service (snapshots drop live pools) respawn transparently on its
        next operation.  Authority then depends on the backend: process
        workers hold the single authoritative copies (every mutation
        routes to them), shmem workers are stateless readers of segments
        the parent republishes.
        """
        if self._pool is None:
            if self.backend == "shmem":
                from repro.serve.shmem import ShmemWorkerPool  # local: spawn-safe

                self._pool = ShmemWorkerPool(self.shards)
            else:
                from repro.serve.workers import ShardWorkerPool  # local: spawn-safe

                self._pool = ShardWorkerPool(self.shards)
        return self._pool

    def _parent_authoritative(self) -> bool:
        """True when the parent's shard objects are the source of truth
        even while a pool is active (the shmem backend)."""
        return self._pool is None or getattr(
            self._pool, "parent_authoritative", False
        )

    def _fan_out(self, call: Callable[[RecommenderShard], object]) -> list:
        """Run ``call`` on every shard; threaded under the thread backend.

        Results come back in shard order either way, so merging is
        deterministic regardless of completion order.
        """
        if self.backend == "thread" and len(self.shards) > 1:
            if self._executor is None:
                max_workers = self.workers if self.workers > 1 else len(self.shards)
                self._executor = ThreadPoolExecutor(
                    max_workers=min(max_workers, len(self.shards)),
                    thread_name_prefix="repro-serve",
                )
            return list(self._executor.map(call, self.shards))
        return [call(shard) for shard in self.shards]

    # Thread/process pools cannot be pickled/deepcopied; drop and rebuild
    # lazily.  ``save()`` collects worker state first, so pickled state is
    # never stale.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_executor"] = None
        state["_pool"] = None
        state["_compiled"] = None  # recompiles lazily (fresh result cache)
        return state

    def _sync_from_workers(self) -> None:
        """Pull the authoritative shard objects back from the workers.

        Replaces the parent's stale shard mirrors and re-aliases the
        global profile store to the collected profile objects, restoring
        the shared-object invariant the in-process backends maintain
        (an update through either view is seen by both).
        """
        if self._pool is None or self._parent_authoritative():
            return  # shmem: the parent never went stale
        self.shards = self._pool.collect_all()
        for shard in self.shards:
            for profile in shard.profiles:
                self.profiles.add(profile)

    def restart_workers(self) -> None:
        """Rolling mid-stream restart of every shard worker process.

        Each worker's live state is collected and a fresh process resumes
        from it, bit-compatibly — the conformance harness replays this to
        prove restarts are invisible in results.  No-op on the in-process
        backends (they have no workers to restart).  Shmem workers are
        stateless, so their restart is a plain respawn — the next serve
        window re-attaches the current epoch.
        """
        if self.backend in ("process", "shmem"):
            self._ensure_pool().restart_all()

    def close(self) -> None:
        """Release fan-out resources (thread pool or worker processes).

        The service stays usable afterwards — the process backend first
        collects the live shard state back into the parent, and either
        pool is rebuilt lazily on the next call.  Use this (or the
        context-manager form) whenever a worker-enabled service is
        discarded, so threads and processes are always released.
        """
        if self._pool is not None:
            self._sync_from_workers()
            self._pool.close()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardedRecommender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving (thin facade over the compiled execution plan)
    # ------------------------------------------------------------------
    def executor(self):
        """The compiled fan-out/merge execution plan serving runs through.

        Derived from the config by :meth:`repro.exec.PlanRegistry.for_config`
        (placement from the shard strategy and fan-out backend, caching
        from ``result_cache``) and compiled once; the fan-out backend
        dispatch lives in the plan's :class:`~repro.exec.ops.FanoutOp`.
        """
        if self._compiled is None:
            from repro.exec import PLAN_REGISTRY, Placement, compile_plan

            # The live service's shape wins over the config (a service is
            # often built with explicit n_shards/strategy/backend args).
            exec_plan = PLAN_REGISTRY.for_axes(
                use_index=self.use_index,
                placement=Placement.sharded(self.plan.strategy, self.backend),
                cached=self._result_cache_enabled,
                scoring=self._scoring,
                dedup=self._dedup_mode,
            )
            self._compiled = compile_plan(exec_plan, self)
        return self._compiled

    def set_scoring(self, mode: str) -> "ShardedRecommender":
        """Switch every shard's scoring backend (``"vectorized"`` /
        ``"native"``).

        Native scoring composes with sharding at the *shard* level — the
        fan-out/merge pipeline is scoring-agnostic, each shard serves its
        slice through the fused kernels (or falls back, per shard, when
        they are unavailable).  Reaches in-process shards immediately;
        the process/shmem backends pickle shard state at pool start, so
        set the config's ``scoring`` (or call this) *before* the first
        serve to affect worker processes.
        """
        from repro.core.config import SCORING_BACKENDS

        if mode not in SCORING_BACKENDS:
            raise ValueError(
                f"scoring must be one of {SCORING_BACKENDS}, got {mode!r}"
            )
        for shard in self.shards:
            shard.set_scoring(mode)
        self._scoring = mode
        self._compiled = None
        return self

    def enable_result_cache(self, enabled: bool = True) -> "ShardedRecommender":
        """Switch serving to (or from) the ``*-cached`` plan variant (an
        exact memo above the fan-out; see :mod:`repro.exec.cache`)."""
        self._result_cache_enabled = bool(enabled)
        self._compiled = None
        return self

    def result_cache_stats(self) -> dict | None:
        """Hit/miss/eviction counters of the live result cache (None when
        serving uncached)."""
        compiled = self._compiled
        if compiled is None or compiled.result_cache is None:
            return None
        return compiled.result_cache.stats.as_dict()

    def set_dedup(self, mode: str) -> "ShardedRecommender":
        """Switch serving to (or from) a ``*-dedup`` plan variant.

        The collapse stage sits *above* the fan-out (it wraps the
        fan-out/merge pipeline), so one collapsed upload saves the
        scoring pass on every shard at once.  Modes as in
        :meth:`SsRecRecommender.set_dedup`.
        """
        from repro.core.config import DEDUP_MODES

        if mode not in DEDUP_MODES:
            raise ValueError(f"dedup must be one of {DEDUP_MODES}, got {mode!r}")
        self._dedup_mode = mode
        self._compiled = None
        return self

    def dedup_stats(self) -> dict | None:
        """Collapse counters of the live dedup stage (None when serving
        without dedup)."""
        compiled = self._compiled
        if compiled is None or compiled.dedup_state is None:
            return None
        return compiled.dedup_state.stats.as_dict()

    def recommend(self, item: SocialItem, k: int | None = None) -> list[tuple[int, float]]:
        """Global top-``k`` ``(user_id, score)`` — identical to the single
        index's :meth:`SsRecRecommender.recommend` on the same state.
        ``k=None`` means ``default_k``; ``k=0`` yields an empty list."""
        return self.executor().run_item(item, k)

    def recommend_batch(
        self, items: Sequence[SocialItem], k: int | None = None
    ) -> list[list[tuple[int, float]]]:
        """Per-item global top-``k`` lists for a micro-batch."""
        return self.executor().run_batch(items, k)

    # ------------------------------------------------------------------
    # Stream updates
    # ------------------------------------------------------------------
    def observe_item(self, item: SocialItem) -> None:
        """Register a newly streamed item once, in the shared model state.

        Under the process backend the same mutation is also forwarded to
        every worker's copy of the shared state (with the parent's
        entity annotation shipped along, so workers need no extractor);
        request ordering per worker matches the in-process call order, so
        the worker state evolves bit-identically.  Under the shmem
        backend the parent mutation *is* the authoritative one — no
        round trips; every shard is marked dirty so the next serve
        window republishes the advanced shared state.
        """
        if self.backend == "process":
            # Spawn before the parent-side mutation: workers must start
            # from the pre-observe state, or the first observed item would
            # be double-counted in their shipped scorer copies.
            pool = self._ensure_pool()
        mentions = self.trained.observe_item(item)
        if self.backend == "process":
            pool.map(
                "observe",
                int(item.producer),
                int(item.item_id),
                int(item.category),
                mentions,
                tuple(item.entities),
            )
        elif self.backend == "shmem" and self._pool_active():
            self._pool.invalidate()  # shared scorer state moved: all stale

    #: ``observe`` is the serving-layer name for the same operation.
    observe = observe_item

    def update(self, interaction: Interaction, item: SocialItem | None = None) -> None:
        """Route one interaction to the owning shard (new users included)."""
        user_id = int(interaction.user_id)
        shard_id = self.plan.shard_of(user_id)
        self.exec_epoch += 1  # scores may move: orphan cached results
        if self.backend == "process":
            # The worker's shard store records (and creates) the profile;
            # the parent's mirror is re-aliased on the next state sync.
            self._ensure_pool().call(shard_id, "update", interaction, item)
            return
        shard = self.shards[shard_id]
        # Keep the global store and the shard store aliased to one object,
        # also for users joining mid-stream.
        profile = self.profiles.get_or_create(user_id)
        if shard.profiles.get(user_id) is None:
            shard.adopt(profile)
        shard.update(interaction, item)
        # The shard store recorded the event on the shared profile object;
        # mark the global view dirty too so any mirror of it stays fresh.
        self.profiles.touch()
        if self.backend == "shmem" and self._pool_active():
            self._pool.invalidate(shard_id)  # republish this shard only

    def run_maintenance(self) -> int:
        """Flush every shard's pending Algorithm-2 work; returns profiles
        refreshed across shards."""
        self.exec_epoch += 1  # Algorithm-2 flush: orphan cached results
        if self.backend == "process" and self._pool_active():
            return sum(self._pool.map("maintenance"))
        refreshed = sum(shard.run_maintenance() for shard in self.shards)
        if self.backend == "shmem" and self._pool_active() and refreshed:
            self._pool.invalidate()  # index state moved: republish
        return refreshed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_users(self) -> int:
        if self._pool_active() and not self._parent_authoritative():
            return sum(self._pool.map("n_users"))
        return sum(shard.n_users for shard in self.shards)

    def metrics(self) -> list[dict]:
        """One summary row per shard (latency percentiles, candidate and
        maintenance counts), plus the user count.  With live worker
        processes the rows come from the workers — serving happens there,
        so that is where the counters accumulate.  Under the shmem split
        (serving in workers, maintenance in the parent) each row combines
        the worker's serve counters with the parent's maintenance and
        user counts."""
        if self._pool_active():
            rows = self._pool.map("metrics")
            if self._parent_authoritative():
                for row, shard in zip(rows, self.shards):
                    row["users"] = shard.n_users
                    row["maintenance_runs"] = shard.metrics.maintenance_runs
                    row["profiles_refreshed"] = shard.metrics.profiles_refreshed
            return rows
        rows = []
        for shard in self.shards:
            row = {"shard_id": shard.shard_id, "users": shard.n_users}
            row.update(shard.metrics.as_dict())
            rows.append(row)
        return rows

    def obs_registry(self):
        """Every shard's telemetry merged into one
        :class:`~repro.obs.metrics.MetricsRegistry`.

        With live worker processes each worker dumps its registry over
        the reply queue (the ``obs`` op) and the dumps merge here; the
        in-process backends read the shard objects directly.  Per-shard
        ``shard=...`` labels keep the merged view lossless.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        if self._pool_active():
            for dump in self._pool.map("obs"):
                registry.merge(MetricsRegistry.from_dict(dump))
            if self._parent_authoritative():
                # Shmem split: serve counters live in the workers (merged
                # above), maintenance counters in the parent's shards —
                # counters sum, and the parent's fresher gauges win by
                # merge order.  The publisher adds segment/epoch telemetry.
                for shard in self.shards:
                    registry.merge(shard.obs_registry())
                registry.merge(self._pool.publisher.obs_registry())
        else:
            for shard in self.shards:
                registry.merge(shard.obs_registry())
        if self._compiled is not None:
            # Plan-level stage telemetry (result-cache hit rate, dedup
            # collapse counters) lives above the fan-out, in the parent's
            # compiled pipeline.
            registry.merge(self._compiled.obs_registry())
        return registry

    def balance_stats(self) -> dict:
        return self.plan.balance_stats()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write a warm-startable snapshot directory (see
        :mod:`repro.serve.snapshot`).

        With live worker processes the authoritative shard state is
        collected back first, so the snapshot is never stale."""
        from repro.serve.snapshot import save_snapshot

        self._sync_from_workers()
        save_snapshot(self, path)

    @classmethod
    def load(
        cls, path, workers: int | None = None, backend: str | None = None
    ) -> "ShardedRecommender":
        """Rebuild a service from a snapshot without retraining."""
        from repro.serve.snapshot import load_sharded

        return load_sharded(path, workers=workers, backend=backend)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "index" if self.use_index else "scan"
        return (
            f"ShardedRecommender(shards={self.n_shards}, users={self.n_users}, "
            f"mode={mode}, strategy={self.plan.strategy!r}, "
            f"backend={self.backend!r}, workers={self.workers})"
        )
