"""Open-loop load generation: replay sim scenarios as network traffic.

The generator drives a live :class:`~repro.serve.server.RecommenderServer`
through the :class:`~repro.serve.client.AsyncRecommenderClient`:
mutations (uploads, interactions) replay in stream order — each awaited,
preserving the library-call ordering — while every recommendation window
is issued **open-loop**: all of the window's recommend requests go out
concurrently (bounded by ``concurrency`` in-flight), which is the
traffic shape the server's dynamic coalescer is built for.

Two drivers:

- :func:`drive_scenario` — replay one :class:`~repro.sim.scenarios.Scenario`
  as traffic, optionally judging every served ranked list **bit for
  bit** against an in-process replica fed the identical event sequence
  (the CI server-smoke gate: zero divergences through the socket);
- :func:`drive_queries` — a pure-query open loop over a fixed item set
  against an already-warmed server (the throughput bench's measured
  section; returns the ranked lists so the bench can assert parity).

Typed overload replies are retried with a small backoff and counted —
an overloaded server sheds load without corrupting the replay.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.datasets.schema import SocialItem
from repro.eval.metrics import TimingStats
from repro.serve.client import AsyncRecommenderClient, RankedList
from repro.serve.protocol import ServerOverloadError
from repro.sim.scenarios import Scenario

#: Retry schedule for typed overload replies (attempts x backoff
#: seconds); an open-loop generator must tolerate shed load.
OVERLOAD_RETRIES = 200
OVERLOAD_BACKOFF = 0.005


@dataclass
class LoadgenReport:
    """Outcome of one scenario replayed as traffic.

    Attributes:
        scenario: replayed scenario name.
        n_observes / n_updates / n_recommends: traffic counts.
        divergences: served ranked lists that failed the bitwise
            comparison against the in-process replica (0 when unverified).
        verified: whether a replica judged the replay.
        overloads: typed overload replies absorbed (after retries).
        seconds: wall clock of the whole replay.
        latency: recommend round-trip times (client-observed).
        server_stats: the server's own ``stats`` reply at the end.
        server_obs: the server's ``metrics``-route payload at the end
            (merged registry dump + Prometheus text + slow-request log)
            — the server-side view the client-observed latency alone
            cannot give: how long requests queued in the coalescer vs
            how long batches actually executed.
    """

    scenario: str
    n_observes: int = 0
    n_updates: int = 0
    n_recommends: int = 0
    divergences: int = 0
    verified: bool = False
    overloads: int = 0
    seconds: float = 0.0
    latency: TimingStats = field(default_factory=TimingStats)
    server_stats: dict = field(default_factory=dict)
    server_obs: dict = field(default_factory=dict)

    @property
    def items_per_sec(self) -> float:
        return self.n_recommends / self.seconds if self.seconds else 0.0

    def to_text(self) -> str:
        lat = self.latency.summary_ms()
        verdict = (
            "unverified"
            if not self.verified
            else ("EXACT" if self.divergences == 0 else f"BROKEN ({self.divergences})")
        )
        coalescing = self.server_stats.get("coalescing", {})
        lines = (
            f"{self.scenario:<24} recommends={self.n_recommends:<5} "
            f"items/sec={self.items_per_sec:8.1f} "
            f"p50={lat['p50_ms']:6.2f}ms p95={lat['p95_ms']:6.2f}ms "
            f"p99={lat['p99_ms']:6.2f}ms overloads={self.overloads:<3} "
            f"mean_batch={coalescing.get('mean_batch_size', 0.0):4.1f} "
            f"wire={verdict}"
        )
        queue = coalescing.get("queue", {})
        batch_exec = coalescing.get("batch_exec", {})
        if queue.get("count") or batch_exec.get("count"):
            # Server-side decomposition of the client round-trip: time
            # spent queued in the coalescer vs executing on the model.
            lines += (
                f"\n{'':<24} server: queue p95={queue.get('p95_ms', 0.0):6.2f}ms "
                f"batch-exec p95={batch_exec.get('p95_ms', 0.0):6.2f}ms "
                f"({batch_exec.get('count', 0)} batches)"
            )
        return lines


async def _recommend_with_retry(
    client: AsyncRecommenderClient,
    item: SocialItem,
    k: int,
    report: LoadgenReport,
    semaphore: asyncio.Semaphore,
) -> RankedList:
    async with semaphore:
        for attempt in range(OVERLOAD_RETRIES):
            started = time.perf_counter()
            try:
                ranked = await client.recommend(item, k)
            except ServerOverloadError:
                report.overloads += 1
                await asyncio.sleep(OVERLOAD_BACKOFF * (attempt + 1))
                continue
            report.latency.record(time.perf_counter() - started)
            return ranked
        raise ServerOverloadError(
            f"recommend for item {item.item_id} still overloaded after "
            f"{OVERLOAD_RETRIES} retries"
        )


async def _drive_scenario_async(
    host: str,
    port: int,
    scenario: Scenario,
    k: int,
    window_size: int,
    concurrency: int,
    replica,
) -> LoadgenReport:
    report = LoadgenReport(scenario=scenario.name, verified=replica is not None)
    client = await AsyncRecommenderClient.connect(host, port)
    semaphore = asyncio.Semaphore(max(1, concurrency))
    started = time.perf_counter()
    try:
        window: list[SocialItem] = []

        async def serve_window() -> None:
            if not window:
                return
            served = await asyncio.gather(*[
                _recommend_with_retry(client, item, k, report, semaphore)
                for item in window
            ])
            report.n_recommends += len(window)
            if replica is not None:
                expected = replica.recommend_batch(window, k)
                for got, want in zip(served, expected):
                    if got != want:
                        report.divergences += 1
            window.clear()

        for event in scenario.events:
            if event.kind == "upload":
                item = event.payload
                await client.observe(item)
                if replica is not None:
                    replica.observe_item(item)
                report.n_observes += 1
                window.append(item)
                if len(window) >= window_size:
                    await serve_window()
            else:
                interaction = event.payload
                payload_item = scenario.item_payload(interaction)
                await client.update(interaction, payload_item)
                if replica is not None:
                    replica.update(interaction, payload_item)
                report.n_updates += 1
        await serve_window()
        report.seconds = time.perf_counter() - started
        report.server_stats = await client.stats()
        report.server_obs = await client.metrics()
    finally:
        await client.close()
    return report


def drive_scenario(
    host: str,
    port: int,
    scenario: Scenario,
    k: int = 10,
    window_size: int = 8,
    concurrency: int = 8,
    replica=None,
) -> LoadgenReport:
    """Replay one scenario as open-loop traffic against a live server.

    Args:
        replica: an in-process recommender fed the identical event
            sequence; every served ranked list is compared to its
            ``recommend_batch`` output bitwise.  The replica must start
            from the same trained state the server's owner did (the
            experiments driver deepcopies one fitted template for both).
    """
    return asyncio.run(_drive_scenario_async(
        host, port, scenario, int(k), int(window_size), int(concurrency), replica
    ))


@dataclass
class QueryLoadReport:
    """A pure-query open loop's measurement (the bench's unit)."""

    n_queries: int
    seconds: float
    overloads: int
    latency: TimingStats
    results: list[RankedList]
    server_stats: dict
    server_obs: dict = field(default_factory=dict)

    @property
    def items_per_sec(self) -> float:
        return self.n_queries / self.seconds if self.seconds else 0.0


async def _drive_queries_async(
    host: str,
    port: int,
    items: Sequence[SocialItem],
    k: int,
    concurrency: int,
) -> QueryLoadReport:
    report = LoadgenReport(scenario="queries")
    client = await AsyncRecommenderClient.connect(host, port)
    started = time.perf_counter()
    try:
        # A fixed worker pool instead of one task + semaphore per query:
        # ``concurrency`` tasks total, each pulling the next item index —
        # the open-loop in-flight bound without per-query task overhead
        # (this loop shares one core with the server under test, so the
        # generator's own cost is part of the measurement).
        results: list[RankedList | None] = [None] * len(items)
        next_index = 0

        async def worker() -> None:
            nonlocal next_index
            while next_index < len(items):
                index = next_index
                next_index += 1
                for attempt in range(OVERLOAD_RETRIES):
                    query_started = time.perf_counter()
                    try:
                        results[index] = await client.recommend(items[index], k)
                    except ServerOverloadError:
                        report.overloads += 1
                        await asyncio.sleep(OVERLOAD_BACKOFF * (attempt + 1))
                        continue
                    report.latency.record(time.perf_counter() - query_started)
                    break
                else:
                    raise ServerOverloadError(
                        f"recommend for item {items[index].item_id} still "
                        f"overloaded after {OVERLOAD_RETRIES} retries"
                    )

        await asyncio.gather(*[worker() for _ in range(max(1, concurrency))])
        seconds = time.perf_counter() - started
        stats = await client.stats()
        obs = await client.metrics()
    finally:
        await client.close()
    return QueryLoadReport(
        n_queries=len(items),
        seconds=seconds,
        overloads=report.overloads,
        latency=report.latency,
        results=list(results),
        server_stats=stats,
        server_obs=obs,
    )


def drive_queries(
    host: str,
    port: int,
    items: Sequence[SocialItem],
    k: int = 10,
    concurrency: int = 16,
) -> QueryLoadReport:
    """Fire ``items`` as concurrent recommends (bounded in-flight) and
    measure items/sec + latency; results return for parity checks."""
    return asyncio.run(_drive_queries_async(host, port, list(items), int(k), int(concurrency)))
