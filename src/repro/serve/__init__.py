"""repro.serve — the sharded serving runtime.

Layers partitioned, warm-startable serving on top of the core/index
stack:

- :mod:`repro.serve.sharding` — :class:`UserSharder`/:class:`ShardPlan`
  (hash and block-aware user partitioning, balance/rebalance stats) and
  the exact :func:`merge_top_k`;
- :mod:`repro.serve.shard` — :class:`RecommenderShard`, one exact
  matcher/CPPse-index over a user slice with shard-local Algorithm-2
  maintenance;
- :mod:`repro.serve.service` — :class:`ShardedRecommender`, the
  fan-out/merge facade (sequential, thread-pool or process backend) with
  per-shard latency/candidate metrics;
- :mod:`repro.serve.workers` — :class:`ShardWorkerPool`, one spawn-safe
  OS process per shard (queue transport, collect/restart lifecycle) for
  the process backend;
- :mod:`repro.serve.shmem` — :class:`ShmemWorkerPool`, the shared-memory
  fan-out: shard state published once into epoch-versioned segments,
  stateless workers attaching zero-copy read-only views, one batched
  message per shard per serve window;
- :mod:`repro.serve.snapshot` — versioned save/load of the full trained
  state so a server warm-starts without retraining;
- :mod:`repro.serve.protocol` — the length-prefixed, versioned JSON
  frame format (typed encode/decode, incremental :class:`FrameDecoder`);
- :mod:`repro.serve.server` — :class:`RecommenderServer`, the asyncio
  socket front end with dynamic micro-batch coalescing and admission
  control (plus :class:`ServerThread` for embedding in sync callers);
- :mod:`repro.serve.client` — blocking and asyncio clients over the
  frame protocol;
- :mod:`repro.serve.loadgen` — open-loop scenario replay as network
  traffic, with optional bitwise verification against a replica.
"""

from repro.serve.client import AsyncRecommenderClient, RecommenderClient
from repro.serve.loadgen import LoadgenReport, QueryLoadReport, drive_queries, drive_scenario
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    Reply,
    Request,
    ServerError,
    ServerOverloadError,
)
from repro.serve.server import RecommenderServer, ServerStats, ServerThread
from repro.serve.service import ShardedRecommender
from repro.serve.shard import RecommenderShard, ShardMetrics
from repro.serve.sharding import ShardPlan, UserSharder, hash_shard, merge_top_k
from repro.serve.workers import ShardWorkerError, ShardWorkerPool
from repro.serve.shmem import (
    SEGMENT_PREFIX,
    SegmentManifest,
    ShardPublisher,
    ShmemError,
    ShmemWorkerPool,
    attach_state,
    live_segment_names,
    publish_state,
)
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_recommender,
    load_sharded,
    read_manifest,
    save_snapshot,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AsyncRecommenderClient",
    "FrameDecoder",
    "LoadgenReport",
    "ProtocolError",
    "QueryLoadReport",
    "RecommenderClient",
    "RecommenderServer",
    "Reply",
    "Request",
    "ServerError",
    "ServerOverloadError",
    "ServerStats",
    "ServerThread",
    "drive_queries",
    "drive_scenario",
    "ShardedRecommender",
    "RecommenderShard",
    "ShardMetrics",
    "ShardPlan",
    "UserSharder",
    "hash_shard",
    "merge_top_k",
    "ShardWorkerError",
    "ShardWorkerPool",
    "SEGMENT_PREFIX",
    "SegmentManifest",
    "ShardPublisher",
    "ShmemError",
    "ShmemWorkerPool",
    "attach_state",
    "live_segment_names",
    "publish_state",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "save_snapshot",
    "load_recommender",
    "load_sharded",
    "read_manifest",
]
