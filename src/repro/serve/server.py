"""The network front door: an asyncio socket server over any recommender.

:class:`RecommenderServer` exposes the serving facade's operations —
``observe`` / ``update`` / ``recommend`` / ``recommend_batch`` /
``snapshot`` / ``stats`` / ``metrics`` — over the framed JSON protocol of
:mod:`repro.serve.protocol`.  It serves any owner with the recommender
shape (:class:`~repro.core.ssrec.SsRecRecommender`,
:class:`~repro.serve.service.ShardedRecommender`, or a test double) via
the :func:`repro.exec.as_executor` seam, so every request executes
through the owner's compiled execution plan.

Three serving-layer mechanisms live here:

- **Dynamic micro-batch coalescing.**  Concurrently arriving
  ``recommend`` requests queue in a :class:`_Coalescer` and execute as
  *one* call to the executor's mixed-``k`` ``run_requests`` batch entry
  — so the amortized micro-batch costs (one profile sync, shared
  smoothed columns, shared sigtree descents) apply to open-loop traffic
  that never asked to be a batch.  Windows close on the batch cap
  (``max_batch``), on the model thread freeing up with requests queued
  (batch size tracks the arrival rate under steady load), or — when the
  model is idle — at the next event-loop tick (greedy, the default) or
  after the ``max_delay`` latency budget.  Coalescing is
  exact: the batch entry is bit-identical to per-item serving, which
  the wire conformance family asserts through the socket.
- **Admission control.**  At most ``max_pending`` requests may be
  admitted-but-unfinished; one more gets an immediate typed ``overload``
  reply (never silently queued, never executed), so a slow or flooded
  server sheds load instead of growing an unbounded queue.
- **Ordering.**  All model work — mutations and coalesced batches —
  runs on one model thread in *admission order* (the order frames were
  decoded per connection), which is what makes served streams
  bit-reproducible against the in-process library call sequence.

Observability (see :mod:`repro.obs`): per-route, queue-wait and
batch-execution latency live in mergeable
:class:`~repro.obs.metrics.LatencyHistogram` s (``stats`` returns the
p50/p95/p99 summaries over the wire); ``metrics`` returns the merged
server + owner registry (JSON dump and Prometheus text) plus the
slow-request log; a ``recommend`` with ``trace=true`` carries its full
cross-process span tree back on the reply.

Synchronous contexts (tests, the conformance runner, the eval CLI) run
the server on a background event loop via :class:`ServerThread`::

    with ServerThread(RecommenderServer(recommender)) as (host, port):
        with RecommenderClient(host, port) as client:
            top = client.recommend(item, k=10)
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.exec.compile import as_executor
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.trace import Trace, make_span, new_id, span, use_trace
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    REQUEST_OPS,
    FrameDecoder,
    ProtocolError,
    Reply,
    Request,
    decode_request,
    encode_reply,
    ranked_to_wire,
)


@dataclass
class ServerStats:
    """Serving counters plus per-route latency percentiles.

    Latency is kept in fixed-bucket mergeable
    :class:`~repro.obs.metrics.LatencyHistogram` s: ``route_latency``
    per request op, ``queue_seconds`` for coalescer queue wait (from
    submit to window close) and ``batch_seconds`` for model-thread
    batch execution — the queue-vs-service split the loadgen report
    surfaces.
    """

    requests: int = 0
    replies: int = 0
    overloads: int = 0
    errors: int = 0
    protocol_errors: int = 0
    disconnects: int = 0
    slow_requests: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    max_batch_size: int = 0
    route_latency: dict[str, LatencyHistogram] = field(
        default_factory=lambda: {op: LatencyHistogram() for op in REQUEST_OPS}
    )
    queue_seconds: LatencyHistogram = field(default_factory=LatencyHistogram)
    batch_seconds: LatencyHistogram = field(default_factory=LatencyHistogram)

    def record_batch(self, size: int) -> None:
        self.coalesced_batches += 1
        self.coalesced_requests += size
        self.max_batch_size = max(self.max_batch_size, size)

    @property
    def mean_batch_size(self) -> float:
        return (
            self.coalesced_requests / self.coalesced_batches
            if self.coalesced_batches
            else 0.0
        )

    def as_dict(self) -> dict:
        """The wire shape of the ``stats`` reply."""
        return {
            "requests": self.requests,
            "replies": self.replies,
            "overloads": self.overloads,
            "errors": self.errors,
            "protocol_errors": self.protocol_errors,
            "disconnects": self.disconnects,
            "slow_requests": self.slow_requests,
            "coalescing": {
                "batches": self.coalesced_batches,
                "batched_requests": self.coalesced_requests,
                "mean_batch_size": self.mean_batch_size,
                "max_batch_size": self.max_batch_size,
                "queue": {"count": self.queue_seconds.count,
                          **self.queue_seconds.summary_ms()},
                "batch_exec": {"count": self.batch_seconds.count,
                               **self.batch_seconds.summary_ms()},
            },
            "routes": {
                op: {"count": hist.count, **hist.summary_ms()}
                for op, hist in self.route_latency.items()
                if hist.count
            },
        }

    def to_registry(self) -> MetricsRegistry:
        """The same counters/latencies as a mergeable registry — the
        server's contribution to the ``metrics`` route."""
        registry = MetricsRegistry()
        registry.counter("server.requests").inc(self.requests)
        registry.counter("server.replies").inc(self.replies)
        registry.counter("server.overloads").inc(self.overloads)
        registry.counter("server.errors").inc(self.errors)
        registry.counter("server.protocol_errors").inc(self.protocol_errors)
        registry.counter("server.disconnects").inc(self.disconnects)
        registry.counter("server.slow_requests").inc(self.slow_requests)
        registry.counter("server.coalesced_batches").inc(self.coalesced_batches)
        registry.counter("server.coalesced_requests").inc(self.coalesced_requests)
        registry.gauge("server.max_batch_size").set(self.max_batch_size)
        for op, hist in self.route_latency.items():
            if hist.count:
                registry.histogram(
                    "server.route_seconds", bounds=hist.bounds, op=op
                ).merge(hist)
        if self.queue_seconds.count:
            registry.histogram(
                "server.queue_seconds", bounds=self.queue_seconds.bounds
            ).merge(self.queue_seconds)
        if self.batch_seconds.count:
            registry.histogram(
                "server.batch_seconds", bounds=self.batch_seconds.bounds
            ).merge(self.batch_seconds)
        return registry


class _RequestTrace:
    """Book-keeping of one traced request, from admission to reply.

    ``wire=True`` means the client asked for the span tree on its reply
    (``recommend`` with ``trace=true``); ``wire=False`` traces are
    implicit — recorded only so the slow-request log has a full tree to
    capture when the request crosses the latency threshold.
    """

    __slots__ = ("trace", "root_id", "started", "started_wall", "wire")

    def __init__(self, wire: bool) -> None:
        self.trace = Trace()
        self.root_id = new_id()
        self.started = time.perf_counter()
        self.started_wall = time.time()
        self.wire = bool(wire)

    def attach_batch(self, batch_spans: list[dict]) -> None:
        """Graft a coalesced batch's shared spans under this request's
        root (the batch root re-parents; its subtree comes verbatim)."""
        self.trace.extend(
            {**span_dict, "parent_id": self.root_id}
            if span_dict.get("parent_id") is None
            else span_dict
            for span_dict in batch_spans
        )


class _Coalescer:
    """Queue recommend requests into dynamic micro-batches for the model
    thread.

    A window closes on whichever comes first:

    - the batch cap (``max_batch``) is reached;
    - the model thread *frees up* with requests queued — while a batch
      executes no timer runs, requests simply accumulate, and the next
      window dispatches the moment the previous one completes.  Under
      steady open-loop load batch size therefore tracks the arrival
      rate instead of racing a timer against the model;
    - the model is idle and the window expires: with ``max_delay <= 0``
      (greedy, the default) at the *next event-loop tick* — every
      request decoded from the same read joins the window, and a lone
      sparse request dispatches immediately as a batch of one, so
      greedy coalescing never adds latency a timer would; with
      ``max_delay > 0`` after that many seconds since the first queued
      request — the classic latency-for-throughput trade for sparse
      open-loop traffic.
    """

    def __init__(self, server: "RecommenderServer", max_batch: int, max_delay: float) -> None:
        self._server = server
        self.max_batch = max(1, int(max_batch))
        self.max_delay = float(max_delay)
        self._pending: list[
            tuple[object, int | None, asyncio.Future, _RequestTrace | None, float]
        ] = []
        self._timer: asyncio.TimerHandle | asyncio.Handle | None = None
        self._inflight_batches = 0

    def submit(
        self, item, k: int | None, request_trace: _RequestTrace | None = None
    ) -> asyncio.Future:
        """Admit one recommend request; resolves with its ranked list."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, k, future, request_trace, time.perf_counter()))
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._inflight_batches == 0 and self._timer is None:
            # Greedy (max_delay <= 0): close at the next loop tick, after
            # every request already decoded this pass has joined.
            self._timer = (
                loop.call_soon(self.flush)
                if self.max_delay <= 0.0
                else loop.call_later(self.max_delay, self.flush)
            )
        return future

    def flush(self) -> None:
        """Close the current window and dispatch it (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        stats = self._server.stats
        stats.record_batch(len(batch))
        closed_at = time.perf_counter()
        requests = [(item, k) for item, k, _, _, _ in batch]
        futures = [future for _, _, future, _, _ in batch]
        traced = [rt for _, _, _, rt, _ in batch if rt is not None]
        for _, _, _, rt, submitted in batch:
            waited = closed_at - submitted
            stats.queue_seconds.record(waited)
            if rt is not None:
                rt.trace.add(make_span(
                    "server.coalesce",
                    parent_id=rt.root_id,
                    start=rt.started_wall,
                    duration=waited,
                    batch_size=len(batch),
                ))
        self._inflight_batches += 1
        # One shared trace per traced batch: the model-thread execution
        # (exec operators, fan-out, worker spans) records once, then the
        # subtree is grafted under every traced request's root.
        batch_trace = Trace() if traced else None
        batch_span_id = new_id() if traced else None

        def run() -> list:
            start_wall = time.time()
            start = time.perf_counter()
            try:
                if batch_trace is None:
                    return self._server._executor().run_requests(requests)
                with use_trace(batch_trace, batch_span_id):
                    return self._server._executor().run_requests(requests)
            finally:
                duration = time.perf_counter() - start
                stats.batch_seconds.record(duration)
                if batch_trace is not None:
                    batch_trace.add(make_span(
                        "server.batch",
                        span_id=batch_span_id,
                        parent_id=None,
                        start=start_wall,
                        duration=duration,
                        batch_size=len(requests),
                    ))

        def resolve(ranked_lists: list) -> None:
            if batch_trace is not None:
                batch_spans = batch_trace.spans()
                for rt in traced:
                    rt.attach_batch(batch_spans)
            for future, ranked in zip(futures, ranked_lists):
                if not future.done():
                    future.set_result(ranked)
            self._batch_done()

        def fail(exc: BaseException) -> None:
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            self._batch_done()

        self._server._submit_model(run, on_result=resolve, on_error=fail)

    def _batch_done(self) -> None:
        """The model freed up: dispatch whatever queued while it ran."""
        self._inflight_batches -= 1
        if self._inflight_batches == 0 and self._pending:
            self.flush()


class RecommenderServer:
    """Asyncio socket server serving one recommender over the wire.

    Args:
        recommender: the owner to serve (anything :func:`as_executor`
            accepts; mutations additionally need ``observe_item`` /
            ``update``, snapshots need ``save`` / ``load``).
        host, port: bind address; port 0 picks an ephemeral port
            (read :attr:`port` after :meth:`start`).
        coalesce: dynamic micro-batching of ``recommend`` requests; off
            means strict per-request dispatch (the bench's control arm).
        max_batch: coalescer batch cap.
        max_delay: idle-window close policy.  ``0`` (the default) is
            greedy — an idle-opened window closes at the next event-loop
            tick, so coalescing adds no timer latency; a positive value
            holds the window that many seconds for sparse traffic to
            fill it.
        max_pending: admission bound on admitted-but-unfinished requests;
            excess requests get an immediate typed overload reply.
        max_frame_bytes: wire frame size limit (both directions).
        slow_request_seconds: when set, every ``recommend`` is implicitly
            traced and requests slower than this many seconds land —
            with their full span tree — in the slow-request log the
            ``metrics`` route exposes.  ``None`` (the default) disables
            the log and keeps the untraced fast path.
        slow_request_log_size: how many slow requests the log retains
            (oldest evicted first).
    """

    def __init__(
        self,
        recommender,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coalesce: bool = True,
        max_batch: int = 32,
        max_delay: float = 0.0,
        max_pending: int = 256,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        slow_request_seconds: float | None = None,
        slow_request_log_size: int = 32,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if slow_request_seconds is not None and slow_request_seconds < 0:
            raise ValueError(
                f"slow_request_seconds must be >= 0, got {slow_request_seconds}"
            )
        self.recommender = recommender
        self.host = host
        self.port = int(port)
        self.coalesce = bool(coalesce)
        self.max_pending = int(max_pending)
        self.max_frame_bytes = int(max_frame_bytes)
        self.slow_request_seconds = (
            None if slow_request_seconds is None else float(slow_request_seconds)
        )
        self.slow_requests: deque[dict] = deque(maxlen=int(slow_request_log_size))
        self.stats = ServerStats()
        self.snapshot_reloads = 0
        self._coalescer = _Coalescer(self, max_batch=max_batch, max_delay=max_delay)
        # One model thread: every mutation and every (coalesced) batch
        # executes here in admission order — the bit-reproducibility and
        # thread-safety story in one mechanism.
        self._model = ThreadPoolExecutor(max_workers=1, thread_name_prefix="repro-model")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._pending: set[asyncio.Future] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the live ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._on_connect, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return (self.host, self.port)

    async def stop(self) -> None:
        """Stop accepting, **drain**, release.

        Draining means: the coalescer's open window is flushed, every
        admitted request runs to completion and writes its reply — no
        request is dropped and none is served twice (the shutdown test
        counts replies).  Only then are connections closed.
        """
        self._stopping = True
        if self._server is not None:
            # close() alone: 3.12's wait_closed() also waits for every
            # *connection handler*, which deadlocks a drain while clients
            # are still connected.  Handlers exit when their writer is
            # closed below (or with the loop).
            self._server.close()
            self._server = None
        self._coalescer.flush()
        while self._pending or self._tasks:
            await asyncio.gather(
                *list(self._pending), *list(self._tasks), return_exceptions=True
            )
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self._model.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Model-thread plumbing
    # ------------------------------------------------------------------
    def _executor(self):
        """The owner's current compiled plan (re-read per dispatch so a
        snapshot-reload swap takes effect immediately)."""
        return as_executor(self.recommender)

    def _submit_model(self, fn, on_result=None, on_error=None) -> asyncio.Future:
        """Queue ``fn`` on the model thread *now* (admission order) and
        bridge its outcome back onto the event loop."""
        assert self._loop is not None
        future = self._loop.run_in_executor(self._model, fn)
        if on_result is not None or on_error is not None:
            def _done(fut: asyncio.Future) -> None:
                exc = fut.exception()
                if exc is not None:
                    if on_error is not None:
                        on_error(exc)
                elif on_result is not None:
                    on_result(fut.result())
            future.add_done_callback(_done)
        return future

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connect(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        self._writers.add(writer)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    # A partial buffered frame here is a torn frame; the
                    # peer is gone, so there is nobody to reply to.
                    try:
                        decoder.close()
                    except ProtocolError:
                        self.stats.protocol_errors += 1
                    break
                for message in decoder.feed(data):
                    request = decode_request(message)
                    self._admit(request, writer)
        except ProtocolError as exc:
            # Frame- or message-level garbage: send one typed error reply
            # (best effort; id 0 when the request id never decoded) and
            # drop the connection — resynchronizing a framed stream after
            # corruption is guesswork.
            self.stats.protocol_errors += 1
            await self._try_write(
                writer,
                Reply(request_id=0, status="error", error=f"ProtocolError: {exc}"),
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            self.stats.disconnects += 1
        finally:
            self._writers.discard(writer)
            writer.close()

    def _admit(self, request: Request, writer) -> None:
        """Admission control + dispatch, synchronously at decode time.

        Dispatching here (not inside a per-request reply task) pins the
        model-thread execution order to frame arrival order, which is the
        ordering contract served conformance relies on.
        """
        self.stats.requests += 1
        if self._stopping:
            self._watch(
                request, writer, started=time.perf_counter(),
                outcome=_ready(Reply(request.request_id, "error", error="server is shutting down")),
            )
            return
        if self._inflight >= self.max_pending:
            self.stats.overloads += 1
            self._watch(
                request, writer, started=time.perf_counter(),
                outcome=_ready(Reply(
                    request.request_id,
                    "overload",
                    error=f"admission queue full ({self.max_pending} pending)",
                )),
            )
            return
        self._inflight += 1
        started = time.perf_counter()
        outcome = self._dispatch(request)
        self._watch(request, writer, started=started, outcome=outcome, admitted=True)

    def _request_trace(self, payload: dict) -> _RequestTrace | None:
        """The trace for one ``recommend``, or None (the fast path).

        Traced when the client asked for spans on its reply, or
        implicitly — without touching the wire — when the slow-request
        log is enabled, so a slow request always has a tree to capture.
        """
        wire = bool(payload.get("trace", False))
        if not wire and self.slow_request_seconds is None:
            return None
        return _RequestTrace(wire=wire)

    def _traced_reply(self, rid: int, op: str, rt: _RequestTrace, result) -> Reply:
        """Assemble a traced request's reply: close the root span, feed
        the slow-request log, ship the tree when the client asked."""
        elapsed = time.perf_counter() - rt.started
        rt.trace.add(make_span(
            "server.request",
            span_id=rt.root_id,
            parent_id=None,
            start=rt.started_wall,
            duration=elapsed,
            op=op,
        ))
        threshold = self.slow_request_seconds
        if threshold is not None and elapsed >= threshold:
            self.stats.slow_requests += 1
            self.slow_requests.append({
                "op": op,
                "request_id": rid,
                "seconds": elapsed,
                "trace_id": rt.trace.trace_id,
                "spans": rt.trace.spans(),
            })
        return Reply(
            rid, "ok", result=result,
            trace=rt.trace.to_dict() if rt.wire else None,
        )

    def _dispatch(self, request: Request) -> "asyncio.Future":
        """Start one admitted operation; returns an awaitable Reply."""
        op, payload = request.op, request.payload
        rid = request.request_id
        if op == "recommend" and self.coalesce:
            rt = self._request_trace(payload)
            ranked_future = self._coalescer.submit(payload["item"], payload["k"], rt)
            if rt is None:
                return _map_future(ranked_future, lambda ranked: Reply(
                    rid, "ok", result=ranked_to_wire(ranked)))
            return _map_future(ranked_future, lambda ranked: self._traced_reply(
                rid, op, rt, ranked_to_wire(ranked)))
        if op == "recommend":
            item, k = payload["item"], payload["k"]
            rt = self._request_trace(payload)
            if rt is None:
                model_future = self._submit_model(
                    lambda: self._executor().run_requests([(item, k)])[0]
                )
                return _map_future(model_future, lambda ranked: Reply(
                    rid, "ok", result=ranked_to_wire(ranked)))

            def run_traced():
                with use_trace(rt.trace, rt.root_id):
                    with span("server.execute"):
                        return self._executor().run_requests([(item, k)])[0]

            model_future = self._submit_model(run_traced)
            return _map_future(model_future, lambda ranked: self._traced_reply(
                rid, op, rt, ranked_to_wire(ranked)))
        if op == "recommend_batch":
            items, k = payload["items"], payload["k"]
            model_future = self._submit_model(
                lambda: self._executor().run_batch(items, k)
                if items
                else []
            )
            return _map_future(model_future, lambda ranked_lists: Reply(
                rid, "ok", result=[ranked_to_wire(r) for r in ranked_lists]))
        if op == "observe":
            item = payload["item"]
            model_future = self._submit_model(
                lambda: self.recommender.observe_item(item)
            )
            return _map_future(model_future, lambda _: Reply(rid, "ok"))
        if op == "update":
            interaction, item = payload["interaction"], payload["item"]
            model_future = self._submit_model(
                lambda: self.recommender.update(interaction, item)
            )
            return _map_future(model_future, lambda _: Reply(rid, "ok"))
        if op == "snapshot":
            path, reload_flag = payload["path"], payload["reload"]
            model_future = self._submit_model(
                lambda: self._snapshot(path, reload_flag)
            )
            return _map_future(model_future, lambda result: Reply(rid, "ok", result=result))
        if op == "stats":
            return _ready(Reply(rid, "ok", result=self.stats.as_dict()))
        if op == "metrics":
            # Runs on the model thread: collecting the owner's registry
            # may fan out over the worker pool, whose request/reply
            # queues are only safe from the thread that serves on them.
            model_future = self._submit_model(self._collect_metrics)
            return _map_future(model_future, lambda result: Reply(
                rid, "ok", result=result))
        raise AssertionError(f"unreachable op {op!r}")  # pragma: no cover

    def _collect_metrics(self) -> dict:
        """The ``metrics`` route payload (model thread): the server's own
        registry merged with the owner's, as JSON dump + Prometheus text,
        plus the slow-request log."""
        registry = self.stats.to_registry()
        owner_registry = getattr(self.recommender, "obs_registry", None)
        if callable(owner_registry):
            registry.merge(owner_registry())
        return {
            "registry": registry.to_dict(),
            "prometheus": registry.to_prometheus(),
            "slow_requests": list(self.slow_requests),
        }

    def _snapshot(self, path: str, reload_flag: bool) -> dict:
        """Save the owner; optionally swap in a fresh warm-started copy.

        Runs on the model thread, so the reload is atomic with respect to
        every other operation — requests admitted after this one serve
        from the reloaded state, exactly like a process restart would.
        """
        self.recommender.save(path)
        if reload_flag:
            old = self.recommender
            self.recommender = type(old).load(path)
            close = getattr(old, "close", None)
            if callable(close):
                close()
            self.snapshot_reloads += 1
        return {"path": str(path), "reloaded": bool(reload_flag)}

    #: Reply writes above this much buffered outbound data switch from the
    #: synchronous fast path to an awaited ``drain`` that keeps holding the
    #: request's admission slot — a slow reader therefore throttles its own
    #: admission, not the event loop.
    DRAIN_THRESHOLD_BYTES = 1 << 16

    def _watch(self, request, writer, *, started, outcome, admitted: bool = False) -> None:
        """Arrange the reply write for when ``outcome`` resolves.

        Callback-chained, not task-wrapped: this runs once per request on
        the serving hot path, and resolving a future into a synchronous
        ``transport.write`` costs a fraction of a task + coroutine.  Only
        the rare above-threshold drain (see :data:`DRAIN_THRESHOLD_BYTES`)
        spawns a task.  ``stop()`` drains by awaiting :attr:`_pending` —
        every watched outcome — plus any drain tasks in :attr:`_tasks`.
        """
        self._pending.add(outcome)
        outcome.add_done_callback(
            lambda fut: self._finish(request, writer, started, admitted, fut)
        )

    def _finish(self, request, writer, started, admitted, outcome: "asyncio.Future") -> None:
        self._pending.discard(outcome)
        try:
            reply = outcome.result()
        except asyncio.CancelledError:  # pragma: no cover - shutdown race
            reply = Reply(request.request_id, "error", error="request cancelled")
        except Exception as exc:  # noqa: BLE001 - shipped as a typed error reply
            reply = Reply(
                request.request_id, "error", error=f"{type(exc).__name__}: {exc}"
            )
        if reply.status == "error":
            self.stats.errors += 1
        self.stats.route_latency[request.op].record(time.perf_counter() - started)
        # Write path: a vanished client is a counted non-event (its
        # in-flight work still completed — state mutations hold).
        try:
            writer.write(encode_reply(reply))
            self.stats.replies += 1
        except (ConnectionError, RuntimeError):
            self.stats.disconnects += 1
            self._release(admitted)
            return
        transport = writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > self.DRAIN_THRESHOLD_BYTES
        ):
            task = asyncio.get_running_loop().create_task(
                self._drain_then_release(writer, admitted)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        else:
            self._release(admitted)

    def _release(self, admitted: bool) -> None:
        if admitted:
            self._inflight -= 1

    async def _drain_then_release(self, writer, admitted: bool) -> None:
        try:
            await writer.drain()
        except (ConnectionError, RuntimeError):
            self.stats.disconnects += 1
        finally:
            self._release(admitted)

    async def _try_write(self, writer, reply: Reply) -> None:
        """Best-effort reply outside the request path (protocol errors)."""
        try:
            writer.write(encode_reply(reply))
            await writer.drain()
            self.stats.replies += 1
        except (ConnectionError, RuntimeError):
            self.stats.disconnects += 1


def _ready(reply: Reply) -> "asyncio.Future":
    future: asyncio.Future = asyncio.get_running_loop().create_future()
    future.set_result(reply)
    return future


def _map_future(source: "asyncio.Future", transform) -> "asyncio.Future":
    """An awaitable applying ``transform`` to ``source``'s result
    (exceptions pass through untransformed).

    Chained through ``add_done_callback`` rather than a wrapping task:
    this runs once per request on the serving hot path, and a future
    callback costs a fraction of a task + coroutine."""
    mapped: asyncio.Future = asyncio.get_running_loop().create_future()

    def _done(fut: "asyncio.Future") -> None:
        if mapped.cancelled():
            return
        exc = fut.exception()
        if exc is not None:
            mapped.set_exception(exc)
            return
        try:
            mapped.set_result(transform(fut.result()))
        except Exception as transform_exc:  # noqa: BLE001 - surfaced to awaiter
            mapped.set_exception(transform_exc)

    source.add_done_callback(_done)
    return mapped


class ServerThread:
    """Run a :class:`RecommenderServer` on a dedicated background event
    loop — the bridge synchronous callers (tests, the conformance
    runner, the CLI) use.

    Context-manager form::

        with ServerThread(RecommenderServer(rec)) as (host, port):
            ...

    ``stop()`` performs the server's full drain before the thread exits,
    so leaving the ``with`` block never drops an in-flight request.
    """

    def __init__(self, server: RecommenderServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        """Spawn the loop thread; blocks until the server is accepting."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return (self.server.host, self.server.port)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:  # pragma: no cover - bind failures
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self._stop_event.wait()
            await self.server.stop()

        asyncio.run(main())

    def stop(self) -> None:
        """Drain the server and join the loop thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60.0)
        self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
