"""Process-hosted shard workers: one OS process per :class:`RecommenderShard`.

The thread backend of :class:`~repro.serve.service.ShardedRecommender`
fans queries out on a ``ThreadPoolExecutor``, but the scoring work inside a
shard is largely GIL-bound Python (best-first tree search, per-pair
arithmetic), so threads barely parallelize it.  A :class:`ShardWorkerPool`
hosts every shard in its *own process* instead — the Storm-worker layout
the paper deploys on — so N shards score on N cores.

Mechanics:

- **Shipping.** Each worker receives its shard through the same pickle
  serialization the snapshot layer uses (:mod:`repro.serve.snapshot`
  pickles the live object graph); the warm-start tests prove this
  round-trip preserves serving results bit for bit, which is what makes
  the process backend exact.  (The shared-memory backend in
  :mod:`repro.serve.shmem` replaces the per-worker pickle copy with
  zero-copy attached views; it reuses this module's pool base.)
- **Transport.** One request queue and one reply queue per worker
  (``multiprocessing`` queues under the ``spawn`` start method — the only
  one that is safe on every platform and under NumPy/BLAS threading).
  Every request produces exactly one reply and each worker serves its
  queue FIFO, so the parent can pipeline a fan-out (send to all workers,
  then collect in shard order) while mutation ordering stays identical to
  the in-process backends.  Requests and replies carry a per-worker
  sequence tag; replies left uncollected by a failed exchange are
  recognized as stale and discarded, never misattributed to a later call.
- **Collection safety.** The parent never reads a reply queue directly:
  a per-worker daemon *pump thread* drains the multiprocessing queue into
  an in-process ``queue.Queue`` the parent waits on with real timeouts.
  ``multiprocessing.Queue.get(timeout)`` only applies its timeout to the
  initial poll — once a frame header is seen, the subsequent
  ``recv_bytes`` blocks unboundedly, so a worker killed mid-write of a
  large reply (a ``collect`` pickle, say) used to deadlock the parent.
  With the pump, that blocking read happens on an abandonable daemon
  thread and the parent's wait keeps honoring liveness and deadlines.
- **Authority.** Once the pool is running the *worker* copies are the
  authoritative shard state; the parent's ``service.shards`` go stale
  until :meth:`collect`/:meth:`collect_all` pull the live objects back
  (the service does this before snapshots and on ``close()``).
- **Restart.** :meth:`restart` collects a worker's state, stops the
  process, and spawns a fresh one from the collected pickle — a rolling
  mid-stream restart that the conformance harness replays to prove the
  respawned worker continues bit-compatibly.

Failures surface as :class:`ShardWorkerError` carrying the remote
traceback; a dead worker is detected by liveness polling instead of
hanging the parent forever.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_lib
import threading
import time
import traceback
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.obs.trace import Trace, current_trace, span, use_trace

#: Operations a worker understands (requests are ``(seq, op, args,
#: trace_ctx)`` tuples; every reply echoes its request's ``seq`` and
#: carries the spans recorded under ``trace_ctx``, or ``None``).
WORKER_OPS = (
    "recommend",
    "recommend_batch",
    "update",
    "observe",
    "maintenance",
    "metrics",
    "obs",
    "n_users",
    "probed_users",
    "collect",
    "stop",
)

#: Sent through a reply queue by the *parent* to release that queue's pump
#: thread (a blocked cross-process read is not interrupted by closing the
#: queue).  A plain string so it survives the queue's pickle round trip.
_PUMP_STOP = "__repro_pump_stop__"

#: Start methods a pool accepts.  ``fork`` is excluded on purpose: it is
#: unsafe under NumPy/BLAS threading and macOS system libraries.
POOL_START_METHODS = ("spawn", "forkserver")


class ShardWorkerError(RuntimeError):
    """A shard worker process failed, died, or timed out."""


def _apply_op(shard, op: str, args: tuple):
    """Execute one request against the worker-local shard.

    Mutating ops mirror exactly what the in-process backends do to the
    same objects — ``observe`` replays the shared-state mutation of
    ``SsRecRecommender.observe_item`` against the worker's copies of the
    interest predictor and expander (the parent ships pre-annotated
    mentions so the worker needs no extractor), ``update`` records through
    the shard store (which creates profiles for users joining mid-stream,
    matching the parent's ``get_or_create``-then-adopt path).
    """
    if op == "recommend":
        item, k = args
        return shard.recommend(item, k)
    if op == "recommend_batch":
        items, k = args
        return shard.recommend_batch(items, k)
    if op == "update":
        interaction, item = args
        shard.update(interaction, item)
        return None
    if op == "observe":
        producer, item_id, category, mentions, entities = args
        shard.scorer.interest.observe_new_item(producer, item_id, category)
        expander = shard.scorer.expander
        if expander is not None:
            if mentions:
                expander.observe(category, list(mentions))
            else:
                expander.observe_entity_list(category, list(entities))
        return None
    if op == "maintenance":
        return shard.run_maintenance()
    if op == "metrics":
        row = {"shard_id": shard.shard_id, "users": shard.n_users}
        row.update(shard.metrics.as_dict())
        return row
    if op == "obs":
        return shard.obs_registry().to_dict()
    if op == "n_users":
        return shard.n_users
    if op == "probed_users":
        (item,) = args
        if shard.index is None:
            return set()
        return shard.index.users_in_probed_trees(item)
    if op == "collect":
        return pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
    raise ShardWorkerError(f"unknown worker op {op!r}")


def _shard_worker_main(shard_blob: bytes, requests, replies) -> None:
    """Worker process entry point: unpickle the shard, serve the queue.

    Module-level so the ``spawn`` start method can import it by reference;
    every exception is shipped back as an ``("err", (kind, traceback))``
    reply rather than killing the process, so one bad request does not
    lose the shard state.
    """
    shard = pickle.loads(shard_blob)
    while True:
        seq, op, args, trace_ctx = requests.get()
        if op == "stop":
            replies.put((seq, "ok", None, None))
            break
        try:
            if trace_ctx is None:
                replies.put((seq, "ok", _apply_op(shard, op, args), None))
            else:
                # Re-hydrate the parent's trace on this side of the
                # process boundary; the recorded spans travel back on
                # the reply and are grafted into the parent's tree.
                trace = Trace(trace_ctx["trace_id"])
                with use_trace(trace, trace_ctx.get("parent_id")):
                    with span(f"worker.{op}", shard=shard.shard_id):
                        value = _apply_op(shard, op, args)
                replies.put((seq, "ok", value, trace.spans()))
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            replies.put(
                (seq, "err", ("worker", f"{exc!r}\n{traceback.format_exc()}"), None)
            )


def _pump_replies(replies, inbox: queue_lib.Queue) -> None:
    """Drain one worker's multiprocessing reply queue into ``inbox``.

    Runs on a daemon thread.  The blocking cross-process read lives here
    so the parent's reply wait can honor timeouts and liveness checks —
    a worker that dies mid-write leaves this thread blocked (or raises a
    truncated-frame error), never the parent.  Exits on the
    :data:`_PUMP_STOP` sentinel, on queue teardown, or on any decode
    error from a torn frame.
    """
    while True:
        try:
            item = replies.get()
        except (EOFError, OSError):
            break
        except Exception:  # noqa: BLE001 - torn frame from a dying worker
            break
        if isinstance(item, str) and item == _PUMP_STOP:
            break
        inbox.put(item)


@dataclass
class _Worker:
    """Parent-side handle of one shard worker.

    ``seq`` is the per-worker exchange counter: every request carries the
    next value and its reply must echo it back.  When an exchange fails —
    a timeout, a worker error raised mid-:meth:`ShardWorkerPool.map` —
    the un-collected replies of that exchange stay queued; the tag lets
    later exchanges recognize and discard them instead of mistaking a
    stale reply for their own (an off-by-one that would silently serve
    the wrong shard's results forever after).

    ``inbox`` is the in-process queue the pump thread forwards replies
    into; the parent only ever waits on it, never on ``replies`` directly
    (see the module docstring on collection safety).
    """

    process: multiprocessing.process.BaseProcess
    requests: object  # multiprocessing.Queue
    replies: object  # multiprocessing.Queue
    inbox: queue_lib.Queue = field(default_factory=queue_lib.Queue)
    pump: threading.Thread | None = None
    seq: int = 0


class _WorkerPoolBase:
    """Spawn/transport/liveness machinery shared by the worker pools.

    Subclasses decide what the workers *are* (a pickled shard copy for
    :class:`ShardWorkerPool`, a stateless shared-memory reader for
    :class:`~repro.serve.shmem.ShmemWorkerPool`) and populate
    ``self._workers`` via :meth:`_spawn_worker`; everything about sending
    sequence-tagged requests, collecting replies without ever blocking on
    a dead process, and tearing workers down lives here, once.
    """

    #: Seconds a detected-dead worker's pump is still given to deliver a
    #: final already-sent reply before the death is surfaced.
    death_grace = 0.5

    def __init__(
        self, reply_timeout: float = 300.0, start_method: str = "spawn"
    ) -> None:
        if start_method not in POOL_START_METHODS:
            raise ValueError(
                f"start_method must be one of {POOL_START_METHODS}, "
                f"got {start_method!r}"
            )
        self.reply_timeout = float(reply_timeout)
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list[_Worker] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, target, args: tuple, name: str) -> _Worker:
        """Launch one worker process plus its reply pump thread."""
        requests = self._ctx.Queue()
        replies = self._ctx.Queue()
        process = self._ctx.Process(
            target=target,
            args=(*args, requests, replies),
            name=name,
            daemon=True,
        )
        process.start()
        worker = _Worker(process=process, requests=requests, replies=replies)
        worker.pump = threading.Thread(
            target=_pump_replies,
            args=(replies, worker.inbox),
            name=f"{name}-pump",
            daemon=True,
        )
        worker.pump.start()
        return worker

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def alive(self) -> bool:
        """Every worker process is still running."""
        return not self._closed and all(w.process.is_alive() for w in self._workers)

    def _stop_worker(self, worker: _Worker) -> None:
        if worker.process.is_alive():
            seq = self._send(worker, "stop", ())
            try:
                self._reply_from(worker, len(self._workers), seq)
            except ShardWorkerError:
                pass  # dying while stopping is not worth surfacing
            worker.process.join(timeout=10.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
        # Release the pump: it is blocked in a cross-process read that
        # closing the queue does not interrupt, so route a sentinel
        # through the queue itself.  If a worker died mid-write the
        # sentinel may arrive as a torn frame — the pump treats decode
        # errors as exit, and in the worst case (the queue's shared write
        # lock died held) the daemon thread is abandoned after the join
        # timeout rather than blocking teardown.
        try:
            worker.replies.put(_PUMP_STOP)
        except Exception:  # noqa: BLE001 - queue already broken
            pass
        if worker.pump is not None:
            worker.pump.join(timeout=2.0)
        for q in (worker.requests, worker.replies):
            q.close()
            q.cancel_join_thread()

    def close(self) -> None:
        """Stop every worker process and release the queues.

        The pool is unusable afterwards; callers wanting worker-held
        state must extract it *before* closing (the service does).
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            self._stop_worker(worker)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Request/reply plumbing
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ShardWorkerError("worker pool is closed")

    @staticmethod
    def _send(
        worker: _Worker, op: str, args: tuple, trace_ctx: dict | None = None
    ) -> int:
        """Enqueue one sequence-tagged request; returns the tag to await."""
        worker.seq += 1
        worker.requests.put((worker.seq, op, args, trace_ctx))
        return worker.seq

    def _raise_worker_failure(self, index: int, value) -> None:
        """Re-raise a worker-shipped error under its declared kind."""
        kind, text = (
            value if isinstance(value, tuple) and len(value) == 2 else ("worker", value)
        )
        if kind == "shmem":
            from repro.serve.shmem import ShmemError  # local: avoids cycle

            raise ShmemError(f"shard worker {index} failed:\n{text}")
        raise ShardWorkerError(f"shard worker {index} failed:\n{text}")

    def _reply_from(self, worker: _Worker, index: int, seq: int):
        """Await the reply tagged ``seq``, discarding stale leftovers.

        A reply with a lower tag belongs to an exchange whose collection
        was abandoned (a prior :class:`ShardWorkerError` unwound ``map``
        mid-collection); consuming it as ours would shift every later
        reply off by one, so it is dropped.  The wait runs against the
        pump's in-process inbox, so it is never exposed to a blocking
        cross-process read: a worker that died after the request was
        enqueued surfaces within the poll interval (plus a short grace
        period for a final in-flight reply), and a hung worker surfaces
        at the reply timeout.
        """
        deadline = time.monotonic() + self.reply_timeout
        death_deadline: float | None = None
        while True:
            try:
                reply = worker.inbox.get(timeout=0.05)
            except queue_lib.Empty:
                now = time.monotonic()
                if not worker.process.is_alive():
                    if death_deadline is None:
                        death_deadline = now + self.death_grace
                    elif now > death_deadline:
                        raise ShardWorkerError(
                            f"shard worker {index} died "
                            f"(exit code {worker.process.exitcode})"
                        ) from None
                if now > deadline:
                    raise ShardWorkerError(
                        f"shard worker {index} timed out after "
                        f"{self.reply_timeout:.0f}s"
                    ) from None
                continue
            got_seq, status, value = reply[0], reply[1], reply[2]
            # Stale replies may predate the span slot; tolerate 3-tuples.
            spans = reply[3] if len(reply) > 3 else None
            if got_seq != seq:
                continue  # stale reply from an abandoned exchange
            if spans:
                trace = current_trace()
                if trace is not None:
                    trace.extend(spans)
            if status == "ok":
                return value
            self._raise_worker_failure(index, value)

    def call(self, index: int, op: str, *args, trace_ctx: dict | None = None):
        """One request to one worker; blocks for the reply."""
        self._require_open()
        worker = self._workers[index]
        return self._reply_from(worker, index, self._send(worker, op, args, trace_ctx))

    def map(self, op: str, *args, trace_ctx: dict | None = None) -> list:
        """Send the same request to every worker, collect in shard order.

        This is the fan-out primitive: all workers compute concurrently;
        only the collection is sequential.  ``trace_ctx`` (from
        :func:`repro.obs.trace.trace_context`) rides along to every
        worker; the spans each one records come back on its reply and are
        grafted into the caller's active trace.
        """
        self._require_open()
        seqs = [self._send(worker, op, args, trace_ctx) for worker in self._workers]
        return [
            self._reply_from(worker, index, seq)
            for (index, worker), seq in zip(enumerate(self._workers), seqs)
        ]


class ShardWorkerPool(_WorkerPoolBase):
    """One spawn-safe OS process per shard, request/reply over queues.

    Args:
        shards: the :class:`~repro.serve.shard.RecommenderShard` objects to
            host; worker ``i`` owns ``shards[i]`` (shard order is the reply
            order of :meth:`map`, so merging stays deterministic).
        reply_timeout: seconds to wait for one reply before declaring the
            worker hung (liveness is polled, so a *dead* worker fails fast
            regardless of this value).

    The constructor spawns every worker immediately; construction returns
    once the processes are launched (workers finish unpickling their shard
    lazily — the first reply waits for it).
    """

    def __init__(self, shards: Sequence, reply_timeout: float = 300.0) -> None:
        if not shards:
            raise ValueError("ShardWorkerPool needs at least one shard")
        super().__init__(reply_timeout=reply_timeout, start_method="spawn")
        for shard in shards:
            self._workers.append(self._spawn(shard))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, shard) -> _Worker:
        blob = pickle.dumps(shard, protocol=pickle.HIGHEST_PROTOCOL)
        return self._spawn_worker(
            _shard_worker_main, (blob,), name=f"repro-shard-{shard.shard_id}"
        )

    def restart(self, index: int) -> None:
        """Collect worker ``index``'s live shard, stop it, respawn fresh.

        The respawned worker starts from the exact pickled state of the old
        one, so serving continues bit-compatibly mid-stream.
        """
        shard = self.collect(index)
        self._stop_worker(self._workers[index])
        self._workers[index] = self._spawn(shard)

    def restart_all(self) -> None:
        """Rolling restart of every worker (collect → stop → respawn)."""
        for index in range(len(self._workers)):
            self.restart(index)

    # ------------------------------------------------------------------
    # State extraction
    # ------------------------------------------------------------------
    def collect(self, index: int):
        """The live shard object of worker ``index`` (pickle round-trip)."""
        return pickle.loads(self.call(index, "collect"))

    def collect_all(self) -> list:
        """Every worker's live shard, in shard order (workers pickle
        concurrently; the parent unpickles as replies arrive).

        A worker dying mid-collection surfaces as
        :class:`ShardWorkerError` within the liveness poll interval — the
        parent's wait runs against the pump inbox, so even a reply
        truncated mid-write cannot block it (the historical deadlock this
        path regression-tests against).
        """
        return [pickle.loads(blob) for blob in self.map("collect")]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("alive" if self.alive else "degraded")
        return f"ShardWorkerPool(workers={self.n_workers}, {state})"
