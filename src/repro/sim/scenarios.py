"""Seeded adversarial stream scenarios for differential conformance testing.

A :class:`Scenario` is a trained universe plus a *delivered* serving stream:
a time-ordered (or deliberately disordered) list of :class:`StreamEvent`
item uploads and user interactions.  :class:`ScenarioGenerator` composes
scenarios on top of :func:`repro.datasets.synthpop.synthesize_dataset`:
the base dataset is resampled into a realistic synthetic stream, the first
``train_fraction`` of the interactions becomes the training slice, and the
remainder — plus the items uploaded in that span — is perturbed into one
of the catalog's adversarial shapes:

==========================  ====================================================
``baseline``                unperturbed synthpop resample (control)
``bursty_uploads``          uploads clumped into large same-instant bursts
``cold_start_users``        a slice of interactions re-assigned to brand-new
                            user ids that never appeared in training
``cold_start_producers``    brand-new producers upload items mid-stream and
                            users start interacting with them
``abrupt_drift``            at mid-stream every user's browsing jumps to a
                            rotated category block
``gradual_drift``           the same rotation applied with linearly growing
                            probability over the stream
``skewed_producers``        most interactions re-pointed at the single
                            hottest producer's items (popularity hot spot)
``duplicate_out_of_order``  interactions duplicated, uploads redelivered
                            (at-least-once), delivery locally shuffled
                            out of timestamp order
``maintenance_storm``       interactions re-grouped into bursts sized to
                            straddle the Algorithm-2 maintenance cadence
``mutated_retry``           at-least-once redelivery where retries may
                            arrive under a *fresh item id* with a
                            one-entity jitter of the declared set (the
                            near-duplicate surface the dedup stage
                            collapses), shuffled out of order
``cross_producer_repost``   uploads reposted under another existing
                            producer id (fresh item id, identical
                            content), plus some exact redelivery
==========================  ====================================================

Every scenario is deterministic in ``(seed, name)``: generation draws from
``numpy.random.default_rng([seed, scenario_index])``, so regenerating any
single scenario never depends on which others were generated first.

The :class:`~repro.sim.conformance.ConformanceRunner` replays these events
through every serving path and checks the paths against the naive oracle;
see :mod:`repro.sim.conformance` and docs/TESTING.md.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.datasets.synthpop import synthesize_dataset
from repro.datasets.ytube import YTubeConfig, generate_ytube

#: Scenario catalog, in the order that fixes each scenario's seed stream.
#: Append new scenarios at the end — inserting in the middle would shift
#: every later scenario's derived seed and change their generated streams.
SCENARIOS: tuple[str, ...] = (
    "baseline",
    "bursty_uploads",
    "cold_start_users",
    "cold_start_producers",
    "abrupt_drift",
    "gradual_drift",
    "skewed_producers",
    "duplicate_out_of_order",
    "maintenance_storm",
    "mutated_retry",
    "cross_producer_repost",
)


@dataclass(frozen=True)
class StreamEvent:
    """One delivered serving-stream event.

    Attributes:
        timestamp: the event's nominal time.  Delivery order is the event
            *list* order — the two disagree on purpose in the
            out-of-order scenario.
        kind: ``"upload"`` (a :class:`SocialItem` payload) or
            ``"interact"`` (an :class:`Interaction` payload).
        payload: the item or interaction delivered.
    """

    timestamp: float
    kind: str
    payload: SocialItem | Interaction

    def __post_init__(self) -> None:
        if self.kind not in ("upload", "interact"):
            raise ValueError(f"kind must be 'upload' or 'interact', got {self.kind!r}")


@dataclass
class Scenario:
    """A training universe plus an adversarial serving stream.

    Attributes:
        name: catalog name (one of :data:`SCENARIOS`).
        description: one-line summary of the adversarial shape.
        seed: the generator seed the scenario was derived from.
        dataset: the synthesized universe the recommender trains on; novel
            ids injected by the perturbation (cold-start users/producers,
            mid-stream items) are deliberately *not* part of it.
        train_interactions: the training slice (feed to ``fit``).
        events: the delivered serving stream, in delivery order.
        extra_items: mid-stream items that exist only in the serving
            stream (cold-start producer uploads), keyed by item id.
        maintenance_interval: Algorithm-2 cadence the conformance runner
            should apply while replaying this scenario.
    """

    name: str
    description: str
    seed: int
    dataset: Dataset
    train_interactions: list[Interaction]
    events: list[StreamEvent]
    extra_items: dict[int, SocialItem] = field(default_factory=dict)
    maintenance_interval: int = 25
    _item_index: dict[int, SocialItem] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def item_payload(self, interaction: Interaction) -> SocialItem | None:
        """The :class:`SocialItem` an interaction refers to (novel items
        included) — what ``update(interaction, item)`` expects."""
        if self._item_index is None:
            index = {it.item_id: it for it in self.dataset.items}
            index.update(self.extra_items)
            self._item_index = index
        return self._item_index.get(interaction.item_id)

    def uploads(self) -> list[SocialItem]:
        return [e.payload for e in self.events if e.kind == "upload"]

    def interactions(self) -> list[Interaction]:
        return [e.payload for e in self.events if e.kind == "interact"]

    # ------------------------------------------------------------------
    # Summary (reports, tests)
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Event counts plus how far the stream strays from the universe."""
        known_users = set(self.dataset.consumer_ids)
        known_items = {it.item_id for it in self.dataset.items}
        known_producers = set(self.dataset.producer_ids)
        inters = self.interactions()
        ups = self.uploads()
        return {
            "name": self.name,
            "n_events": len(self.events),
            "n_uploads": len(ups),
            "n_interactions": len(inters),
            "n_new_users": len({i.user_id for i in inters} - known_users),
            "n_new_items": len({it.item_id for it in ups} - known_items),
            "n_new_producers": len(
                {it.producer for it in ups} - known_producers
            ),
            "maintenance_interval": self.maintenance_interval,
        }


def _remap(interaction: Interaction, item: SocialItem) -> Interaction:
    """``interaction`` re-pointed at ``item`` (denormalized fields follow)."""
    return Interaction(
        user_id=interaction.user_id,
        item_id=item.item_id,
        category=item.category,
        producer=item.producer,
        timestamp=interaction.timestamp,
    )


class _VisibleItems:
    """Items of one dataset, queryable by category and upload cutoff."""

    def __init__(self, items: Iterable[SocialItem]) -> None:
        self.by_category: dict[int, list[SocialItem]] = {}
        for item in sorted(items, key=lambda it: (it.timestamp, it.item_id)):
            self.by_category.setdefault(item.category, []).append(item)
        self._times = {
            c: [it.timestamp for it in pool] for c, pool in self.by_category.items()
        }

    def latest(self, category: int, t: float, depth: int = 5) -> list[SocialItem]:
        """Up to ``depth`` most recent items of ``category`` uploaded <= t
        (falls back to the category's earliest items before any upload)."""
        pool = self.by_category.get(category)
        if not pool:
            return []
        cut = bisect_right(self._times[category], t)
        return pool[max(0, cut - depth) : cut] if cut else pool[:1]


class ScenarioGenerator:
    """Composes the scenario catalog from one seeded synthpop resample.

    Args:
        base: source dataset the synthpop resample clones; defaults to the
            small YTube generator at this seed.
        seed: master seed; each scenario derives its own generator from
            ``(seed, scenario_index)``.
        max_events: serving-stream length cap, enforced both before and
            after perturbation — scenarios that inject or duplicate
            events still deliver at most this many.
        train_fraction: share of the resampled interactions that becomes
            the training slice.
    """

    def __init__(
        self,
        base: Dataset | None = None,
        seed: int = 0,
        max_events: int = 600,
        train_fraction: float = 0.5,
    ) -> None:
        if not (0.0 < train_fraction < 1.0):
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        if max_events < 10:
            raise ValueError(f"max_events must be >= 10, got {max_events}")
        self.base = base if base is not None else generate_ytube(YTubeConfig.small(seed))
        self.seed = int(seed)
        self.max_events = int(max_events)
        self.train_fraction = float(train_fraction)

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    @staticmethod
    def names() -> tuple[str, ...]:
        return SCENARIOS

    def generate_all(self, names: Sequence[str] | None = None) -> list[Scenario]:
        return [self.generate(name) for name in (names or SCENARIOS)]

    def generate(self, name: str) -> Scenario:
        """Build one scenario, deterministic in ``(self.seed, name)``."""
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
            )
        rng = np.random.default_rng([self.seed, SCENARIOS.index(name)])
        syn = synthesize_dataset(self.base, name=f"Sim{self.base.name}", seed=rng)
        ordered = sorted(
            syn.interactions, key=lambda i: (i.timestamp, i.item_id, i.user_id)
        )
        cut = max(2, int(len(ordered) * self.train_fraction))
        train = ordered[:cut]
        cutoff_time = train[-1].timestamp
        serve_inters = ordered[cut:]
        serve_items = [it for it in syn.items if it.timestamp > cutoff_time]
        events = self._merge(serve_items, serve_inters)[: self.max_events]

        perturb = getattr(self, f"_perturb_{name}")
        events, extra_items, description, interval = perturb(rng, events, syn)
        # Cap again after perturbation: scenarios that add events
        # (duplicates, injected uploads) must still honour the configured
        # stream length, so replay cost tracks max_events for every shape.
        events = events[: self.max_events]
        return Scenario(
            name=name,
            description=description,
            seed=self.seed,
            dataset=syn,
            train_interactions=train,
            events=events,
            extra_items=extra_items,
            maintenance_interval=interval,
        )

    @staticmethod
    def _merge(
        items: Sequence[SocialItem], interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Time-ordered merge; an upload sorts before interactions at the
        same instant (nothing can be browsed before it exists)."""
        events = [StreamEvent(it.timestamp, "upload", it) for it in items]
        events += [StreamEvent(i.timestamp, "interact", i) for i in interactions]
        events.sort(key=lambda e: (e.timestamp, 0 if e.kind == "upload" else 1))
        return events

    # ------------------------------------------------------------------
    # Perturbations — each returns (events, extra_items, description,
    # maintenance_interval)
    # ------------------------------------------------------------------
    def _perturb_baseline(self, rng, events, syn):
        return events, {}, "unperturbed synthpop resample (control)", 25

    def _perturb_bursty_uploads(self, rng, events, syn):
        """Clump uploads into bursts delivered back-to-back at one instant."""
        burst_size = 12
        uploads = [e for e in events if e.kind == "upload"]
        bursts: dict[int, list[StreamEvent]] = {}  # anchor position -> burst
        anchor_of: dict[int, int] = {}  # id(event) -> anchor position
        positions = [i for i, e in enumerate(events) if e.kind == "upload"]
        for start in range(0, len(uploads), burst_size):
            group = uploads[start : start + burst_size]
            anchor = positions[start]
            bursts[anchor] = group
            for member in group:
                anchor_of[id(member)] = anchor
        out: list[StreamEvent] = []
        for position, event in enumerate(events):
            if event.kind != "upload":
                out.append(event)
                continue
            if anchor_of[id(event)] != position:
                continue  # delivered earlier, with its burst
            anchor_time = event.timestamp
            out.extend(
                StreamEvent(anchor_time, "upload", member.payload)
                for member in bursts[position]
            )
        return out, {}, f"uploads delivered in bursts of {burst_size}", 25

    def _perturb_cold_start_users(self, rng, events, syn):
        """Re-assign a third of the interactions to brand-new user ids."""
        known = set(syn.consumer_ids) | set(syn.producer_ids)
        first_new = max(known) + 1
        n_new = 12
        new_ids = list(range(first_new, first_new + n_new))
        out = []
        for event in events:
            if event.kind == "interact" and rng.random() < 0.33:
                inter = event.payload
                reassigned = Interaction(
                    user_id=int(rng.choice(new_ids)),
                    item_id=inter.item_id,
                    category=inter.category,
                    producer=inter.producer,
                    timestamp=inter.timestamp,
                )
                event = StreamEvent(event.timestamp, "interact", reassigned)
            out.append(event)
        return (
            out,
            {},
            f"{n_new} unseen users absorb a third of the interactions",
            25,
        )

    def _perturb_cold_start_producers(self, rng, events, syn):
        """Inject brand-new producers uploading mid-stream, then route a
        share of the later interactions onto their items."""
        n_producers, items_each = 3, 5
        first_pid = max(set(syn.producer_ids) | set(syn.consumer_ids)) + 1
        first_item = max(it.item_id for it in syn.items) + 1
        templates = [e.payload for e in events if e.kind == "upload"]
        if not templates:
            templates = syn.items[-items_each:]
        span = [e.timestamp for e in events] or [0.0, 1.0]
        lo, hi = min(span), max(span)
        extra: dict[int, SocialItem] = {}
        novel_events: list[StreamEvent] = []
        next_item = first_item
        for p in range(n_producers):
            pid = first_pid + p
            for j in range(items_each):
                template = templates[int(rng.integers(len(templates)))]
                t = float(lo + (hi - lo) * (0.1 + 0.8 * rng.random()))
                item = SocialItem(
                    item_id=next_item,
                    category=template.category,
                    producer=pid,
                    entities=template.entities,
                    text=template.text,
                    timestamp=t,
                )
                extra[next_item] = item
                novel_events.append(StreamEvent(t, "upload", item))
                next_item += 1
        merged = sorted(
            list(events) + novel_events,
            key=lambda e: (e.timestamp, 0 if e.kind == "upload" else 1),
        )
        novel = _VisibleItems(extra.values())
        out = []
        for event in merged:
            if event.kind == "interact" and rng.random() < 0.25:
                inter = event.payload
                pool = [
                    it
                    for items in novel.by_category.values()
                    for it in items
                    if it.timestamp <= inter.timestamp
                ]
                if pool:
                    target = pool[int(rng.integers(len(pool)))]
                    event = StreamEvent(
                        event.timestamp, "interact", _remap(inter, target)
                    )
            out.append(event)
        return (
            out,
            extra,
            f"{n_producers} unseen producers upload {items_each} items each mid-stream",
            25,
        )

    def _drift(self, rng, events, syn, probability_at):
        """Shared drift machinery: remap an interaction's target into the
        rotated category block with a position-dependent probability."""
        shift = max(1, syn.n_categories // 2)
        visible = _VisibleItems(syn.items)
        out = []
        n = max(len(events), 1)
        for position, event in enumerate(events):
            if event.kind == "interact" and rng.random() < probability_at(position / n):
                inter = event.payload
                target_category = (inter.category + shift) % syn.n_categories
                pool = visible.latest(target_category, inter.timestamp)
                if pool:
                    target = pool[int(rng.integers(len(pool)))]
                    event = StreamEvent(
                        event.timestamp, "interact", _remap(inter, target)
                    )
            out.append(event)
        return out

    def _perturb_abrupt_drift(self, rng, events, syn):
        out = self._drift(rng, events, syn, lambda x: 1.0 if x >= 0.5 else 0.0)
        return (
            out,
            {},
            "every user's browsing jumps to a rotated category block mid-stream",
            25,
        )

    def _perturb_gradual_drift(self, rng, events, syn):
        out = self._drift(rng, events, syn, lambda x: x)
        return (
            out,
            {},
            "browsing rotates categories with linearly growing probability",
            25,
        )

    def _perturb_skewed_producers(self, rng, events, syn):
        """Concentrate interactions on the hottest producer's items."""
        counts = Counter(it.producer for it in syn.items)
        hot = max(sorted(counts), key=lambda pid: counts[pid])
        visible = _VisibleItems(it for it in syn.items if it.producer == hot)
        out = []
        for event in events:
            if event.kind == "interact" and rng.random() < 0.7:
                inter = event.payload
                pool = [
                    it
                    for category in visible.by_category
                    for it in visible.latest(category, inter.timestamp, depth=3)
                ]
                if pool:
                    target = pool[int(rng.integers(len(pool)))]
                    event = StreamEvent(
                        event.timestamp, "interact", _remap(inter, target)
                    )
            out.append(event)
        return out, {}, f"70% of interactions re-pointed at producer {hot}", 25

    def _perturb_duplicate_out_of_order(self, rng, events, syn):
        """Duplicate a quarter of the interactions, redeliver uploads
        geometrically (at-least-once delivery under retry pressure: each
        attempt independently retries with probability 0.5), then locally
        shuffle so events arrive out of timestamp order.

        Redelivered uploads are full stream events: every serving path
        observes *and serves* them again, exactly as an at-least-once
        transport would hand them over — the duplicate-heavy serving
        surface the ``*-cached`` plans are benchmarked on
        (``benchmarks/bench_result_cache.py``).
        """
        duplicated: list[StreamEvent] = []
        for event in events:
            duplicated.append(event)
            if event.kind == "interact" and rng.random() < 0.25:
                duplicated.append(
                    StreamEvent(event.timestamp, "interact", event.payload)
                )
            elif event.kind == "upload":
                while rng.random() < 0.50:  # geometric retry chain
                    duplicated.append(
                        StreamEvent(event.timestamp, "upload", event.payload)
                    )
        block = 8
        out: list[StreamEvent] = []
        for start in range(0, len(duplicated), block):
            chunk = duplicated[start : start + block]
            order = rng.permutation(len(chunk))
            out.extend(chunk[i] for i in order)
        return (
            out,
            {},
            "25% duplicated interactions + geometric upload redelivery "
            "(p=0.5), delivery shuffled in blocks of 8",
            25,
        )

    def _perturb_maintenance_storm(self, rng, events, syn):
        """Regroup interactions into bursts sized to straddle the
        Algorithm-2 cadence, so flushes fire both inside update bursts and
        lazily at query time."""
        interval = 5
        sizes = (interval - 1, interval, interval + 1, 2 * interval - 1, 1, 2 * interval)
        uploads = [e for e in events if e.kind == "upload"]
        inters = [e for e in events if e.kind == "interact"]
        out: list[StreamEvent] = []
        burst_index = 0
        u = i = 0
        while u < len(uploads) or i < len(inters):
            if u < len(uploads):
                out.append(uploads[u])
                u += 1
            if i < len(inters):
                size = sizes[burst_index % len(sizes)]
                out.extend(inters[i : i + size])
                i += size
                burst_index += 1
        return (
            out,
            {},
            f"interaction bursts straddling a maintenance interval of {interval}",
            interval,
        )

    @staticmethod
    def _jitter_entities(rng, entities, universe) -> tuple[int, ...]:
        """One add/drop/replace mutation of a declared entity tuple,
        drawing additions from the dataset's entity universe.  Add/drop
        keeps the Jaccard against the original at n/(n+1) or (n-1)/n —
        above the default collapse threshold for typical set sizes —
        while replace lands near 0.5, probing both sides of τ."""
        current = list(dict.fromkeys(int(e) for e in entities))
        outside = [e for e in universe if e not in set(current)]
        ops = []
        if len(current) >= 2:
            ops.append("drop")
        if outside:
            ops.append("add")
        if current and outside:
            ops.append("replace")
        if not ops:
            return tuple(current)
        op = ops[int(rng.integers(len(ops)))]
        if op == "drop":
            del current[int(rng.integers(len(current)))]
        elif op == "add":
            current.append(int(outside[int(rng.integers(len(outside)))]))
        else:
            current[int(rng.integers(len(current)))] = int(
                outside[int(rng.integers(len(outside)))]
            )
        return tuple(current)

    def _perturb_mutated_retry(self, rng, events, syn):
        """At-least-once redelivery under *mutated* retries: each upload's
        geometric retry chain (p=0.5) redelivers either the exact payload
        or a near-duplicate under a **fresh item id** whose entity set is
        jittered by one add/drop/replace, then delivery is locally
        shuffled out of timestamp order.

        This is the surface the dedup stage exists for: the exact result
        cache collapses only the same-id redeliveries, exact dedup also
        collapses fresh ids whose resolved scorer inputs coincide, and
        approximate dedup collapses the jittered near-duplicates too
        (``benchmarks/bench_dedup.py`` measures the recall that trade
        costs).  Mutated retries get fresh ids on purpose — reusing the
        id with different entities would collide with the scorer's
        frozen-per-id query cache and make the stream ill-defined.
        """
        universe = sorted({int(e) for it in syn.items for e in it.entities})
        next_item = max(it.item_id for it in syn.items) + 1
        extra: dict[int, SocialItem] = {}
        duplicated: list[StreamEvent] = []
        for event in events:
            duplicated.append(event)
            if event.kind != "upload":
                continue
            item = event.payload
            while rng.random() < 0.50:  # geometric retry chain
                if rng.random() < 0.5:  # exact redelivery
                    duplicated.append(StreamEvent(event.timestamp, "upload", item))
                    continue
                mutated = SocialItem(
                    item_id=next_item,
                    category=item.category,
                    producer=item.producer,
                    entities=self._jitter_entities(rng, item.entities, universe),
                    text=item.text,
                    timestamp=item.timestamp,
                )
                extra[next_item] = mutated
                next_item += 1
                duplicated.append(StreamEvent(event.timestamp, "upload", mutated))
        block = 8
        out: list[StreamEvent] = []
        for start in range(0, len(duplicated), block):
            chunk = duplicated[start : start + block]
            order = rng.permutation(len(chunk))
            out.extend(chunk[i] for i in order)
        return (
            out,
            extra,
            "geometric upload retries (p=0.5) where half the redeliveries "
            "carry a fresh id and a one-entity jitter, shuffled in blocks of 8",
            25,
        )

    def _perturb_cross_producer_repost(self, rng, events, syn):
        """Repost a share of the uploads under another existing producer
        (fresh item id, identical category/entities/text), with a little
        exact redelivery on top.

        A repost is the same *content* from a different author — the
        exact dedup key (producer included) correctly refuses to collapse
        it, while approximate dedup (producer-free by design) does; the
        two modes' treatment of this stream is what separates their
        collapse rates in ``bench_dedup``.
        """
        producers = sorted(set(syn.producer_ids))
        next_item = max(it.item_id for it in syn.items) + 1
        extra: dict[int, SocialItem] = {}
        out: list[StreamEvent] = []
        for event in events:
            out.append(event)
            if event.kind != "upload":
                continue
            item = event.payload
            if rng.random() < 0.15:  # at-least-once flavor
                out.append(StreamEvent(event.timestamp, "upload", item))
            if len(producers) > 1 and rng.random() < 0.35:
                pid = item.producer
                while pid == item.producer:
                    pid = int(producers[int(rng.integers(len(producers)))])
                repost = SocialItem(
                    item_id=next_item,
                    category=item.category,
                    producer=pid,
                    entities=item.entities,
                    text=item.text,
                    timestamp=item.timestamp,
                )
                extra[next_item] = repost
                next_item += 1
                out.append(StreamEvent(event.timestamp, "upload", repost))
        return (
            out,
            extra,
            "35% of uploads reposted under another existing producer "
            "(fresh ids, identical content) + 15% exact redelivery",
            25,
        )
