"""Differential conformance: every registered plan vs the naive oracle.

:class:`ConformanceRunner` replays one :class:`~repro.sim.scenarios.Scenario`
through every execution plan the :data:`~repro.exec.plan.PLAN_REGISTRY`
marks ``conformance=True``, all driven by byte-identical event sequences
from byte-identical trained state (one ``fit``, one ``deepcopy`` per
path).  **The catalog is the registry** — registering a plan is what puts
it under differential test; there is no second list to keep in sync
(``python -m repro.eval conformance --list-paths`` prints it).

Each plan's construction, serving mode and judge derive from its axes:

- *placement* ``local`` builds a plain ``SsRecRecommender`` replica
  (``cppse-probe`` plans attach an index); ``sharded`` builds a
  ``ShardedRecommender`` with the plan's strategy and backend, and is
  served per item *and* per batch each window;
- *batching* picks the served entry point for local plans (per-item
  ``recommend`` vs micro-batched ``recommend_batch``);
- *cached* plans serve through their plan-level result cache
  (:mod:`repro.exec.cache`) and must reproduce their uncached anchor
  **bit for bit** — a cache hit that moves a single bit is a divergence;
- the *judge* is the plan's ``anchor``: anchored plans must match the
  anchor's per-item results bitwise; anchor plans (``anchor=None``) are
  judged against the independent naive oracle within the 1e-9 tie
  discipline (the oracle's scalar ``math.log`` and the matcher's SIMD
  ``np.log`` may disagree by one ULP — last-bit noise, never ranking
  changes), restricted to the probed candidate set for ``cppse-probe``
  plans (no false dismissals, Lemmas 1-2; for sharded index plans the
  union of the shards' probed sets, valid even for the documented
  new-user placement boundary).

- *transport* ``wire`` serves the replica through a live socket server
  (:class:`~repro.serve.server.RecommenderServer` on a
  :class:`~repro.serve.server.ServerThread`, driven by the blocking
  :class:`~repro.serve.client.RecommenderClient`): every observe, update
  and recommend crosses the framed JSON protocol, and micro-batch wire
  plans serve each window as *pipelined* per-item requests so the
  server's dynamic coalescer — not the client — forms the batches.  Wire
  plans are always anchored, so a single bit lost to serialization,
  coalescing or request reordering is a divergence.

Three replay events stay name-keyed because they test specific
machinery: the ``sharded-index-block`` path takes one mid-stream
snapshot save/reload, ``sharded-scan-process`` one rolling worker
restart, and ``served-scan-batch`` one *server-side* snapshot
save+reload (the owner swap behind a live connection).

The runner is the regression backstop for serving-path optimizations:
any future fast path must keep every one of these comparisons at zero
divergences (wired into CI; see docs/TESTING.md).
"""

from __future__ import annotations

import copy
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import SocialItem
from repro.exec import PLAN_REGISTRY, ExecPlan
from repro.serve.client import RecommenderClient
from repro.serve.server import RecommenderServer, ServerThread
from repro.serve.service import ShardedRecommender
from repro.sim.oracle import OracleMatcher, matches_exactly, matches_within_ties
from repro.sim.scenarios import Scenario

#: Import-time snapshot of the registry's conformance catalog, in
#: registration order (anchors before the plans judged against them) —
#: kept as a public constant for display and tests.  The runner itself
#: enumerates and validates against the *live* registry at call time, so
#: plans registered after this module was imported are still replayed.
CONFORMANCE_PATHS: tuple[str, ...] = PLAN_REGISTRY.conformance_paths()


@dataclass
class Divergence:
    """First observed mismatch of one path (kept for diagnosis)."""

    path: str
    window: int
    item_id: int
    expected: list[tuple[int, float]]
    got: list[tuple[int, float]]

    def to_text(self) -> str:
        return (
            f"{self.path} diverged at window {self.window}, item {self.item_id}: "
            f"expected {self.expected[:3]}..., got {self.got[:3]}..."
        )


@dataclass
class PathReport:
    """Replay outcome of one serving path."""

    path: str
    n_windows: int = 0
    n_queries: int = 0
    divergences: int = 0
    serve_seconds: float = 0.0
    snapshot_reloads: int = 0
    worker_restarts: int = 0
    first_divergence: Divergence | None = None

    @property
    def items_per_sec(self) -> float:
        return self.n_queries / self.serve_seconds if self.serve_seconds else 0.0

    def record_divergence(self, divergence: Divergence) -> None:
        self.divergences += 1
        if self.first_divergence is None:
            self.first_divergence = divergence


@dataclass
class ConformanceReport:
    """All-path outcome of one scenario replay."""

    scenario: str
    description: str
    seed: int
    k: int
    window_size: int
    n_events: int
    n_uploads: int
    n_interactions: int
    paths: dict[str, PathReport] = field(default_factory=dict)

    @property
    def total_divergences(self) -> int:
        return sum(report.divergences for report in self.paths.values())

    @property
    def conformant(self) -> bool:
        return self.total_divergences == 0

    def to_text(self) -> str:
        lines = [
            f"Scenario {self.scenario!r} (seed {self.seed}): {self.description}",
            f"  events={self.n_events} uploads={self.n_uploads} "
            f"interactions={self.n_interactions} k={self.k} window={self.window_size}",
        ]
        for name in self.paths:
            report = self.paths[name]
            reload_note = (
                f" reloads={report.snapshot_reloads}" if report.snapshot_reloads else ""
            )
            if report.worker_restarts:
                reload_note += f" restarts={report.worker_restarts}"
            lines.append(
                f"  {name:<24} windows={report.n_windows:<3} "
                f"queries={report.n_queries:<4} divergences={report.divergences:<3} "
                f"items/sec={report.items_per_sec:8.1f}{reload_note}"
            )
            if report.first_divergence is not None:
                lines.append(f"    first: {report.first_divergence.to_text()}")
        verdict = "EXACT" if self.conformant else f"BROKEN ({self.total_divergences})"
        lines.append(f"  conformance: {verdict}")
        return "\n".join(lines)


class _WireReplica:
    """A local replica hoisted behind a live socket server.

    The wire paths' recommender: a :class:`RecommenderServer` owns the
    replica on a background event loop and the runner talks to it only
    through the blocking client — the same framed bytes a remote caller
    would send.  ``recommend_window`` pipelines a window's per-item
    requests so the server's dynamic coalescer forms the micro-batches.
    """

    def __init__(self, recommender, coalesce: bool) -> None:
        self._thread = ServerThread(RecommenderServer(recommender, coalesce=coalesce))
        host, port = self._thread.start()
        self.client = RecommenderClient(host, port)

    @property
    def owner(self):
        """The server-side recommender (tracks snapshot-reload swaps)."""
        return self._thread.server.recommender

    @property
    def index(self):
        return self.owner.index

    def observe_item(self, item: SocialItem) -> None:
        self.client.observe(item)

    def update(self, interaction, payload_item) -> None:
        self.client.update(interaction, payload_item)

    def recommend(self, item: SocialItem, k: int):
        return self.client.recommend(item, k)

    def recommend_batch(self, items, k: int):
        return self.client.recommend_batch(items, k)

    def recommend_window(self, items, k: int):
        return self.client.recommend_window(items, k)

    def snapshot_reload(self, path) -> None:
        """Server-side save + owner swap, behind the live connection."""
        self.client.snapshot(path, reload=True)

    def close(self) -> None:
        self.client.close()
        self._thread.stop()


class _PathState:
    """One plan's live replica plus its accumulating report."""

    def __init__(self, name: str, plan: ExecPlan, recommender) -> None:
        self.name = name
        self.plan = plan
        self.recommender = recommender  # SsRecRecommender | ShardedRecommender
        self.report = PathReport(path=name)

    @property
    def is_sharded(self) -> bool:
        return self.plan.is_sharded

    def observe(self, item: SocialItem) -> None:
        self.recommender.observe_item(item)

    def update(self, interaction, payload_item) -> None:
        self.recommender.update(interaction, payload_item)

    def probed_users(self, item: SocialItem) -> set[int]:
        """The candidate set this path's index structures admit for ``item``
        (call after serving, so pending maintenance has been flushed)."""
        if self.is_sharded:
            probed: set[int] = set()
            for shard in self.recommender.shards:
                if shard.index is not None:
                    probed |= shard.index.users_in_probed_trees(item)
            return probed
        assert self.recommender.index is not None
        return self.recommender.index.users_in_probed_trees(item)


class ConformanceRunner:
    """Replays scenarios through every serving path, counting divergences.

    Args:
        k: recommendation depth per query.
        window_size: uploads per recommendation window (the micro-batch
            the batched paths serve; per-item paths serve the same items
            one by one).
        n_shards: shard count of the sharded paths.
        workers: fan-out threads of the sharded paths (0 = sequential; the
            merge is deterministic either way).
        fit_seed: model-init seed of the one shared ``fit``.
        config: base configuration; the scenario's ``maintenance_interval``
            is applied on top.
        paths: subset of :data:`CONFORMANCE_PATHS` to replay.
        snapshot_window: before serving this window index, the sharded
            index path is saved to disk and reloaded, and the coalescing
            wire path takes a server-side snapshot + owner swap — both
            warm starts must continue bit-compatibly mid-stream.
        restart_window: before serving this window index, the process
            path's shard workers go through a rolling restart (collect →
            stop → respawn) — the respawned workers must continue
            bit-compatibly mid-stream.
    """

    def __init__(
        self,
        k: int = 10,
        window_size: int = 8,
        n_shards: int = 3,
        workers: int = 0,
        fit_seed: int = 1,
        config: SsRecConfig | None = None,
        paths: tuple[str, ...] | None = None,
        snapshot_window: int = 2,
        restart_window: int = 2,
    ) -> None:
        # Enumerate and validate against the *live* registry, not the
        # import-time snapshot: a plan registered after repro.sim was
        # imported is replayed (default) and addressable (explicit paths).
        catalog = PLAN_REGISTRY.conformance_paths()
        if paths is None:
            paths = catalog
        unknown = sorted(set(paths) - set(catalog))
        if unknown:
            raise ValueError(f"unknown conformance paths: {', '.join(unknown)}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.k = int(k)
        self.window_size = int(window_size)
        self.n_shards = int(n_shards)
        self.workers = int(workers)
        self.fit_seed = int(fit_seed)
        self.config = config
        self.paths = tuple(name for name in catalog if name in paths)
        self.snapshot_window = int(snapshot_window)
        self.restart_window = int(restart_window)

    # ------------------------------------------------------------------
    # Replica construction (entirely plan-driven)
    # ------------------------------------------------------------------
    def _build_paths(self, template: SsRecRecommender) -> dict[str, _PathState]:
        """One live replica per replayed plan, built from the plan's axes.

        A newly registered plan needs no code here: placement decides
        local vs sharded construction, the candidate source whether an
        index is attached (or shard-local indexes built), ``cached``
        whether the replica serves through its result cache.
        """
        states: dict[str, _PathState] = {}
        for name in self.paths:
            plan = PLAN_REGISTRY.get(name)
            replica = copy.deepcopy(template)
            if plan.is_sharded:
                # A "sequential" placement is passed as the default (None)
                # so the legacy workers>1 thread upgrade keeps applying.
                backend = plan.placement.backend
                recommender = ShardedRecommender.from_trained(
                    replica,
                    n_shards=self.n_shards,
                    strategy=plan.placement.strategy,
                    use_index=plan.uses_index,
                    workers=self.workers,
                    backend=None if backend == "sequential" else backend,
                )
            elif plan.is_wire:
                if plan.uses_index:
                    replica.attach_index()
                # Micro-batch wire plans coalesce on the server; per-item
                # wire plans dispatch each request alone (coalesce off).
                recommender = _WireReplica(
                    replica, coalesce=plan.batching == "micro-batch"
                )
            else:
                if plan.uses_index:
                    replica.attach_index()
                recommender = replica
            if plan.scoring == "native" and not plan.is_wire:
                # The *-native plans: same replica, fused-kernel serving
                # (or its bit-identical vectorized fallback when the
                # compiled kernels are unavailable — the plan is judged
                # either way, which is what keeps the fallback honest).
                recommender.set_scoring("native")
            if plan.cached:
                recommender.enable_result_cache()
            if plan.dedup != "off":
                # The *-dedup plans: exact mode must reproduce the anchor
                # bit for bit (a collapse is provably the same query);
                # replaying approx plans here would just document their
                # divergence — they are gated by bench_dedup's recall
                # instead and stay out of the catalog.
                recommender.set_dedup(plan.dedup)
            states[name] = _PathState(name, plan, recommender)
        return states

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, snapshot_dir=None) -> ConformanceReport:
        """Replay ``scenario`` through every configured path.

        Args:
            snapshot_dir: where the mid-stream snapshot is written; a
                temporary directory is used (and cleaned up) when omitted.
        """
        config = (self.config or SsRecConfig()).with_options(
            maintenance_interval=scenario.maintenance_interval
        )
        template = SsRecRecommender(config=config, use_index=False, seed=self.fit_seed)
        template.fit(scenario.dataset, scenario.train_interactions)

        oracle_rec = copy.deepcopy(template)
        oracle = OracleMatcher(oracle_rec.scorer, oracle_rec.profiles)
        states = self._build_paths(template)
        summary = scenario.summary()
        report = ConformanceReport(
            scenario=scenario.name,
            description=scenario.description,
            seed=scenario.seed,
            k=self.k,
            window_size=self.window_size,
            n_events=summary["n_events"],
            n_uploads=summary["n_uploads"],
            n_interactions=summary["n_interactions"],
            paths={name: states[name].report for name in states},
        )

        try:
            if snapshot_dir is not None:
                self._replay(scenario, oracle_rec, oracle, states, Path(snapshot_dir))
            else:
                with tempfile.TemporaryDirectory(prefix="repro-conformance-") as tmp:
                    self._replay(scenario, oracle_rec, oracle, states, Path(tmp))
        finally:
            # Sharded replicas own worker processes and wire replicas own
            # a live server thread — release both even on a failed replay.
            for state in states.values():
                if state.is_sharded or state.plan.is_wire:
                    state.recommender.close()
        return report

    def _replay(self, scenario, oracle_rec, oracle, states, snapshot_dir) -> None:
        window: list[SocialItem] = []
        window_index = 0
        for event in scenario.events:
            if event.kind == "upload":
                item = event.payload
                oracle_rec.observe_item(item)
                for state in states.values():
                    state.observe(item)
                window.append(item)
                if len(window) >= self.window_size:
                    self._serve_window(
                        window, window_index, oracle, states, snapshot_dir
                    )
                    window = []
                    window_index += 1
            else:
                interaction = event.payload
                payload_item = scenario.item_payload(interaction)
                oracle_rec.update(interaction, payload_item)
                for state in states.values():
                    state.update(interaction, payload_item)
        if window:
            self._serve_window(window, window_index, oracle, states, snapshot_dir)

    # ------------------------------------------------------------------
    # One window: serve every path, judge every result
    # ------------------------------------------------------------------
    def _serve_window(self, window, window_index, oracle, states, snapshot_dir) -> None:
        oracle_scores = {item.item_id: oracle.score_all(item) for item in window}
        anchors: dict[str, list[list[tuple[int, float]]]] = {}

        for name, state in states.items():
            if (
                name == "sharded-index-block"
                and window_index == self.snapshot_window
            ):
                self._snapshot_reload(state, snapshot_dir)
            if (
                name == "sharded-scan-process"
                and window_index == self.restart_window
            ):
                # Rolling worker restart: every shard worker is collected,
                # stopped, and respawned from its own pickled state — the
                # stream continues through the fresh processes.
                state.recommender.restart_workers()
                state.report.worker_restarts += 1
            if (
                name == "served-scan-batch"
                and window_index == self.snapshot_window
            ):
                # Server-side snapshot + owner swap behind the live
                # connection: the warm-started owner must keep serving
                # bit-compatibly with the (never-reloaded) anchor.
                state.recommender.snapshot_reload(snapshot_dir / f"{state.name}-w")
                state.report.snapshot_reloads += 1
            results = self._serve(state, window)
            state.report.n_windows += 1
            state.report.n_queries += len(window) * (2 if state.is_sharded else 1)
            if state.plan.anchor is None and "item" in results:
                # Anchor plans' per-item results are the bitwise reference
                # the plans anchored to them are judged against.
                anchors[name] = results["item"]
            self._judge(
                name, state, window, window_index, results, oracle,
                oracle_scores, anchors,
            )

    def _serve(self, state: _PathState, window) -> dict[str, list]:
        """Serve one window by the plan's axes; sharded plans serve per
        item *and* batched (fan-out and merge must agree either way)."""
        rec = state.recommender
        started = time.perf_counter()
        if state.is_sharded:
            results = {
                "item": [rec.recommend(item, self.k) for item in window],
                "batch": rec.recommend_batch(window, self.k),
            }
        elif state.plan.is_wire:
            if state.plan.batching == "micro-batch":
                # Pipelined per-item requests: the server's dynamic
                # coalescer — not the client — forms the micro-batches.
                results = {"batch": rec.recommend_window(window, self.k)}
            else:
                results = {"item": [rec.recommend(item, self.k) for item in window]}
        elif state.plan.batching == "micro-batch":
            results = {"batch": rec.recommend_batch(window, self.k)}
        else:
            results = {"item": [rec.recommend(item, self.k) for item in window]}
        state.report.serve_seconds += time.perf_counter() - started
        return results

    def _judge(
        self,
        name,
        state,
        window,
        window_index,
        results,
        oracle,
        oracle_scores,
        anchors,
    ) -> None:
        uses_index = state.plan.uses_index
        anchor = anchors.get(state.plan.anchor or "")
        for position, item in enumerate(window):
            if anchor is not None:
                # Family members must not move a single bit vs the
                # family's per-item anchor path — except plans that opt
                # into the 1e-9 tie discipline (the *-native family's
                # documented scalar-vs-SIMD log ULP divergence).
                want = anchor[position]
                predicate = (
                    matches_within_ties
                    if state.plan.anchor_within_ties
                    else matches_exactly
                )
            else:
                # Anchor paths (and paths replayed without their anchor)
                # are judged against the independent naive oracle, over
                # the candidate set their structures admit.
                candidates = state.probed_users(item) if uses_index else None
                want = oracle.rank(oracle_scores[item.item_id], self.k, candidates)
                predicate = matches_within_ties
            for got in (ranked[position] for ranked in results.values()):
                if not predicate(got, want):
                    state.report.record_divergence(
                        Divergence(
                            path=name,
                            window=window_index,
                            item_id=item.item_id,
                            expected=want,
                            got=got,
                        )
                    )

    def _snapshot_reload(self, state: _PathState, snapshot_dir: Path) -> None:
        """Save the live sharded service and continue from the reload."""
        target = snapshot_dir / f"{state.name}-w"
        state.recommender.save(target)
        state.recommender.close()
        state.recommender = ShardedRecommender.load(target, workers=self.workers)
        state.report.snapshot_reloads += 1
