"""Differential conformance: every serving path vs the naive oracle.

:class:`ConformanceRunner` replays one :class:`~repro.sim.scenarios.Scenario`
through every serving path the repo offers, all driven by byte-identical
event sequences from byte-identical trained state (one ``fit``, one
``deepcopy`` per path):

========================  =====================================================
``scan-item``             per-item ``SsRecRecommender.recommend`` (scan mode)
``scan-batch``            micro-batched ``recommend_batch`` (scan mode)
``index-item``            per-item CPPse-index serving (Algorithms 1 + 2)
``index-batch``           micro-batched CPPse-index serving (``knn_batch``)
``sharded-scan-hash``     ``ShardedRecommender``, hash plan, scan shards —
                          served per item *and* per batch each window
``sharded-index-block``   ``ShardedRecommender``, block-aware plan, CPPse
                          shards — served per item and per batch, with one
                          snapshot save/reload mid-stream
``sharded-scan-process``  ``ShardedRecommender``, hash plan, scan shards,
                          **process backend** (one OS worker per shard) —
                          served per item and per batch, with one rolling
                          worker restart mid-stream
========================  =====================================================

Checks per window (see :mod:`repro.sim.oracle` for why two predicates):

- ``scan-item`` must equal the oracle's full-population ranking within
  the tie discipline (the oracle's scalar ``math.log`` and the matcher's
  SIMD ``np.log`` may disagree by one ULP, so anchoring to the
  independent oracle tolerates last-bit noise — never ranking changes);
- ``scan-batch``, ``sharded-scan-hash`` and ``sharded-scan-process`` must
  equal ``scan-item`` **bit for bit** — same arithmetic, so batching,
  fan-out/merge, the pickle trip into worker processes and the mid-stream
  worker restart must not move a single bit;
- ``index-item`` must equal the oracle restricted to its probed candidate
  set (no false dismissals, Lemmas 1-2) within the tie discipline;
- ``index-batch`` must equal ``index-item`` bit for bit;
- ``sharded-index-block`` must equal the oracle restricted to the union
  of its shards' probed sets — valid even for the documented new-user
  placement boundary, where the shard-local blocking may probe a
  different candidate set than the single global index would.

The runner is the regression backstop for serving-path optimizations:
any future fast path must keep every one of these comparisons at zero
divergences (wired into CI; see docs/TESTING.md).
"""

from __future__ import annotations

import copy
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.datasets.schema import SocialItem
from repro.serve.service import ShardedRecommender
from repro.sim.oracle import OracleMatcher, matches_exactly, matches_within_ties
from repro.sim.scenarios import Scenario

#: Every serving path the runner knows, in serve order per window.
#: ``scan-item`` and ``index-item`` come first in their families — they
#: are the bitwise references the other family members are judged against.
CONFORMANCE_PATHS: tuple[str, ...] = (
    "scan-item",
    "scan-batch",
    "index-item",
    "index-batch",
    "sharded-scan-hash",
    "sharded-index-block",
    "sharded-scan-process",
)


@dataclass
class Divergence:
    """First observed mismatch of one path (kept for diagnosis)."""

    path: str
    window: int
    item_id: int
    expected: list[tuple[int, float]]
    got: list[tuple[int, float]]

    def to_text(self) -> str:
        return (
            f"{self.path} diverged at window {self.window}, item {self.item_id}: "
            f"expected {self.expected[:3]}..., got {self.got[:3]}..."
        )


@dataclass
class PathReport:
    """Replay outcome of one serving path."""

    path: str
    n_windows: int = 0
    n_queries: int = 0
    divergences: int = 0
    serve_seconds: float = 0.0
    snapshot_reloads: int = 0
    worker_restarts: int = 0
    first_divergence: Divergence | None = None

    @property
    def items_per_sec(self) -> float:
        return self.n_queries / self.serve_seconds if self.serve_seconds else 0.0

    def record_divergence(self, divergence: Divergence) -> None:
        self.divergences += 1
        if self.first_divergence is None:
            self.first_divergence = divergence


@dataclass
class ConformanceReport:
    """All-path outcome of one scenario replay."""

    scenario: str
    description: str
    seed: int
    k: int
    window_size: int
    n_events: int
    n_uploads: int
    n_interactions: int
    paths: dict[str, PathReport] = field(default_factory=dict)

    @property
    def total_divergences(self) -> int:
        return sum(report.divergences for report in self.paths.values())

    @property
    def conformant(self) -> bool:
        return self.total_divergences == 0

    def to_text(self) -> str:
        lines = [
            f"Scenario {self.scenario!r} (seed {self.seed}): {self.description}",
            f"  events={self.n_events} uploads={self.n_uploads} "
            f"interactions={self.n_interactions} k={self.k} window={self.window_size}",
        ]
        for name in self.paths:
            report = self.paths[name]
            reload_note = (
                f" reloads={report.snapshot_reloads}" if report.snapshot_reloads else ""
            )
            if report.worker_restarts:
                reload_note += f" restarts={report.worker_restarts}"
            lines.append(
                f"  {name:<22} windows={report.n_windows:<3} "
                f"queries={report.n_queries:<4} divergences={report.divergences:<3} "
                f"items/sec={report.items_per_sec:8.1f}{reload_note}"
            )
            if report.first_divergence is not None:
                lines.append(f"    first: {report.first_divergence.to_text()}")
        verdict = "EXACT" if self.conformant else f"BROKEN ({self.total_divergences})"
        lines.append(f"  conformance: {verdict}")
        return "\n".join(lines)


class _PathState:
    """One path's live replica plus its accumulating report."""

    def __init__(self, name: str, recommender) -> None:
        self.name = name
        self.recommender = recommender  # SsRecRecommender | ShardedRecommender
        self.report = PathReport(path=name)

    @property
    def is_sharded(self) -> bool:
        return isinstance(self.recommender, ShardedRecommender)

    def observe(self, item: SocialItem) -> None:
        self.recommender.observe_item(item)

    def update(self, interaction, payload_item) -> None:
        self.recommender.update(interaction, payload_item)

    def probed_users(self, item: SocialItem) -> set[int]:
        """The candidate set this path's index structures admit for ``item``
        (call after serving, so pending maintenance has been flushed)."""
        if self.is_sharded:
            probed: set[int] = set()
            for shard in self.recommender.shards:
                if shard.index is not None:
                    probed |= shard.index.users_in_probed_trees(item)
            return probed
        assert self.recommender.index is not None
        return self.recommender.index.users_in_probed_trees(item)


class ConformanceRunner:
    """Replays scenarios through every serving path, counting divergences.

    Args:
        k: recommendation depth per query.
        window_size: uploads per recommendation window (the micro-batch
            the batched paths serve; per-item paths serve the same items
            one by one).
        n_shards: shard count of the sharded paths.
        workers: fan-out threads of the sharded paths (0 = sequential; the
            merge is deterministic either way).
        fit_seed: model-init seed of the one shared ``fit``.
        config: base configuration; the scenario's ``maintenance_interval``
            is applied on top.
        paths: subset of :data:`CONFORMANCE_PATHS` to replay.
        snapshot_window: before serving this window index, the sharded
            index path is saved to disk and reloaded — the warm-started
            service must continue bit-compatibly mid-stream.
        restart_window: before serving this window index, the process
            path's shard workers go through a rolling restart (collect →
            stop → respawn) — the respawned workers must continue
            bit-compatibly mid-stream.
    """

    def __init__(
        self,
        k: int = 10,
        window_size: int = 8,
        n_shards: int = 3,
        workers: int = 0,
        fit_seed: int = 1,
        config: SsRecConfig | None = None,
        paths: tuple[str, ...] = CONFORMANCE_PATHS,
        snapshot_window: int = 2,
        restart_window: int = 2,
    ) -> None:
        unknown = sorted(set(paths) - set(CONFORMANCE_PATHS))
        if unknown:
            raise ValueError(f"unknown conformance paths: {', '.join(unknown)}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.k = int(k)
        self.window_size = int(window_size)
        self.n_shards = int(n_shards)
        self.workers = int(workers)
        self.fit_seed = int(fit_seed)
        self.config = config
        self.paths = tuple(name for name in CONFORMANCE_PATHS if name in paths)
        self.snapshot_window = int(snapshot_window)
        self.restart_window = int(restart_window)

    # ------------------------------------------------------------------
    # Replica construction
    # ------------------------------------------------------------------
    def _build_paths(self, template: SsRecRecommender) -> dict[str, _PathState]:
        states: dict[str, _PathState] = {}
        for name in self.paths:
            replica = copy.deepcopy(template)
            if name in ("index-item", "index-batch"):
                replica.attach_index()
                recommender = replica
            elif name == "sharded-scan-hash":
                recommender = ShardedRecommender.from_trained(
                    replica,
                    n_shards=self.n_shards,
                    strategy="hash",
                    use_index=False,
                    workers=self.workers,
                )
            elif name == "sharded-scan-process":
                recommender = ShardedRecommender.from_trained(
                    replica,
                    n_shards=self.n_shards,
                    strategy="hash",
                    use_index=False,
                    backend="process",
                )
            elif name == "sharded-index-block":
                recommender = ShardedRecommender.from_trained(
                    replica,
                    n_shards=self.n_shards,
                    strategy="block",
                    use_index=True,
                    workers=self.workers,
                )
            else:  # scan-item / scan-batch
                recommender = replica
            states[name] = _PathState(name, recommender)
        return states

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, snapshot_dir=None) -> ConformanceReport:
        """Replay ``scenario`` through every configured path.

        Args:
            snapshot_dir: where the mid-stream snapshot is written; a
                temporary directory is used (and cleaned up) when omitted.
        """
        config = (self.config or SsRecConfig()).with_options(
            maintenance_interval=scenario.maintenance_interval
        )
        template = SsRecRecommender(config=config, use_index=False, seed=self.fit_seed)
        template.fit(scenario.dataset, scenario.train_interactions)

        oracle_rec = copy.deepcopy(template)
        oracle = OracleMatcher(oracle_rec.scorer, oracle_rec.profiles)
        states = self._build_paths(template)
        summary = scenario.summary()
        report = ConformanceReport(
            scenario=scenario.name,
            description=scenario.description,
            seed=scenario.seed,
            k=self.k,
            window_size=self.window_size,
            n_events=summary["n_events"],
            n_uploads=summary["n_uploads"],
            n_interactions=summary["n_interactions"],
            paths={name: states[name].report for name in states},
        )

        if snapshot_dir is not None:
            self._replay(scenario, oracle_rec, oracle, states, Path(snapshot_dir))
        else:
            with tempfile.TemporaryDirectory(prefix="repro-conformance-") as tmp:
                self._replay(scenario, oracle_rec, oracle, states, Path(tmp))
        for state in states.values():
            if state.is_sharded:
                state.recommender.close()
        return report

    def _replay(self, scenario, oracle_rec, oracle, states, snapshot_dir) -> None:
        window: list[SocialItem] = []
        window_index = 0
        for event in scenario.events:
            if event.kind == "upload":
                item = event.payload
                oracle_rec.observe_item(item)
                for state in states.values():
                    state.observe(item)
                window.append(item)
                if len(window) >= self.window_size:
                    self._serve_window(
                        window, window_index, oracle, states, snapshot_dir
                    )
                    window = []
                    window_index += 1
            else:
                interaction = event.payload
                payload_item = scenario.item_payload(interaction)
                oracle_rec.update(interaction, payload_item)
                for state in states.values():
                    state.update(interaction, payload_item)
        if window:
            self._serve_window(window, window_index, oracle, states, snapshot_dir)

    # ------------------------------------------------------------------
    # One window: serve every path, judge every result
    # ------------------------------------------------------------------
    def _serve_window(self, window, window_index, oracle, states, snapshot_dir) -> None:
        oracle_scores = {item.item_id: oracle.score_all(item) for item in window}
        anchors: dict[str, list[list[tuple[int, float]]]] = {}

        for name, state in states.items():
            if (
                name == "sharded-index-block"
                and window_index == self.snapshot_window
            ):
                self._snapshot_reload(state, snapshot_dir)
            if (
                name == "sharded-scan-process"
                and window_index == self.restart_window
            ):
                # Rolling worker restart: every shard worker is collected,
                # stopped, and respawned from its own pickled state — the
                # stream continues through the fresh processes.
                state.recommender.restart_workers()
                state.report.worker_restarts += 1
            results = self._serve(state, window)
            state.report.n_windows += 1
            state.report.n_queries += len(window) * (2 if state.is_sharded else 1)
            if name in ("scan-item", "index-item"):
                anchors[name] = results["item"]
            self._judge(
                name, state, window, window_index, results, oracle,
                oracle_scores, anchors,
            )

    def _serve(self, state: _PathState, window) -> dict[str, list]:
        """Serve one window; sharded paths serve per item *and* batched."""
        rec = state.recommender
        started = time.perf_counter()
        if state.is_sharded:
            results = {
                "item": [rec.recommend(item, self.k) for item in window],
                "batch": rec.recommend_batch(window, self.k),
            }
        elif state.name.endswith("-batch"):
            results = {"batch": rec.recommend_batch(window, self.k)}
        else:
            results = {"item": [rec.recommend(item, self.k) for item in window]}
        state.report.serve_seconds += time.perf_counter() - started
        return results

    #: Which family anchor (if replayed) each path must match bit for bit.
    _ANCHOR_OF = {"scan-batch": "scan-item", "sharded-scan-hash": "scan-item",
                  "sharded-scan-process": "scan-item", "index-batch": "index-item"}

    def _judge(
        self,
        name,
        state,
        window,
        window_index,
        results,
        oracle,
        oracle_scores,
        anchors,
    ) -> None:
        uses_index = name.startswith("index") or name == "sharded-index-block"
        anchor = anchors.get(self._ANCHOR_OF.get(name, ""))
        for position, item in enumerate(window):
            if anchor is not None:
                # Family members must not move a single bit vs the
                # family's per-item anchor path.
                want = anchor[position]
                predicate = matches_exactly
            else:
                # Anchor paths (and paths replayed without their anchor)
                # are judged against the independent naive oracle, over
                # the candidate set their structures admit.
                candidates = state.probed_users(item) if uses_index else None
                want = oracle.rank(oracle_scores[item.item_id], self.k, candidates)
                predicate = matches_within_ties
            for got in (ranked[position] for ranked in results.values()):
                if not predicate(got, want):
                    state.report.record_divergence(
                        Divergence(
                            path=name,
                            window=window_index,
                            item_id=item.item_id,
                            expected=want,
                            got=got,
                        )
                    )

    def _snapshot_reload(self, state: _PathState, snapshot_dir: Path) -> None:
        """Save the live sharded service and continue from the reload."""
        target = snapshot_dir / f"{state.name}-w"
        state.recommender.save(target)
        state.recommender.close()
        state.recommender = ShardedRecommender.load(target, workers=self.workers)
        state.report.snapshot_reloads += 1
