"""repro.sim — adversarial workload simulation + differential conformance.

The exactness backstop of the serving stack:

- :mod:`repro.sim.scenarios` — :class:`ScenarioGenerator`, a seeded
  catalog of adversarial stream scenarios (bursts, cold starts, drift,
  skew, duplicates/out-of-order delivery, maintenance-boundary storms)
  composed on top of the synthpop resampler;
- :mod:`repro.sim.oracle` — :class:`OracleMatcher`, the naive per-pair
  reference matcher every serving path is judged against;
- :mod:`repro.sim.conformance` — :class:`ConformanceRunner`, which
  replays each scenario through the scan, batched, CPPse-index and
  sharded serving paths (including a mid-stream snapshot reload) and
  counts top-k divergences.

Run the whole suite from the shell with ``python -m repro.eval
conformance``; see docs/TESTING.md for the catalog and the comparison
semantics.
"""

from repro.sim.conformance import (
    CONFORMANCE_PATHS,
    ConformanceReport,
    ConformanceRunner,
    Divergence,
    PathReport,
)
from repro.sim.oracle import OracleMatcher, matches_exactly, matches_within_ties
from repro.sim.scenarios import SCENARIOS, Scenario, ScenarioGenerator, StreamEvent

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioGenerator",
    "StreamEvent",
    "OracleMatcher",
    "matches_exactly",
    "matches_within_ties",
    "CONFORMANCE_PATHS",
    "ConformanceRunner",
    "ConformanceReport",
    "PathReport",
    "Divergence",
]
