"""The naive cross-path top-k oracle.

:class:`OracleMatcher` is the slowest, most obviously-correct matcher the
repo can state: one :meth:`MatchingScorer.score` call per (item, user)
pair — no NumPy batching, no signatures, no pruning, no caches beyond the
scorer's own — followed by a plain global ``(-score, user_id)`` sort.
Every serving path is judged against it:

- the per-item scan path must reproduce the oracle's ``(user_id, score)``
  ranking over the full population, and the per-item CPPse-index path the
  oracle restricted to its *probed* candidate set (the paper's
  no-false-dismissal guarantee, Lemmas 1-2).  Both comparisons tolerate
  last-float-bit noise only: the oracle's scalar ``math.log`` and
  summation order can differ from the matcher's SIMD ``np.log`` and the
  index's signature arithmetic by ~1 ULP (observed <= ~1e-15), so the
  oracle predicates use the same 1e-9 tie discipline the index exactness
  tests use;
- every *other* path is compared **bit for bit** against its family's
  per-item anchor: batched scan and the sharded scan fan-out against
  ``scan-item``, batched index serving against ``index-item`` — same
  arithmetic, so optimization layers must not move a single bit.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.matching import MatchingScorer
from repro.core.profiles import ProfileStore
from repro.datasets.schema import SocialItem

#: Score tolerance for index-family comparisons (matches the discipline of
#: ``tests/test_index_cppse.py``): differences at or below this are float
#: noise from summation order, not ranking defects.
SCORE_TOLERANCE = 1e-9


class OracleMatcher:
    """Per-pair reference matcher over a live profile store.

    Args:
        scorer: the trained reference scorer (shared model parameters).
        profiles: the profile store to rank — the oracle always scores
            the store's *current* state, so callers replay stream updates
            into it before asking for rankings.
    """

    def __init__(self, scorer: MatchingScorer, profiles: ProfileStore) -> None:
        self.scorer = scorer
        self.profiles = profiles

    def score_all(self, item: SocialItem) -> dict[int, float]:
        """``user_id -> R(v, u^c)`` for every stored user (Eq. 3)."""
        return {
            profile.user_id: self.scorer.score(item, profile)
            for profile in self.profiles
        }

    @staticmethod
    def rank(
        scores: dict[int, float], k: int, candidates: Iterable[int] | None = None
    ) -> list[tuple[int, float]]:
        """Top-``k`` of ``scores`` by ``(-score, user_id)``, optionally
        restricted to ``candidates`` (the index-path probed set)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if candidates is None:
            pairs = list(scores.items())
        else:
            pairs = [(uid, scores[uid]) for uid in candidates if uid in scores]
        pairs.sort(key=lambda pair: (-pair[1], pair[0]))
        return pairs[:k]

    def top_k(
        self, item: SocialItem, k: int, candidates: Iterable[int] | None = None
    ) -> list[tuple[int, float]]:
        """Naive top-``k`` for ``item`` (convenience over score_all+rank)."""
        return self.rank(self.score_all(item), k, candidates)


def matches_exactly(
    got: list[tuple[int, float]], want: list[tuple[int, float]]
) -> bool:
    """Bitwise list equality — the scan-family conformance predicate."""
    return got == want


def matches_within_ties(
    got: list[tuple[int, float]],
    want: list[tuple[int, float]],
    tolerance: float = SCORE_TOLERANCE,
) -> bool:
    """Index-family conformance predicate: same length, positionally equal
    scores within ``tolerance``, and equal users wherever scores are not
    tied within the tolerance (tied users may swap order)."""
    if len(got) != len(want):
        return False
    for (_, got_score), (_, want_score) in zip(got, want):
        if abs(got_score - want_score) > tolerance:
            return False
    # Positional scores agree; any user reordering must be a pure
    # within-tolerance swap, so the user multiset must be unchanged.
    return sorted(u for u, _ in got) == sorted(u for u, _ in want)
