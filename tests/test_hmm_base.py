"""Unit and property tests for the discrete HMM substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hmm.base import DiscreteHMM


def crafted_deterministic_hmm():
    """Two states that deterministically alternate and emit their index."""
    model = DiscreteHMM(2, 2, seed=0)
    model.pi = np.array([1.0, 0.0])
    model.A = np.array([[0.0, 1.0], [1.0, 0.0]])
    model.B = np.array([[1.0, 0.0], [0.0, 1.0]])
    return model


class TestConstruction:
    def test_parameters_are_stochastic(self):
        model = DiscreteHMM(4, 7, seed=3)
        assert model.pi.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(model.A.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.B.sum(axis=1), 1.0)

    def test_seeded_determinism(self):
        a, b = DiscreteHMM(3, 5, seed=11), DiscreteHMM(3, 5, seed=11)
        np.testing.assert_array_equal(a.A, b.A)
        np.testing.assert_array_equal(a.B, b.B)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            DiscreteHMM(0, 3)
        with pytest.raises(ValueError):
            DiscreteHMM(3, 0)


class TestInference:
    def test_log_likelihood_of_deterministic_sequence_is_zero(self):
        model = crafted_deterministic_hmm()
        assert model.log_likelihood([0, 1, 0, 1]) == pytest.approx(0.0, abs=1e-6)

    def test_log_likelihood_of_impossible_sequence_is_very_negative(self):
        model = crafted_deterministic_hmm()
        assert model.log_likelihood([0, 0]) < -10

    def test_state_posteriors_rows_sum_to_one(self):
        model = DiscreteHMM(3, 4, seed=1)
        gamma = model.state_posteriors([0, 1, 2, 3, 0])
        np.testing.assert_allclose(gamma.sum(axis=1), 1.0)

    def test_filter_state_sums_to_one(self):
        model = DiscreteHMM(3, 4, seed=1)
        alpha = model.filter_state([0, 1, 2])
        assert alpha.sum() == pytest.approx(1.0)

    def test_forward_backward_consistency(self):
        """Likelihood from scales equals brute-force enumeration."""
        model = DiscreteHMM(2, 3, seed=5)
        seq = [0, 2, 1]
        # Brute force over all state paths.
        total = 0.0
        for s0 in range(2):
            for s1 in range(2):
                for s2 in range(2):
                    total += (
                        model.pi[s0] * model.B[s0, seq[0]]
                        * model.A[s0, s1] * model.B[s1, seq[1]]
                        * model.A[s1, s2] * model.B[s2, seq[2]]
                    )
        assert model.log_likelihood(seq) == pytest.approx(np.log(total))


class TestViterbi:
    def test_recovers_deterministic_path(self):
        model = crafted_deterministic_hmm()
        states = model.viterbi([0, 1, 0, 1, 0])
        np.testing.assert_array_equal(states, [0, 1, 0, 1, 0])

    def test_length_matches_sequence(self):
        model = DiscreteHMM(3, 4, seed=2)
        assert len(model.viterbi([1, 2, 3, 0, 1])) == 5

    def test_single_observation(self):
        model = DiscreteHMM(3, 4, seed=2)
        states = model.viterbi([2])
        assert states.shape == (1,)
        assert 0 <= states[0] < 3


class TestPrediction:
    def test_next_distribution_sums_to_one(self):
        model = DiscreteHMM(3, 5, seed=4)
        dist = model.predict_next_distribution([0, 1, 4])
        assert dist.shape == (5,)
        assert dist.sum() == pytest.approx(1.0)

    def test_deterministic_model_predicts_alternation(self):
        model = crafted_deterministic_hmm()
        dist = model.predict_next_distribution([0])
        assert int(np.argmax(dist)) == 1
        dist = model.predict_next_distribution([0, 1])
        assert int(np.argmax(dist)) == 0

    def test_top_k_ordering_and_truncation(self):
        model = DiscreteHMM(3, 5, seed=4)
        dist = model.predict_next_distribution([1, 2])
        top = model.predict_top_k([1, 2], 3)
        assert len(top) == 3
        assert dist[top[0]] >= dist[top[1]] >= dist[top[2]]
        assert len(model.predict_top_k([1, 2], 99)) == 5

    def test_prior_distribution_sums_to_one(self):
        model = DiscreteHMM(3, 5, seed=4)
        assert model.prior_distribution().sum() == pytest.approx(1.0)


class TestFit:
    def test_log_likelihood_is_monotone_nondecreasing(self):
        rng = np.random.default_rng(0)
        seqs = [rng.integers(0, 4, size=60) for _ in range(3)]
        model = DiscreteHMM(3, 4, seed=9)
        result = model.fit(seqs, n_iter=25)
        lls = result.log_likelihoods
        assert all(b >= a - 1e-8 for a, b in zip(lls, lls[1:]))

    def test_fit_improves_over_initial_likelihood(self):
        rng = np.random.default_rng(1)
        seqs = [rng.integers(0, 4, size=80) for _ in range(2)]
        model = DiscreteHMM(3, 4, seed=9)
        before = model.total_log_likelihood(seqs)
        model.fit(seqs, n_iter=20)
        assert model.total_log_likelihood(seqs) > before

    def test_learns_alternating_structure(self):
        seq = [0, 1] * 40
        model = DiscreteHMM(2, 2, seed=3)
        model.fit([seq], n_iter=50)
        dist = model.predict_next_distribution([0, 1, 0])
        assert int(np.argmax(dist)) == 1

    def test_parameters_remain_stochastic_after_fit(self):
        rng = np.random.default_rng(2)
        model = DiscreteHMM(3, 5, seed=0)
        model.fit([rng.integers(0, 5, size=50)], n_iter=10)
        assert model.pi.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(model.A.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.B.sum(axis=1), 1.0)

    def test_convergence_flag_set_on_plateau(self):
        seq = [0, 1] * 30
        model = DiscreteHMM(2, 2, seed=3)
        result = model.fit([seq], n_iter=200, tol=1e-6)
        assert result.converged
        assert result.n_iter < 200

    def test_single_state_model_fits_marginal(self):
        seq = [0] * 30 + [1] * 10
        model = DiscreteHMM(1, 2, seed=0)
        model.fit([seq], n_iter=20)
        assert model.B[0, 0] == pytest.approx(0.75, abs=0.01)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=2, max_value=5))
    def test_property_fit_monotone_for_any_shape(self, n_states, n_symbols):
        rng = np.random.default_rng(n_states * 10 + n_symbols)
        seqs = [rng.integers(0, n_symbols, size=30)]
        model = DiscreteHMM(n_states, n_symbols, seed=1)
        lls = model.fit(seqs, n_iter=10).log_likelihoods
        assert all(b >= a - 1e-8 for a, b in zip(lls, lls[1:]))


class TestSerialization:
    def test_round_trip_preserves_behaviour(self):
        model = DiscreteHMM(3, 4, seed=6)
        clone = DiscreteHMM.from_dict(model.to_dict())
        seq = [0, 1, 2, 3, 1]
        assert clone.log_likelihood(seq) == pytest.approx(model.log_likelihood(seq))
        np.testing.assert_array_equal(clone.viterbi(seq), model.viterbi(seq))
