"""Tests for block universes, impact/frequency encodings."""

import numpy as np
import pytest

from repro.datasets.schema import SocialItem
from repro.index.signature import (
    BlockUniverse,
    QuerySignature,
    UniverseOverflow,
    UserVector,
    relevance_from_parts,
)


class TestBlockUniverse:
    def test_slots_are_dense_and_sorted(self):
        universe = BlockUniverse([5, 2], [30, 10, 20], slack=0.2)
        assert universe.producer_ids() == [2, 5]
        assert universe.entity_ids() == [10, 20, 30]
        assert universe.producer_slot(2) == 0 and universe.producer_slot(5) == 1
        assert universe.entity_slot(20) == 1
        assert universe.entity_slot(99) is None

    def test_capacity_includes_slack(self):
        universe = BlockUniverse([1], list(range(10)), slack=0.2)
        assert universe.entity_capacity >= 12  # 10 + ceil(2) + 1

    def test_add_entity_claims_reserved_slot(self):
        universe = BlockUniverse([1], [0, 1], slack=0.5)
        slot = universe.add_entity(42)
        assert universe.entity_slot(42) == slot == 2
        assert universe.n_entities == 3

    def test_add_existing_entity_is_idempotent(self):
        universe = BlockUniverse([1], [0, 1], slack=0.5)
        assert universe.add_entity(0) == universe.entity_slot(0)
        assert universe.n_entities == 2

    def test_overflow_raises(self):
        universe = BlockUniverse([1], [0], slack=0.0)
        universe.add_entity(7)  # the +1 headroom slot
        with pytest.raises(UniverseOverflow):
            universe.add_entity(8)

    def test_add_producer(self):
        universe = BlockUniverse([1], [0], slack=0.5)
        slot = universe.add_producer(9)
        assert universe.producer_slot(9) == slot

    def test_invalid_slack_rejected(self):
        with pytest.raises(ValueError):
            BlockUniverse([1], [0], slack=1.0)


class TestUserVector:
    def test_values_match_reference_scorer(self, fitted_ssrec):
        scorer = fitted_ssrec.scorer
        profile = next(p for p in fitted_ssrec.profiles if p.n_long_events >= 5)
        producer_ids = list(profile.producer_counts)[:3] or [0]
        entity_ids = list(profile.entity_counts)[:5] or [0]
        universe = BlockUniverse(producer_ids, entity_ids, slack=0.2)
        vector = UserVector.build(profile, universe, scorer)
        for pid in producer_ids:
            slot = universe.producer_slot(pid)
            assert vector.p_producer[slot] == pytest.approx(
                scorer.producer_probability(profile, pid)
            )
        for eid in entity_ids:
            slot = universe.entity_slot(eid)
            assert vector.p_entity[slot] == pytest.approx(
                scorer.entity_probability(profile, eid)
            )

    def test_floors_match_unseen_probability(self, fitted_ssrec):
        scorer = fitted_ssrec.scorer
        profile = next(p for p in fitted_ssrec.profiles if p.n_long_events >= 5)
        unseen_producer = next(
            p for p in range(scorer.n_producers) if p not in profile.producer_counts
        )
        unseen_entity = next(
            e for e in range(scorer.n_entities) if e not in profile.entity_counts
        )
        universe = BlockUniverse([0], [0], slack=0.2)
        vector = UserVector.build(profile, universe, scorer)
        assert vector.floor_producer == pytest.approx(
            scorer.producer_probability(profile, unseen_producer)
        )
        assert vector.floor_entity == pytest.approx(
            scorer.entity_probability(profile, unseen_entity)
        )

    def test_reserved_slots_hold_floor(self, fitted_ssrec):
        profile = next(iter(fitted_ssrec.profiles))
        universe = BlockUniverse([0], [0, 1], slack=0.5)
        vector = UserVector.build(profile, universe, fitted_ssrec.scorer)
        for slot in range(universe.n_entities, universe.entity_capacity):
            assert vector.p_entity[slot] == pytest.approx(vector.floor_entity)


def make_item(item_id=0, category=1, producer=2, entities=(10, 10, 20)):
    return SocialItem(
        item_id=item_id,
        category=category,
        producer=producer,
        entities=tuple(entities),
        text="",
        timestamp=0.0,
    )


class TestQuerySignature:
    def test_encoding_accumulates_frequency_times_weight(self):
        universe = BlockUniverse([2], [10, 20], slack=0.2)
        item = make_item()
        weighted = [(10, 1.0), (10, 1.0), (20, 1.0), (30, 0.7)]
        query = QuerySignature.encode(item, weighted, universe, block_id=0)
        assert dict(query.entity_weights) == {
            universe.entity_slot(10): 2.0,
            universe.entity_slot(20): 1.0,
        }
        assert query.oov_weight == pytest.approx(0.7)
        assert query.producer_slot == universe.producer_slot(2)

    def test_out_of_universe_producer(self):
        universe = BlockUniverse([5], [10], slack=0.2)
        query = QuerySignature.encode(make_item(producer=2), [(10, 1.0)], universe, 0)
        assert query.producer_slot is None
        assert query.producer_prob(np.array([0.3]), floor_producer=0.01) == 0.01

    def test_entity_sum_matches_manual_dot_product(self):
        universe = BlockUniverse([2], [10, 20], slack=0.0)
        query = QuerySignature.encode(
            make_item(), [(10, 2.0), (20, 0.5), (99, 0.3)], universe, 0
        )
        p_entity = np.array([0.4, 0.1, 0.0, 0.0])
        expected = 2.0 * 0.4 + 0.5 * 0.1 + 0.3 * 0.01
        assert query.entity_sum(p_entity, floor_entity=0.01) == pytest.approx(expected)


class TestRelevanceFromParts:
    def test_matches_score_parts_combine(self):
        from repro.core.matching import ScoreParts

        parts = ScoreParts(0.2, 0.05, 0.3, 0.1)
        assert relevance_from_parts(0.2, 0.05, 0.3, 0.1, 0.4) == pytest.approx(
            parts.combine(0.4)
        )

    def test_monotone_in_every_component(self):
        base = relevance_from_parts(0.2, 0.05, 0.3, 0.1, 0.4)
        assert relevance_from_parts(0.3, 0.05, 0.3, 0.1, 0.4) > base
        assert relevance_from_parts(0.2, 0.06, 0.3, 0.1, 0.4) > base
        assert relevance_from_parts(0.2, 0.05, 0.4, 0.1, 0.4) > base
        assert relevance_from_parts(0.2, 0.05, 0.3, 0.2, 0.4) > base
