"""Tests for text-table rendering."""

from repro.eval.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_large_float_compact(self):
        text = format_table(["x"], [[123456.789]])
        assert "123456.8" in text


class TestFormatSeries:
    def test_union_of_x_values(self):
        text = format_series(
            "title", {"a": {1: 0.5, 2: 0.6}, "b": {2: 0.1, 3: 0.2}}, x_label="k"
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert lines[1].split()[:3] == ["k", "a", "b"]
        assert len(lines) == 6  # title + header + sep + 3 x rows

    def test_missing_points_render_empty(self):
        text = format_series("t", {"a": {1: 0.5}, "b": {2: 0.1}})
        assert "0.5" in text and "0.1" in text
