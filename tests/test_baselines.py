"""Tests for the CTT, UCD and naive-scan baselines."""

import pytest

from repro.baselines.ctt import CTTConfig, CTTRecommender
from repro.baselines.knn_scan import NaiveScanRecommender
from repro.baselines.ucd import UCDConfig, UCDRecommender
from repro.datasets.schema import Interaction


@pytest.fixture(scope="module")
def ctt(ytube_small, ytube_stream):
    return CTTRecommender().fit(ytube_small, ytube_stream.training_interactions())


@pytest.fixture(scope="module")
def ucd(ytube_small, ytube_stream):
    return UCDRecommender().fit(ytube_small, ytube_stream.training_interactions())


class TestCTT:
    def test_recommend_returns_ranked_users(self, ctt, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        out = ctt.recommend(item, 8)
        assert len(out) == 8
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)

    def test_all_consumers_rankable(self, ctt, ytube_small, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        out = ctt.recommend(item, len(ytube_small.consumer_ids))
        assert len(out) == len(ytube_small.consumer_ids)

    def test_type_factor_prefers_matching_category(self, ytube_small):
        ctt = CTTRecommender()
        ctt._n_categories = ytube_small.n_categories
        inter = ytube_small.interactions[0]
        for _ in range(5):
            ctt.update(inter)
        item_same = ytube_small.item(inter.item_id)
        other_cat = (inter.category + 1) % ytube_small.n_categories
        other = next(it for it in ytube_small.items if it.category == other_cat)
        assert ctt.score(inter.user_id, item_same) > ctt.score(inter.user_id, other)

    def test_cf_rewards_co_interaction(self, ytube_small):
        ctt = CTTRecommender(CTTConfig(w_type=0.0))
        ctt._n_categories = ytube_small.n_categories
        a, b = ytube_small.items[0], ytube_small.items[1]
        # Users 1 and 2 both saw items a and b -> a, b become similar.
        for user in (1, 2):
            for it in (a, b):
                ctt.update(Interaction(user, it.item_id, it.category, it.producer, 0.5))
        # User 3 saw item a only; CF should now rank them for item b.
        ctt.update(Interaction(3, a.item_id, a.category, a.producer, 0.6))
        assert ctt.score(3, b) > 0.0

    def test_update_invalidates_similarity_cache(self, ytube_small):
        ctt = CTTRecommender()
        ctt._n_categories = ytube_small.n_categories
        a, b = ytube_small.items[0], ytube_small.items[1]
        ctt.update(Interaction(1, a.item_id, a.category, a.producer, 0.5))
        assert ctt._item_similarity(a.item_id, b.item_id) == 0.0
        ctt.update(Interaction(1, b.item_id, b.category, b.producer, 0.6))
        assert ctt._item_similarity(a.item_id, b.item_id) > 0.0


class TestUCD:
    def test_recommend_returns_ranked_users(self, ucd, ytube_stream):
        item = ytube_stream.items_in_partition(2)[0]
        out = ucd.recommend(item, 8)
        assert len(out) == 8
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)

    def test_neighbours_computed_for_active_users(self, ucd):
        active = [u for u, n in ucd._n_events.items() if n > 0]
        with_neighbours = [u for u in active if ucd._neighbours.get(u)]
        assert len(with_neighbours) > len(active) * 0.5

    def test_neighbour_expansion_changes_scores(self, ytube_small, ytube_stream):
        plain = UCDRecommender(UCDConfig(neighbour_weight=0.0)).fit(
            ytube_small, ytube_stream.training_interactions()
        )
        expanded = UCDRecommender(UCDConfig(neighbour_weight=0.8)).fit(
            ytube_small, ytube_stream.training_interactions()
        )
        item = ytube_stream.items_in_partition(2)[0]
        user = next(u for u, n in expanded._n_events.items() if n > 3)
        assert plain.score(user, item) != expanded.score(user, item)

    def test_profile_entity_cap_enforced(self, ytube_small):
        ucd = UCDRecommender(UCDConfig(max_profile_entities=5))
        ucd._n_categories = ytube_small.n_categories
        ucd._n_entities = len(ytube_small.entity_names)
        for it in ytube_small.items[:30]:
            ucd.update(Interaction(1, it.item_id, it.category, it.producer, 0.5), it)
        assert len(ucd._entity_counts[1]) <= 5


class TestNaiveScan:
    def test_matches_vectorized_ranking_exactly(self, fitted_ssrec, ytube_stream):
        """The naive per-user loop and the vectorized scan must produce the
        same scores — they share the scoring definition."""
        naive = NaiveScanRecommender(fitted_ssrec.scorer, fitted_ssrec.profiles)
        for item in ytube_stream.items_in_partition(2)[:5]:
            loop = naive.recommend(item, 10)
            fast = fitted_ssrec.matcher.top_k(item, 10)
            assert [(u, round(s, 9)) for u, s in loop] == [
                (u, round(s, 9)) for u, s in fast
            ]

    def test_score_all_covers_every_user(self, fitted_ssrec, ytube_small):
        naive = NaiveScanRecommender(fitted_ssrec.scorer, fitted_ssrec.profiles)
        out = naive.score_all(ytube_small.items[0])
        assert len(out) == len(fitted_ssrec.profiles)
