"""Tests for schema, generators, synthpop and partitioning."""

import numpy as np
import pytest

from repro.datasets.mlens import MLensConfig, generate_mlens
from repro.datasets.partitions import partition_interactions
from repro.datasets.schema import Dataset, Interaction, SocialItem
from repro.datasets.synthpop import SynthpopSynthesizer, synthesize_dataset
from repro.datasets.text import compose_description, pseudo_word, unique_phrases
from repro.datasets.ytube import YTubeConfig, generate_ytube


class TestText:
    def test_pseudo_word_nonempty_and_lower(self):
        rng = np.random.default_rng(0)
        word = pseudo_word(rng)
        assert word and word == word.lower()

    def test_unique_phrases_are_unique(self):
        rng = np.random.default_rng(0)
        phrases = unique_phrases(rng, 200)
        assert len(set(phrases)) == 200

    def test_compose_preserves_phrase_order(self):
        rng = np.random.default_rng(0)
        text = compose_description(rng, ["alpha bravo", "charlie"])
        assert text.index("alpha bravo") < text.index("charlie")


class TestSchema:
    def test_stats_columns_match_table3(self, ytube_small):
        row = ytube_small.stats().as_row()
        assert list(row) == ["Dataset", "|Up|", "|Uc|", "|E|", "C", "|IRact|", "|V|"]

    def test_item_lookup(self, ytube_small):
        item = ytube_small.items[5]
        assert ytube_small.item(item.item_id) is item

    def test_producer_creations_are_time_ordered(self, ytube_small):
        item_by_id = {it.item_id: it for it in ytube_small.items}
        for items in ytube_small.producer_creations().values():
            times = [item_by_id[iid].timestamp for iid, _ in items]
            assert times == sorted(times)

    def test_consumer_histories_are_time_ordered(self, ytube_small):
        for history in ytube_small.consumer_histories().values():
            times = [i.timestamp for i in history]
            assert times == sorted(times)

    def test_interactions_by_item_covers_all(self, ytube_small):
        by_item = ytube_small.interactions_by_item()
        assert sum(len(v) for v in by_item.values()) <= len(ytube_small.interactions)
        for inter in ytube_small.interactions[:100]:
            assert inter.user_id in by_item[inter.item_id]

    def test_validate_catches_unknown_producer(self):
        ds = Dataset(
            name="bad",
            n_categories=2,
            items=[SocialItem(0, 0, 99, (), "", 0.0)],
            producer_ids=[1],
        )
        with pytest.raises(ValueError, match="producer"):
            ds.validate()

    def test_validate_catches_bad_category(self):
        ds = Dataset(
            name="bad",
            n_categories=2,
            items=[SocialItem(0, 5, 1, (), "", 0.0)],
            producer_ids=[1],
        )
        with pytest.raises(ValueError, match="category"):
            ds.validate()

    def test_validate_catches_unknown_consumer(self):
        ds = Dataset(
            name="bad",
            n_categories=2,
            items=[SocialItem(0, 0, 1, (), "", 0.0)],
            producer_ids=[1],
            consumer_ids=[2],
            interactions=[Interaction(3, 0, 0, 1, 0.5)],
        )
        with pytest.raises(ValueError, match="consumer"):
            ds.validate()


class TestGenerators:
    def test_ytube_respects_config_counts(self, ytube_small):
        cfg = YTubeConfig.small()
        stats = ytube_small.stats()
        assert stats.n_items == cfg.n_items
        assert stats.n_producers == cfg.n_producers
        assert stats.n_consumers == cfg.n_consumers
        assert stats.n_categories == cfg.n_categories
        assert stats.n_interactions <= cfg.n_interactions

    def test_ytube_items_time_sorted(self, ytube_small):
        times = [it.timestamp for it in ytube_small.items]
        assert times == sorted(times)

    def test_ytube_deterministic_per_seed(self):
        a = generate_ytube(YTubeConfig.small(seed=3))
        b = generate_ytube(YTubeConfig.small(seed=3))
        assert [i.item_id for i in a.items[:50]] == [i.item_id for i in b.items[:50]]
        assert a.interactions[:50] == b.interactions[:50]

    def test_ytube_seeds_differ(self):
        a = generate_ytube(YTubeConfig.small(seed=3))
        b = generate_ytube(YTubeConfig.small(seed=4))
        assert a.interactions[:200] != b.interactions[:200]

    def test_ytube_text_contains_entity_phrases(self, ytube_small):
        item = ytube_small.items[0]
        for eid in set(item.entities):
            assert ytube_small.entity_names[eid] in item.text

    def test_mlens_producers_dominantly_single_category(self, mlens_small):
        creations = mlens_small.producer_creations()
        for items in creations.values():
            if len(items) < 10:
                continue
            cats = [c for _, c in items]
            dominant = max(set(cats), key=cats.count)
            assert cats.count(dominant) / len(cats) >= 0.5

    def test_mlens_items_frontloaded(self, mlens_small):
        times = np.array([it.timestamp for it in mlens_small.items])
        assert np.median(times) < 0.5  # most of the catalogue exists early

    def test_interactions_only_on_visible_items(self, ytube_small):
        item_by_id = {it.item_id: it for it in ytube_small.items}
        for inter in ytube_small.interactions:
            assert item_by_id[inter.item_id].timestamp <= inter.timestamp + 1e-9


class TestSynthpopSynthesizer:
    def test_fit_and_sample_shapes(self):
        records = [{"a": i % 3, "b": (i * 2) % 5} for i in range(60)]
        synth = SynthpopSynthesizer(["a", "b"]).fit(records)
        out = synth.sample(40, seed=1)
        assert len(out) == 40
        assert all(set(r) == {"a", "b"} for r in out)

    def test_marginals_roughly_preserved(self):
        records = [{"a": 0} for _ in range(90)] + [{"a": 1} for _ in range(10)]
        synth = SynthpopSynthesizer(["a"]).fit(records)
        out = synth.sample(500, seed=2)
        share = sum(1 for r in out if r["a"] == 0) / len(out)
        assert 0.8 <= share <= 0.98

    def test_conditionals_preserved(self):
        # b == a, always.
        records = [{"a": i % 2, "b": i % 2} for i in range(100)]
        synth = SynthpopSynthesizer(["a", "b"]).fit(records)
        out = synth.sample(200, seed=3)
        assert all(r["a"] == r["b"] for r in out)

    def test_sample_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            SynthpopSynthesizer(["a"]).sample(1)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            SynthpopSynthesizer([])
        with pytest.raises(ValueError):
            SynthpopSynthesizer(["a"]).fit([])


class TestSynthesizeDataset:
    def test_universes_preserved(self, ytube_small):
        syn = synthesize_dataset(ytube_small, seed=5)
        assert syn.name == "SynYTube"
        assert syn.producer_ids == ytube_small.producer_ids
        assert syn.consumer_ids == ytube_small.consumer_ids
        assert syn.entity_names == ytube_small.entity_names
        assert len(syn.items) == len(ytube_small.items)

    def test_interaction_growth(self, ytube_small):
        syn = synthesize_dataset(ytube_small, seed=5, interaction_growth=0.06)
        ratio = len(syn.interactions) / len(ytube_small.interactions)
        assert 0.95 <= ratio <= 1.15

    def test_synthetic_referential_integrity(self, ytube_small):
        syn = synthesize_dataset(ytube_small, seed=5)
        syn.validate()

    def test_user_category_distribution_roughly_preserved(self, ytube_small):
        syn = synthesize_dataset(ytube_small, seed=5)
        def cat_hist(ds):
            hist = np.zeros(ds.n_categories)
            for i in ds.interactions:
                hist[i.category] += 1
            return hist / hist.sum()
        orig, synth = cat_hist(ytube_small), cat_hist(syn)
        assert np.abs(orig - synth).max() < 0.08


class TestPartitions:
    def test_six_even_partitions(self, ytube_stream):
        sizes = [len(p) for p in ytube_stream.partitions]
        assert len(sizes) == 6
        assert max(sizes) - min(sizes) <= max(sizes) // 2

    def test_partitions_time_ordered(self, ytube_stream):
        last = float("-inf")
        for partition in ytube_stream.partitions:
            for inter in partition:
                assert inter.timestamp >= last
                last = inter.timestamp

    def test_protocol_steps_shape(self, ytube_stream):
        steps = ytube_stream.protocol_steps()
        assert steps[0] == ([0, 1], 2)
        assert steps[-1] == ([0, 1, 2, 3, 4], 5)

    def test_training_interactions_are_first_two_partitions(self, ytube_stream):
        train = ytube_stream.training_interactions()
        assert len(train) == len(ytube_stream.partitions[0]) + len(ytube_stream.partitions[1])

    def test_items_in_partition_within_boundaries(self, ytube_stream):
        for p in range(6):
            start, end = ytube_stream.boundaries[p]
            for item in ytube_stream.items_in_partition(p):
                assert start < item.timestamp <= end

    def test_every_item_in_exactly_one_partition(self, ytube_stream):
        seen = []
        for p in range(6):
            seen.extend(it.item_id for it in ytube_stream.items_in_partition(p))
        assert len(seen) == len(set(seen)) == len(ytube_stream.dataset.items)

    def test_ground_truth_matches_partition(self, ytube_stream):
        truth = ytube_stream.ground_truth(2)
        users_in_p2 = {i.user_id for i in ytube_stream.partitions[2]}
        for users in truth.values():
            assert users <= users_in_p2

    def test_invalid_arguments_rejected(self, ytube_small):
        with pytest.raises(ValueError):
            partition_interactions(ytube_small, n_partitions=1)
        with pytest.raises(ValueError):
            partition_interactions(ytube_small, n_partitions=4, n_train=4)
