"""MinHash signatures and banded LSH: determinism, invariance, banding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.minhash import EMPTY_SLOT, LSHIndex, MinHasher, jaccard

entity_sets = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=0, max_size=24
)


class TestMinHasherProperties:
    @settings(max_examples=60, deadline=None)
    @given(entities=entity_sets, seed=st.integers(min_value=0, max_value=2**16))
    def test_signature_deterministic_under_fixed_seed(self, entities, seed):
        a = MinHasher(n_hashes=16, seed=seed)
        b = MinHasher(n_hashes=16, seed=seed)
        assert a.signature(entities) == b.signature(entities)

    @settings(max_examples=60, deadline=None)
    @given(entities=entity_sets, shuffle_seed=st.randoms(use_true_random=False))
    def test_signature_permutation_and_duplication_invariant(
        self, entities, shuffle_seed
    ):
        hasher = MinHasher(n_hashes=16, seed=3)
        want = hasher.signature(entities)
        shuffled = list(entities) + list(entities)  # duplicates...
        shuffle_seed.shuffle(shuffled)  # ...in arbitrary order
        assert hasher.signature(shuffled) == want

    @settings(max_examples=40, deadline=None)
    @given(entities=entity_sets)
    def test_signature_shape_and_range(self, entities):
        hasher = MinHasher(n_hashes=32, seed=0)
        sig = hasher.signature(entities)
        assert len(sig) == 32
        assert all(0 <= slot <= EMPTY_SLOT for slot in sig)

    def test_empty_set_signs_to_empty_slots(self):
        hasher = MinHasher(n_hashes=8, seed=0)
        assert hasher.signature([]) == (EMPTY_SLOT,) * 8

    def test_different_seeds_differ(self):
        entities = list(range(20))
        assert MinHasher(16, seed=0).signature(entities) != MinHasher(
            16, seed=1
        ).signature(entities)

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.sets(st.integers(min_value=0, max_value=200), max_size=30),
        b=st.sets(st.integers(min_value=0, max_value=200), max_size=30),
    )
    def test_identical_sets_always_collide_distinct_rarely(self, a, b):
        """Signature equality tracks set equality: equal sets always
        match; the estimator is symmetric either way."""
        hasher = MinHasher(n_hashes=24, seed=5)
        sig_a, sig_b = hasher.signature(a), hasher.signature(b)
        if a == b:
            assert sig_a == sig_b
        matches = sum(x == y for x, y in zip(sig_a, sig_b))
        matches_rev = sum(
            x == y for x, y in zip(hasher.signature(b), hasher.signature(a))
        )
        assert matches == matches_rev


class TestJaccard:
    def test_known_values(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0
        assert jaccard({1, 2}, {3, 4}) == 0.0
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_empty_vs_empty_is_identical(self):
        assert jaccard(set(), set()) == 1.0
        assert jaccard(set(), {1}) == 0.0


class TestLSHIndex:
    def test_band_shape_validated(self):
        lsh = LSHIndex(n_bands=4, n_rows=4)
        with pytest.raises(ValueError, match="signature"):
            lsh.add((1, 2, 3), "ref")  # 3 slots cannot fill 4x4 bands

    def test_identical_signatures_are_candidates(self):
        hasher = MinHasher(n_hashes=16, seed=0)
        lsh = LSHIndex(n_bands=4, n_rows=4)
        sig = hasher.signature([1, 2, 3])
        lsh.add(sig, "first")
        assert lsh.candidates(sig) == ["first"]

    def test_disjoint_sets_not_candidates(self):
        hasher = MinHasher(n_hashes=16, seed=0)
        lsh = LSHIndex(n_bands=4, n_rows=4)
        lsh.add(hasher.signature(range(0, 20)), "low")
        assert lsh.candidates(hasher.signature(range(1000, 1020))) == []

    def test_candidates_deduped_in_first_stored_order(self):
        hasher = MinHasher(n_hashes=16, seed=0)
        lsh = LSHIndex(n_bands=4, n_rows=4)
        sig = hasher.signature([7, 8, 9])
        lsh.add(sig, "a")
        lsh.add(sig, "b")
        assert lsh.candidates(sig) == ["a", "b"]  # each once, insert order

    def test_clear_and_len(self):
        hasher = MinHasher(n_hashes=16, seed=0)
        lsh = LSHIndex(n_bands=4, n_rows=4)
        assert len(lsh) == 0
        lsh.add(hasher.signature([1]), "x")
        assert len(lsh) == 4  # one non-empty bucket per band
        lsh.clear()
        assert len(lsh) == 0
        assert lsh.candidates(hasher.signature([1])) == []

    @settings(max_examples=30, deadline=None)
    @given(
        base=st.sets(
            st.integers(min_value=0, max_value=500), min_size=8, max_size=16
        )
    )
    def test_near_duplicates_usually_bucket_together(self, base):
        """A one-element perturbation of an 8+-element set keeps Jaccard
        >= 8/9 — with 8 bands of 4 rows such pairs should collide in at
        least one band essentially always at this similarity."""
        hasher = MinHasher(n_hashes=32, seed=11)
        lsh = LSHIndex(n_bands=8, n_rows=4)
        lsh.add(hasher.signature(base), "base")
        perturbed = set(base)
        perturbed.add(max(base) + 1)
        assert "base" in lsh.candidates(hasher.signature(perturbed))
