"""The observability acceptance path, end to end.

One served recommend against a sharded **process-backend** server must
assemble a single trace whose spans cross every boundary in the stack:
the socket front door (``server.request`` → ``server.coalesce`` →
``server.batch``), the exec operator pipeline (``exec.FanoutOp`` …
``exec.MergeOp``), the worker processes (``worker.recommend_batch`` per
shard) and the shard internals (``shard.scan``) — one tree, one trace
id, across process boundaries.  And tracing must be purely
observational: the traced ranked list is bit-identical to the untraced
one and to the in-process reference.
"""

from __future__ import annotations

import copy

import pytest

from repro.obs import MetricsRegistry, build_tree
from repro.serve import (
    RecommenderClient,
    RecommenderServer,
    ServerThread,
    ShardedRecommender,
)


@pytest.fixture(scope="module")
def served_sharded(fitted_ssrec):
    """A process-backed sharded recommender behind a live socket server,
    plus its in-process reference twin."""
    reference = copy.deepcopy(fitted_ssrec)
    sharded = ShardedRecommender.from_trained(
        copy.deepcopy(fitted_ssrec), n_shards=2, strategy="hash",
        use_index=False, backend="process",
    )
    server = RecommenderServer(
        sharded, coalesce=True, max_delay=0.01, slow_request_seconds=0.0
    )
    with ServerThread(server) as (host, port):
        with RecommenderClient(host, port) as client:
            yield client, server, reference
    sharded.close()


def _span_names(trace: dict) -> set[str]:
    return {entry["name"] for entry in trace["spans"]}


class TestCrossProcessTrace:
    def test_single_tree_spans_every_layer(self, served_sharded, ytube_stream):
        client, _server, reference = served_sharded
        item = ytube_stream.items_in_partition(2)[0]

        ranked, trace = client.recommend_traced(item, 6)
        # Purely observational: traced == untraced == in-process.
        assert ranked == client.recommend(item, 6)
        assert ranked == reference.recommend(item, 6)

        assert trace is not None
        names = _span_names(trace)
        # Every layer contributed spans to the one trace.
        assert {"server.request", "server.coalesce", "server.batch"} <= names
        assert "exec.FanoutOp" in names
        assert "exec.MergeOp" in names
        assert "worker.recommend_batch" in names  # crossed the process boundary
        assert "shard.scan" in names              # inside the worker

        # One tree: the request root is the only parentless span, and
        # both worker processes hang off it.
        (root,) = build_tree(trace["spans"])
        assert root["name"] == "server.request"
        worker_shards = {
            entry["tags"]["shard"]
            for entry in trace["spans"]
            if entry["name"] == "worker.recommend_batch"
        }
        assert worker_shards == {"0", "1"}

    def test_metrics_route_merges_worker_registries(self, served_sharded):
        client, server, _reference = served_sharded
        payload = client.metrics()
        registry = MetricsRegistry.from_dict(payload["registry"])
        # Server-side series and worker-side series in one merged view.
        assert registry.counter("server.requests").value > 0
        shard_labels = {
            counter.labels["shard"]
            for counter in registry.counters()
            if counter.name == "shard.queries"
        }
        assert shard_labels == {"0", "1"}
        # The slow log (threshold 0.0) captured full span trees.
        assert payload["slow_requests"]
        assert all(entry["spans"] for entry in payload["slow_requests"])
        assert server.stats.slow_requests > 0
