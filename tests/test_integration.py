"""Cross-module integration tests: the paper's headline claims end to end.

These are the repository's acceptance tests — each asserts one qualitative
result of the paper's evaluation on the tiny deterministic dataset.
"""

import numpy as np
import pytest

from repro.core.config import SsRecConfig
from repro.core.ssrec import SsRecRecommender
from repro.eval import experiments as ex
from repro.eval.harness import StreamEvaluator
from repro.stream.engine import LocalEngine
from repro.stream.recommend_topology import build_recommendation_topology


class TestEffectivenessClaims:
    def test_ssrec_beats_random_by_a_wide_margin(self, fitted_ssrec, ytube_stream, ytube_small):
        evaluator = StreamEvaluator(ytube_stream, ks=(5,), min_truth=3)
        rec = SsRecRecommender(seed=1).fit(
            ytube_small, ytube_stream.training_interactions()
        )
        p5 = evaluator.run(rec).p_at_k[5]
        # Random baseline: expected P@5 ~= mean |truth| / n_consumers.
        truth_sizes = []
        for p in ytube_stream.test_indices:
            truth_sizes.extend(
                len(v) for v in ytube_stream.ground_truth(p).values() if len(v) >= 3
            )
        random_p = float(np.mean(truth_sizes)) / len(ytube_small.consumer_ids)
        assert p5 > 2 * random_p

    def test_updates_improve_precision(self, ytube_small, ytube_stream):
        """Fig. 9's claim: ssRec > ssRec-nu."""
        result = ex.run_fig9(ytube_small, ks=(10, 20, 30), min_truth=3)
        better = sum(
            1
            for k in (10, 20, 30)
            if result.precision["ssRec"][k] >= result.precision["ssRec-nu"][k]
        )
        assert better >= 2

    def test_ssrec_beats_ctt_and_ucd_at_small_k(self, ytube_small):
        """Fig. 8's claim at the sharpest cutoff."""
        result = ex.run_fig8(ytube_small, ks=(5,), min_truth=3)
        p = result.precision
        assert p["ssRec"][5] > p["CTT"][5]
        assert p["ssRec"][5] > p["UCD"][5]

    def test_lambda_curve_is_worse_at_extremes(self, ytube_small):
        """Fig. 7's claim: pure long-term (0) and pure short-term (1) are
        both beaten by a mixture."""
        result = ex.run_fig7(
            ytube_small, lambdas=(0.0, 0.3, 0.5, 1.0), ks=(5,), min_truth=3
        )
        best_mid = max(result.precision[0.3][5], result.precision[0.5][5])
        assert best_mid >= result.precision[0.0][5]
        assert best_mid > result.precision[1.0][5]


class TestBiHMMClaim:
    def test_bihmm_not_worse_than_hmm_on_average(self, ytube_small):
        """Fig. 5's claim, aggregated over state-count groups."""
        result = ex.run_fig5(ytube_small, max_users=12, max_states=4, min_history=25)
        weights = result.users_by_group
        total = sum(weights.values())
        hmm = sum(result.hmm_by_group[g] * weights[g] for g in weights) / total
        bihmm = sum(result.bihmm_by_group[g] * weights[g] for g in weights) / total
        assert bihmm >= hmm - 0.01


class TestIndexClaims:
    def test_index_recall_of_exact_topk_is_high(
        self, fitted_ssrec, fitted_ssrec_indexed, ytube_stream
    ):
        """The index's top-10 overlaps the unrestricted exact top-10 heavily
        (hash probing may exclude users in unprobed blocks)."""
        overlaps = []
        for item in ytube_stream.items_in_partition(2)[:20]:
            exact = {u for u, _ in fitted_ssrec.matcher.top_k(item, 10)}
            via_index = {u for u, _ in fitted_ssrec_indexed.index.knn(item, 10)}
            if exact:
                overlaps.append(len(exact & via_index) / len(exact))
        assert float(np.mean(overlaps)) >= 0.9

    def test_index_visits_fewer_users_than_scan(self, fitted_ssrec_indexed, ytube_stream):
        """The candidate-pruning claim: probed trees hold fewer users than
        the full population for typical items."""
        index = fitted_ssrec_indexed.index
        sizes = [
            len(index.users_in_probed_trees(item))
            for item in ytube_stream.items_in_partition(2)[:20]
        ]
        population = len(fitted_ssrec_indexed.profiles)
        assert float(np.mean(sizes)) < population


class TestTopologyIntegration:
    def test_topology_results_match_direct_recommendation(
        self, fitted_ssrec, ytube_stream, ytube_small
    ):
        """Running over the mini-Storm topology must not change results."""
        items = ytube_stream.items_in_partition(2)[:10]
        direct = {it.item_id: fitted_ssrec.recommend(it, 5) for it in items}
        topology, sink = build_recommendation_topology(
            items,
            fitted_ssrec.extractor,
            fitted_ssrec,
            n_categories=ytube_small.n_categories,
            k=5,
        )
        LocalEngine(topology).run()
        for item in items:
            assert [u for u, _ in sink.results[item.item_id]] == [
                u for u, _ in direct[item.item_id]
            ]


class TestExperimentDrivers:
    def test_table2_rows_monotone_header(self, ytube_small):
        result = ex.run_table2(ytube_small, block_counts=(1, 4, 8))
        assert result.block_counts == [1, 4, 8]
        assert len(result.max_entities) == 3
        assert result.max_entities[0] >= result.max_entities[-1]
        assert "Table II" in result.to_text()

    def test_table3_includes_all_four_datasets(self):
        result = ex.run_table3(scale="small")
        names = [row["Dataset"] for row in result.rows_]
        assert names == ["YTube", "SynYTube", "MLens", "SynMLens"]

    def test_fig6_reports_all_windows(self, ytube_small):
        result = ex.run_fig6(
            ytube_small, window_sizes=(2, 5), lambdas=(0.2, 0.4), ks=(5,), min_truth=3
        )
        assert set(result.precision) == {2, 5}
        assert "Fig. 6" in result.to_text()

    def test_fig10_reports_three_methods(self, ytube_small):
        result = ex.run_fig10(ytube_small, max_items_per_partition=5, min_truth=2)
        assert set(result.time_ms) == {"CTT", "UCD", "CPPse-index"}
        for series in result.time_ms.values():
            assert set(series) == {1, 2, 3, 4}

    def test_fig11_costs_positive(self, ytube_small):
        result = ex.run_fig11({"YTube": ytube_small}, sizes=(1, 2))
        assert all(v > 0 for v in result.seconds["YTube"].values())
