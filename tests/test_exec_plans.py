"""The execution-plan core: registry, compilation, operator parity."""

import pytest

from repro.core.config import SsRecConfig
from repro.exec import (
    PLAN_REGISTRY,
    CompiledPlan,
    ExecPlan,
    Placement,
    PlanRegistry,
    as_executor,
    coerce_k,
    compile_plan,
)
from repro.serve.service import ShardedRecommender
from repro.sim.conformance import CONFORMANCE_PATHS
from repro.sim.oracle import matches_within_ties


class TestPlacement:
    def test_local_takes_no_strategy(self):
        with pytest.raises(ValueError, match="local placements"):
            Placement(kind="local", strategy="hash")

    def test_sharded_validates_strategy_and_backend(self):
        with pytest.raises(ValueError, match="strategy"):
            Placement.sharded("mystery")
        with pytest.raises(ValueError, match="backend"):
            Placement.sharded("hash", backend="quantum")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Placement(kind="orbital")


class TestExecPlan:
    def test_axis_validation(self):
        with pytest.raises(ValueError, match="candidate_source"):
            ExecPlan(name="x", candidate_source="tarot")
        with pytest.raises(ValueError, match="scoring"):
            ExecPlan(name="x", candidate_source="full-scan", scoring="vibes")
        with pytest.raises(ValueError, match="batching"):
            ExecPlan(name="x", candidate_source="full-scan", batching="mega")
        with pytest.raises(ValueError, match="name"):
            ExecPlan(name="", candidate_source="full-scan")

    def test_anchor_within_ties_requires_anchor(self):
        with pytest.raises(ValueError, match="requires an anchor"):
            ExecPlan(name="x", candidate_source="full-scan", anchor_within_ties=True)

    def test_derived_facts(self):
        plan = PLAN_REGISTRY.get("index-batch")
        assert plan.uses_index and not plan.is_sharded
        sharded = PLAN_REGISTRY.get("sharded-scan-process")
        assert sharded.is_sharded and sharded.placement.backend == "process"

    def test_describe_mentions_judge(self):
        assert "bit-identical to scan-item" in PLAN_REGISTRY.get("scan-batch").describe()
        assert "vs oracle" in PLAN_REGISTRY.get("scan-item").describe()
        assert (
            "within ties of scan-item"
            in PLAN_REGISTRY.get("scan-item-native").describe()
        )


class TestRegistry:
    def test_default_catalog_names(self):
        names = PLAN_REGISTRY.names()
        for expected in (
            "scan-item", "scan-batch", "index-item", "index-batch",
            "sharded-scan-hash", "sharded-index-block", "sharded-scan-process",
            "oracle-item", "scan-item-cached", "scan-batch-cached",
            "index-item-cached", "index-batch-cached", "sharded-scan-hash-cached",
            "scan-item-native", "scan-batch-native", "index-item-native",
            "index-batch-native",
        ):
            assert expected in names

    def test_native_family_anchored_within_ties(self):
        for name in ("scan-item-native", "scan-batch-native",
                     "index-item-native", "index-batch-native"):
            plan = PLAN_REGISTRY.get(name)
            assert plan.scoring == "native"
            assert plan.anchor_within_ties
            anchor = PLAN_REGISTRY.get(plan.anchor)
            assert anchor.scoring == "vectorized" and anchor.anchor is None

    def test_conformance_catalog_is_registry_derived(self):
        """The drift guard: the runner's catalog IS the registry."""
        assert CONFORMANCE_PATHS == PLAN_REGISTRY.conformance_paths()
        assert "oracle-item" not in CONFORMANCE_PATHS  # the judge itself

    def test_anchors_precede_dependents(self):
        order = {name: i for i, name in enumerate(CONFORMANCE_PATHS)}
        for name in CONFORMANCE_PATHS:
            plan = PLAN_REGISTRY.get(name)
            if plan.anchor is not None:
                assert order[plan.anchor] < order[name]

    def test_cached_variants_anchor_to_uncached_anchors(self):
        for name in CONFORMANCE_PATHS:
            plan = PLAN_REGISTRY.get(name)
            if plan.cached:
                anchor = PLAN_REGISTRY.get(plan.anchor)
                assert not anchor.cached
                assert anchor.anchor is None

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="quantum-tunnel"):
            PLAN_REGISTRY.get("quantum-tunnel")

    def test_register_duplicate_raises(self):
        registry = PlanRegistry()
        registry.register(ExecPlan(name="a", candidate_source="full-scan"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(ExecPlan(name="a", candidate_source="full-scan"))

    def test_register_unknown_anchor_raises(self):
        registry = PlanRegistry()
        with pytest.raises(ValueError, match="unregistered"):
            registry.register(
                ExecPlan(name="b", candidate_source="full-scan", anchor="ghost")
            )

    def test_anchor_chains_rejected(self):
        registry = PlanRegistry()
        registry.register(ExecPlan(name="a", candidate_source="full-scan"))
        registry.register(
            ExecPlan(name="b", candidate_source="full-scan", anchor="a")
        )
        with pytest.raises(ValueError, match="anchor path"):
            registry.register(
                ExecPlan(name="c", candidate_source="full-scan", anchor="b")
            )

    def test_describe_lists_every_plan(self):
        text = PLAN_REGISTRY.describe()
        for name in PLAN_REGISTRY.names():
            assert name in text

    def test_runner_enumerates_live_registry(self):
        """Plans registered after repro.sim was imported are replayed by
        default and addressable via paths= — the runner reads the live
        registry, not the import-time CONFORMANCE_PATHS snapshot."""
        from repro.sim.conformance import ConformanceRunner

        plan = ExecPlan(
            name="scan-item-late",
            candidate_source="full-scan",
            anchor="scan-item",
            description="registered after import",
        )
        PLAN_REGISTRY.register(plan)
        try:
            explicit = ConformanceRunner(paths=("scan-item", "scan-item-late"))
            assert explicit.paths == ("scan-item", "scan-item-late")
            assert "scan-item-late" in ConformanceRunner().paths
        finally:
            PLAN_REGISTRY._plans.pop("scan-item-late")


class TestForConfig:
    def test_local_scan_and_index(self):
        config = SsRecConfig()
        assert PLAN_REGISTRY.for_config(config, use_index=False).name == "scan-item"
        assert PLAN_REGISTRY.for_config(config, use_index=True).name == "index-item"
        assert (
            PLAN_REGISTRY.for_config(config, use_index=False, batching="micro-batch").name
            == "scan-batch"
        )

    def test_cached_from_config_field(self):
        config = SsRecConfig(result_cache=True)
        assert PLAN_REGISTRY.for_config(config, use_index=False).name == "scan-item-cached"
        # The explicit argument overrides the config field.
        assert (
            PLAN_REGISTRY.for_config(config, use_index=False, cached=False).name
            == "scan-item"
        )

    def test_sharded_from_config(self):
        config = SsRecConfig(n_shards=3, shard_strategy="hash")
        assert PLAN_REGISTRY.for_config(config, use_index=False).name == "sharded-scan-hash"
        process = SsRecConfig(n_shards=3, shard_strategy="hash", serve_backend="process")
        assert (
            PLAN_REGISTRY.for_config(process, use_index=False).name
            == "sharded-scan-process"
        )

    def test_unregistered_axes_synthesize(self):
        config = SsRecConfig(n_shards=3, shard_strategy="block", serve_backend="thread")
        plan = PLAN_REGISTRY.for_config(config, use_index=True)
        assert plan.name == "sharded-index-block-thread-item"
        assert not plan.conformance  # synthesized plans are servable, not cataloged

    def test_native_from_config_field(self):
        config = SsRecConfig(scoring="native")
        assert PLAN_REGISTRY.for_config(config, use_index=False).name == "scan-item-native"
        assert (
            PLAN_REGISTRY.for_config(config, use_index=True, batching="micro-batch").name
            == "index-batch-native"
        )
        # Sharded native has no registered shape: the fan-out plan is
        # synthesized (scoring happens inside the shards either way).
        sharded = SsRecConfig(scoring="native", n_shards=2, shard_strategy="hash")
        plan = PLAN_REGISTRY.for_config(sharded, use_index=False)
        assert plan.name == "sharded-scan-hash-item-native"
        assert not plan.conformance

    def test_oracle_plans_not_derivable(self):
        assert not PLAN_REGISTRY.get("oracle-item").config_derivable
        for name in PLAN_REGISTRY.names():
            plan = PLAN_REGISTRY.get(name)
            if plan.config_derivable:
                continue
            overrides = plan.config_overrides()
            derived = PLAN_REGISTRY.for_config(
                SsRecConfig().with_options(**overrides),
                use_index=plan.uses_index,
                batching=plan.batching,
            )
            assert derived.name != plan.name


class TestCoerceK:
    def test_none_means_default(self):
        config = SsRecConfig()
        assert coerce_k(None, config) == config.default_k

    def test_explicit_zero_stays_zero(self):
        assert coerce_k(0, SsRecConfig()) == 0


class TestCompiledPlans:
    def test_facade_compiles_expected_plan(self, fitted_ssrec, fitted_ssrec_indexed):
        assert fitted_ssrec.executor().plan.name == "scan-item"
        assert fitted_ssrec_indexed.executor().plan.name == "index-item"

    def test_scan_plan_matches_matcher(self, fitted_ssrec, ytube_small):
        executor = fitted_ssrec.executor()
        for item in ytube_small.items[:6]:
            assert executor.run_item(item, 7) == fitted_ssrec.matcher.top_k(item, 7)
        window = ytube_small.items[:6]
        assert executor.run_batch(window, 7) == fitted_ssrec.matcher.top_k_batch(window, 7)

    def test_index_plan_matches_knn(self, fitted_ssrec_indexed, ytube_small):
        executor = fitted_ssrec_indexed.executor()
        for item in ytube_small.items[:6]:
            assert executor.run_item(item, 7) == fitted_ssrec_indexed.index.knn(item, 7)

    def test_empty_batch_and_k_zero(self, fitted_ssrec, ytube_small):
        executor = fitted_ssrec.executor()
        assert executor.run_batch([], 5) == []
        assert executor.run_item(ytube_small.items[0], 0) == []

    def test_oracle_plan_agrees_within_ties(self, fitted_ssrec, ytube_small):
        oracle_exec = compile_plan(PLAN_REGISTRY.get("oracle-item"), fitted_ssrec)
        scan_exec = fitted_ssrec.executor()
        for item in ytube_small.items[:4]:
            want = scan_exec.run_item(item, 8)
            got = oracle_exec.run_item(item, 8)
            assert matches_within_ties(got, want)
        window = ytube_small.items[:4]
        for got, want in zip(
            oracle_exec.run_batch(window, 8), scan_exec.run_batch(window, 8)
        ):
            assert matches_within_ties(got, want)

    def test_compile_rejects_mismatched_owner(self, fitted_ssrec):
        with pytest.raises(TypeError, match="no shards"):
            compile_plan(PLAN_REGISTRY.get("sharded-scan-hash"), fitted_ssrec)
        with pytest.raises(TypeError, match="CPPse-index"):
            compile_plan(PLAN_REGISTRY.get("index-item"), fitted_ssrec)

    def test_attach_index_recompiles(self, fresh_ssrec):
        assert fresh_ssrec.executor().plan.name == "scan-item"
        fresh_ssrec.attach_index()
        assert fresh_ssrec.executor().plan.name == "index-item"

    def test_sharded_facade_plan(self, fitted_ssrec, ytube_small):
        with ShardedRecommender.from_trained(
            fitted_ssrec, n_shards=2, strategy="hash"
        ) as service:
            executor = service.executor()
            assert isinstance(executor, CompiledPlan)
            assert executor.plan.name == "sharded-scan-hash"
            item = ytube_small.items[0]
            assert service.recommend(item, 6) == fitted_ssrec.recommend(item, 6)


class TestAsExecutor:
    def test_facades_expose_their_plan(self, fitted_ssrec):
        assert as_executor(fitted_ssrec) is fitted_ssrec.executor()

    def test_plain_recommender_adapted(self, ytube_small):
        class Stub:
            def recommend(self, item, k):
                return [(1, 0.5)][:k]

        executor = as_executor(Stub())
        item = ytube_small.items[0]
        assert executor.run_item(item, 3) == [(1, 0.5)]
        # No recommend_batch: the adapter falls back to per-item calls.
        assert executor.run_batch([item, item], 3) == [[(1, 0.5)], [(1, 0.5)]]
