"""Tests for the shift-add-xor hash and the chained hash table."""

import pytest

from repro.index.hashing import ChainedHashTable, pair_key, shift_add_xor_hash


class TestShiftAddXorHash:
    def test_deterministic(self):
        assert shift_add_xor_hash("3#42") == shift_add_xor_hash("3#42")

    def test_different_strings_differ(self):
        # Not guaranteed in general, but these must differ for a sane hash.
        values = {shift_add_xor_hash(f"{c}#{e}") for c in range(10) for e in range(100)}
        assert len(values) > 900  # near-perfect distinctness on 1000 keys

    def test_stays_within_32_bits(self):
        for text in ["", "a", "x" * 500]:
            assert 0 <= shift_add_xor_hash(text) <= 0xFFFFFFFF

    def test_seed_changes_hash(self):
        assert shift_add_xor_hash("abc", seed=1) != shift_add_xor_hash("abc", seed=2)

    def test_distribution_roughly_uniform(self):
        buckets = [0] * 64
        for c in range(20):
            for e in range(200):
                buckets[shift_add_xor_hash(pair_key(c, e)) % 64] += 1
        mean = sum(buckets) / len(buckets)
        assert max(buckets) < mean * 2.0  # no catastrophically hot bucket


class TestPairKey:
    def test_format(self):
        assert pair_key(3, 42) == "3#42"

    def test_distinct_pairs_distinct_keys(self):
        assert pair_key(1, 23) != pair_key(12, 3)


class TestChainedHashTable:
    def test_insert_and_lookup(self):
        table = ChainedHashTable(n_buckets=16)
        table.insert(1, 2, block_id=0, tree="t0")
        table.insert(1, 2, block_id=3, tree="t3")
        assert table.lookup(1, 2) == {0: "t0", 3: "t3"}
        assert len(table) == 1

    def test_lookup_missing_returns_empty(self):
        table = ChainedHashTable(n_buckets=16)
        assert table.lookup(9, 9) == {}

    def test_upsert_replaces_pointer(self):
        table = ChainedHashTable(n_buckets=16)
        table.insert(1, 2, 0, "old")
        table.insert(1, 2, 0, "new")
        assert table.lookup(1, 2) == {0: "new"}

    def test_chaining_resolves_bucket_collisions(self):
        table = ChainedHashTable(n_buckets=1)  # every pair collides
        for e in range(20):
            table.insert(0, e, 0, f"t{e}")
        assert len(table) == 20
        for e in range(20):
            assert table.lookup(0, e) == {0: f"t{e}"}
        assert table.chain_lengths() == [20]

    def test_remove_block(self):
        table = ChainedHashTable(n_buckets=8)
        table.insert(1, 2, 0, "t")
        assert table.remove_block(1, 2, 0) is True
        assert table.lookup(1, 2) == {}
        assert table.remove_block(1, 2, 0) is False
        assert table.remove_block(5, 5, 0) is False

    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            ChainedHashTable(n_buckets=0)

    def test_chain_lengths_sum_to_size(self):
        table = ChainedHashTable(n_buckets=4)
        for e in range(37):
            table.insert(e % 3, e, 0, "t")
        assert sum(table.chain_lengths()) == len(table) == 37
