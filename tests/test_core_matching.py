"""Tests for interest prediction and the Eq. 1-4 matching scorers."""

import math

import numpy as np
import pytest

from repro.core.config import SsRecConfig
from repro.core.matching import ScoreParts
from repro.datasets.schema import SocialItem


class TestSsRecConfig:
    def test_defaults_are_paper_optima(self):
        config = SsRecConfig()
        assert config.window_size == 5
        assert config.lambda_s == pytest.approx(0.4)

    def test_mlens_preset(self):
        assert SsRecConfig.for_mlens().lambda_s == pytest.approx(0.3)

    def test_with_options_returns_new_frozen_copy(self):
        config = SsRecConfig()
        other = config.with_options(lambda_s=0.7)
        assert other.lambda_s == pytest.approx(0.7)
        assert config.lambda_s == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_size": 0},
            {"lambda_s": 1.5},
            {"dirichlet_mu": 0.0},
            {"tree_fanout": 1},
            {"hash_buckets": 0},
            {"signature_slack": 1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SsRecConfig(**kwargs)


class TestScoreParts:
    def test_combine_matches_equation_three(self):
        parts = ScoreParts(
            p_long_category=0.2, p_producer=0.1, entity_sum=0.05, p_short_category=0.3
        )
        lam = 0.4
        expected = (1 - lam) * (
            math.log(0.2) + math.log(0.1) + math.log(0.05)
        ) + lam * math.log(0.3)
        assert parts.combine(lam) == pytest.approx(expected)

    def test_lambda_zero_is_long_term_only(self):
        parts = ScoreParts(0.2, 0.1, 0.05, 0.9)
        assert parts.combine(0.0) == pytest.approx(parts.long_score())

    def test_lambda_one_is_short_term_only(self):
        parts = ScoreParts(0.2, 0.1, 0.05, 0.9)
        assert parts.combine(1.0) == pytest.approx(parts.short_score())

    def test_zero_probabilities_floored(self):
        parts = ScoreParts(0.0, 0.0, 0.0, 0.0)
        assert math.isfinite(parts.combine(0.4))


class TestInterestPredictor:
    def test_distributions_sum_to_one(self, fitted_ssrec):
        profile = next(iter(fitted_ssrec.profiles))
        interest = fitted_ssrec.interest
        assert interest.long_term_distribution(profile).sum() == pytest.approx(1.0)
        assert interest.short_term_distribution(profile).sum() == pytest.approx(1.0)

    def test_probabilities_floored_positive(self, fitted_ssrec):
        profile = next(iter(fitted_ssrec.profiles))
        for c in range(fitted_ssrec.interest.n_categories):
            assert fitted_ssrec.interest.long_term_probability(profile, c) > 0
            assert fitted_ssrec.interest.short_term_probability(profile, c) > 0

    def test_incremental_update_matches_fresh_computation(self, fresh_ssrec, ytube_small):
        """Advancing the cached filtered state event-by-event must equal
        recomputing from scratch for the same profile."""
        interest = fresh_ssrec.interest
        profiles = [p for p in fresh_ssrec.profiles if p.n_long_events >= 10]
        profile = profiles[0]
        item = ytube_small.items[0]
        # Prime the cache, then record enough events to force a flush.
        interest.long_term_distribution(profile)
        from repro.core.profiles import ProfileEvent

        for i in range(profile.window_size):
            profile.record(
                ProfileEvent(
                    category=item.category,
                    producer=item.producer,
                    item_id=item.item_id,
                    entities=item.entities,
                )
            )
        incremental = interest.long_term_distribution(profile).copy()
        interest.forget_user(profile.user_id)
        fresh = interest.long_term_distribution(profile)
        np.testing.assert_allclose(incremental, fresh, atol=1e-10)

    def test_short_term_cache_invalidated_by_updates(self, fresh_ssrec, ytube_small):
        interest = fresh_ssrec.interest
        profile = next(p for p in fresh_ssrec.profiles if p.n_long_events >= 10)
        before = interest.short_term_distribution(profile).copy()
        from repro.core.profiles import ProfileEvent

        item = ytube_small.items[10]
        profile.record(
            ProfileEvent(
                category=item.category,
                producer=item.producer,
                item_id=item.item_id,
                entities=item.entities,
            )
        )
        after = interest.short_term_distribution(profile)
        assert not np.allclose(before, after) or profile.window == []


class TestMatchingScorer:
    def test_smoothed_producer_probabilities_sum_to_one(self, fitted_ssrec, ytube_small):
        scorer = fitted_ssrec.scorer
        profile = next(iter(fitted_ssrec.profiles))
        total = sum(
            scorer.producer_probability(profile, p) for p in range(scorer.n_producers)
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_smoothed_entity_probabilities_sum_to_one(self, fitted_ssrec):
        scorer = fitted_ssrec.scorer
        profile = next(iter(fitted_ssrec.profiles))
        total = sum(
            scorer.entity_probability(profile, e) for e in range(scorer.n_entities)
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_seen_producer_beats_unseen(self, fitted_ssrec):
        scorer = fitted_ssrec.scorer
        profile = next(p for p in fitted_ssrec.profiles if p.producer_counts)
        seen = next(iter(profile.producer_counts))
        unseen = next(
            p for p in range(scorer.n_producers) if p not in profile.producer_counts
        )
        assert scorer.producer_probability(profile, seen) > scorer.producer_probability(
            profile, unseen
        )

    def test_expanded_query_includes_originals_with_weight_one(
        self, fitted_ssrec, ytube_small
    ):
        item = ytube_small.items[0]
        query = fitted_ssrec.scorer.expanded_query(item)
        originals = [(e, w) for e, w in query[: len(item.entities)]]
        assert originals == [(e, 1.0) for e in item.entities]

    def test_expansion_entities_weigh_below_one(self, fitted_ssrec, ytube_small):
        item = ytube_small.items[0]
        query = fitted_ssrec.scorer.expanded_query(item)
        for entity_id, weight in query[len(item.entities):]:
            assert 0 < weight < 1.0
            assert entity_id not in item.entities

    def test_query_cached_per_item(self, fitted_ssrec, ytube_small):
        item = ytube_small.items[1]
        assert fitted_ssrec.scorer.expanded_query(item) is fitted_ssrec.scorer.expanded_query(item)

    def test_expansion_disabled_for_ssrec_ne(self, ytube_small, ytube_stream):
        from repro.core.ssrec import SsRecRecommender

        rec = SsRecRecommender(
            config=SsRecConfig(use_expansion=False), use_index=False, seed=1
        )
        rec.fit(ytube_small, ytube_stream.training_interactions())
        item = ytube_small.items[0]
        query = rec.scorer.expanded_query(item)
        assert len(query) == len(item.entities)


class TestVectorizedMatcher:
    def test_matches_reference_scorer_exactly(self, fitted_ssrec, ytube_small):
        """The batch scorer and the per-pair scorer must agree bit-for-bit
        on Eq. 3 — the core consistency contract."""
        matcher = fitted_ssrec.matcher
        scorer = fitted_ssrec.scorer
        lam = scorer.config.lambda_s
        for item in ytube_small.items[200:205]:
            scores = matcher.score_all(item)
            for row, user_id in enumerate(matcher.user_ids):
                profile = fitted_ssrec.profiles.get(user_id)
                expected = scorer.score(item, profile)
                assert scores[row] == pytest.approx(expected, abs=1e-9), (
                    f"user {user_id} item {item.item_id} lambda {lam}"
                )

    def test_top_k_order_deterministic(self, fitted_ssrec, ytube_small):
        item = ytube_small.items[50]
        a = fitted_ssrec.matcher.top_k(item, 10)
        b = fitted_ssrec.matcher.top_k(item, 10)
        assert a == b
        scores = [s for _, s in a]
        assert scores == sorted(scores, reverse=True)

    def test_lambda_recombination_matches_direct(self, fitted_ssrec, ytube_small):
        item = ytube_small.items[60]
        r_long, r_short = fitted_ssrec.matcher.score_components(item)
        for lam in (0.0, 0.3, 1.0):
            direct = fitted_ssrec.matcher.score_all(item, lambda_s=lam)
            np.testing.assert_allclose(direct, (1 - lam) * r_long + lam * r_short)

    def test_rows_follow_profile_updates(self, fresh_ssrec, ytube_small):
        matcher = fresh_ssrec.matcher
        item = ytube_small.items[70]
        before = matcher.score_all(item).copy()
        # Update one user's profile with this very item repeatedly —
        # through the store, which is the mutation contract the matcher's
        # O(1) freshness check relies on (out-of-band profile mutation
        # requires ``store.touch()``).
        from repro.core.profiles import ProfileEvent

        target = matcher.user_ids[0]
        profile = fresh_ssrec.profiles.get(target)
        for _ in range(profile.window_size * 2):
            fresh_ssrec.profiles.record(
                target,
                ProfileEvent(
                    category=item.category,
                    producer=item.producer,
                    item_id=item.item_id,
                    entities=item.entities,
                )
            )
        after = matcher.score_all(item)
        assert after[0] > before[0]
