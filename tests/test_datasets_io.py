"""Tests for dataset JSONL persistence."""

import json

import pytest

from repro.datasets.io import load_dataset, save_dataset


class TestRoundTrip:
    def test_save_load_preserves_everything(self, ytube_small, tmp_path):
        save_dataset(ytube_small, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.name == ytube_small.name
        assert loaded.n_categories == ytube_small.n_categories
        assert loaded.entity_names == ytube_small.entity_names
        assert loaded.producer_ids == ytube_small.producer_ids
        assert loaded.consumer_ids == ytube_small.consumer_ids
        assert loaded.items == ytube_small.items
        assert loaded.interactions == ytube_small.interactions

    def test_loaded_dataset_trains_identically(self, ytube_small, tmp_path):
        from repro.core.ssrec import SsRecRecommender
        from repro.datasets.partitions import partition_interactions

        save_dataset(ytube_small, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        stream_a = partition_interactions(ytube_small)
        stream_b = partition_interactions(loaded)
        rec_a = SsRecRecommender(seed=1).fit(ytube_small, stream_a.training_interactions())
        rec_b = SsRecRecommender(seed=1).fit(loaded, stream_b.training_interactions())
        item = stream_a.items_in_partition(2)[0]
        assert rec_a.recommend(item, 5) == rec_b.recommend(item, 5)

    def test_files_created(self, ytube_small, tmp_path):
        out = save_dataset(ytube_small, tmp_path / "ds")
        for name in ("meta.json", "entities.jsonl", "items.jsonl", "interactions.jsonl"):
            assert (out / name).exists()


class TestValidation:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")

    def test_non_dense_entity_ids_rejected(self, ytube_small, tmp_path):
        out = save_dataset(ytube_small, tmp_path / "ds")
        lines = (out / "entities.jsonl").read_text().splitlines()
        record = json.loads(lines[1])
        record["id"] = 99  # break density
        lines[1] = json.dumps(record)
        (out / "entities.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="dense"):
            load_dataset(out)

    def test_corrupted_reference_rejected(self, ytube_small, tmp_path):
        out = save_dataset(ytube_small, tmp_path / "ds")
        with (out / "interactions.jsonl").open("a") as fh:
            fh.write(
                json.dumps(
                    {
                        "user_id": 1,
                        "item_id": 10**9,  # unknown item
                        "category": 0,
                        "producer": 0,
                        "timestamp": 0.5,
                    }
                )
                + "\n"
            )
        with pytest.raises(ValueError, match="unknown item"):
            load_dataset(out)
