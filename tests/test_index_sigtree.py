"""Tests for the extended signature tree: structure, aggregation, bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.schema import SocialItem
from repro.index.signature import BlockUniverse, QuerySignature, UserVector
from repro.index.sigtree import InternalNode, LeafEntry, SignatureTree


def make_universe(n_producers=3, n_entities=6):
    return BlockUniverse(range(n_producers), range(n_entities), slack=0.2)


def make_vector(universe, rng, user_id):
    return UserVector(
        user_id=user_id,
        p_producer=rng.random(universe.producer_capacity) * 0.2,
        p_entity=rng.random(universe.entity_capacity) * 0.2,
        floor_producer=float(rng.random() * 0.01),
        floor_entity=float(rng.random() * 0.01),
        version=0,
    )


def make_entries(universe, n_users, seed=0):
    rng = np.random.default_rng(seed)
    return [
        LeafEntry(
            user_id=uid,
            vector=make_vector(universe, rng, uid),
            p_long=float(rng.random()),
            p_short=float(rng.random()),
        )
        for uid in range(n_users)
    ]


def make_query(universe, seed=0, category=0):
    rng = np.random.default_rng(seed)
    item = SocialItem(0, category, int(rng.integers(3)), (), "", 0.0)
    entity_ids = universe.entity_ids()
    weighted = [(int(rng.choice(entity_ids)), 1.0) for _ in range(3)]
    weighted.append((99999, 0.5))  # out-of-universe entity
    return QuerySignature.encode(item, weighted, universe, block_id=0)


class TestBulkBuild:
    def test_all_entries_present(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=4)
        entries = make_entries(universe, 23)
        tree.bulk_build(entries)
        assert len(tree) == 23
        assert [e.user_id for e in tree.all_entries()] == list(range(23))

    def test_height_logarithmic(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=4)
        tree.bulk_build(make_entries(universe, 64))
        # 64 entries -> 16 leaf nodes -> 4 internal -> 1 root: 3 node levels.
        assert tree.height() == 3

    def test_empty_build(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=4)
        tree.bulk_build([])
        assert len(tree) == 0
        assert tree.all_entries() == []

    def test_invariants_hold_after_build(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 30))
        tree.check_invariants()

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            SignatureTree(0, 0, make_universe(), fanout=1)


class TestUpperBound:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10))
    def test_root_bound_dominates_every_leaf(self, n_users, seed):
        """Lemma 1/2: the IEntry relevance upper-bounds every descendant's
        exact relevance, for random signatures and random queries."""
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=4)
        entries = make_entries(universe, n_users, seed=seed)
        tree.bulk_build(entries)
        query = make_query(universe, seed=seed)
        bound = tree.root.relevance(query, lambda_s=0.4)
        for entry in tree.all_entries():
            assert bound >= entry.relevance(query, 0.4) - 1e-9

    def test_internal_bounds_dominate_children(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 27, seed=3))
        query = make_query(universe, seed=3)

        def walk(node):
            bound = node.relevance(query, 0.4)
            if node.is_leaf:
                for entry in node.entries:
                    assert bound >= entry.relevance(query, 0.4) - 1e-9
            else:
                for child in node.children:
                    assert bound >= child.relevance(query, 0.4) - 1e-9
                    walk(child)

        walk(tree.root)


class TestUpdate:
    def test_update_entry_refreshes_values_and_ancestors(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 12, seed=1))
        rng = np.random.default_rng(99)
        new_vector = make_vector(universe, rng, 5)
        assert tree.update_entry(5, new_vector, p_long=0.99, p_short=0.98)
        entry = tree.find_leaf_entry(5)
        assert entry.p_long == pytest.approx(0.99)
        tree.check_invariants()
        assert tree.root.agg_p_long >= 0.99

    def test_update_missing_user_returns_false(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 5))
        rng = np.random.default_rng(0)
        assert not tree.update_entry(999, make_vector(universe, rng, 999), 0.1, 0.1)

    def test_find_leaf_entry(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 9))
        assert tree.find_leaf_entry(4).user_id == 4
        assert tree.find_leaf_entry(100) is None


class TestInsert:
    def test_insert_grows_tree_and_keeps_invariants(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 4, seed=2))
        rng = np.random.default_rng(5)
        for uid in range(100, 130):
            tree.insert(
                LeafEntry(
                    user_id=uid,
                    vector=make_vector(universe, rng, uid),
                    p_long=float(rng.random()),
                    p_short=float(rng.random()),
                )
            )
        assert len(tree) == 34
        tree.check_invariants()
        assert 115 in tree

    def test_duplicate_insert_rejected(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        entries = make_entries(universe, 3)
        tree.bulk_build(entries)
        with pytest.raises(ValueError, match="already indexed"):
            tree.insert(entries[0])

    def test_insert_into_empty_tree(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build([])
        rng = np.random.default_rng(0)
        tree.insert(
            LeafEntry(user_id=1, vector=make_vector(universe, rng, 1), p_long=0.5, p_short=0.5)
        )
        assert len(tree) == 1
        tree.check_invariants()

    def test_bound_still_dominates_after_mixed_operations(self):
        universe = make_universe()
        tree = SignatureTree(0, 0, universe, fanout=3)
        tree.bulk_build(make_entries(universe, 10, seed=4))
        rng = np.random.default_rng(6)
        for uid in range(200, 215):
            tree.insert(
                LeafEntry(
                    user_id=uid,
                    vector=make_vector(universe, rng, uid),
                    p_long=float(rng.random()),
                    p_short=float(rng.random()),
                )
            )
        tree.update_entry(3, make_vector(universe, rng, 3), 0.9, 0.9)
        query = make_query(universe, seed=4)
        bound = tree.root.relevance(query, 0.4)
        for entry in tree.all_entries():
            assert bound >= entry.relevance(query, 0.4) - 1e-9
